"""Python-side wrappers over the compiled kernel core.

The C types implement the hot paths only; everything cold (repeating
chains, mark tables, guarded breakdown accessors) lives here in plain
Python, subclassing the C cores.  Importing this module requires the
extension to be built — :mod:`repro.sim.kernel` guards the import.
"""

from typing import Any, Callable, Optional, Tuple

from repro._native import load_kernel
from repro.sim.metrics import DetailNotCollected
from repro.sim.scheduler import RepeatingHandle, SchedulerError

_kernel = load_kernel()
if _kernel is None:  # pragma: no cover - guarded by repro.sim.kernel
    raise ImportError("repro._native._kernel is not built")


class NativeScheduler(_kernel.SchedulerCore):
    """The native scheduler core plus the cold-path Python API.

    ``schedule``/``call_soon``/``schedule_uncancellable``/``step``/``run``
    are C methods on the core; repeating chains fire through
    :meth:`schedule` so their logic stays byte-identical to
    :class:`repro.sim.scheduler.Scheduler.schedule_repeating`.
    """

    __slots__ = ()

    def schedule_repeating(
        self,
        interval: float,
        callback: Callable,
        *args: Any,
        first_delay: Optional[float] = None,
        until: Optional[float] = None,
    ) -> RepeatingHandle:
        """Run ``callback(*args)`` every ``interval`` until cancelled.

        Semantics identical to the pure-python scheduler: the first
        occurrence fires after ``first_delay`` (default one interval),
        ``until`` bounds the chain, occurrence times are computed as
        ``base + i * interval``, and an occurrence overshooting the
        horizon by at most ``interval * 1e-9`` (float representation
        drift) is snapped to fire exactly at ``t == until``.
        """
        if interval <= 0:
            raise SchedulerError(
                f"repeating interval must be positive, got {interval}"
            )
        handle = RepeatingHandle()
        delay = interval if first_delay is None else first_delay
        base = self.now + delay
        tolerance = interval * 1e-9
        count = 0

        def occurrence(index: int) -> Optional[float]:
            time = base + index * interval
            if until is not None and time > until:
                return until if time - until <= tolerance else None
            return time

        def fire() -> None:
            nonlocal count
            if handle.cancelled:
                return
            count += 1
            next_time = occurrence(count)
            if next_time is not None:
                handle._current = self.schedule_at(next_time, fire)
            else:
                handle.cancelled = True
            callback(*args)

        first_time = occurrence(0)
        if first_time is None:
            handle.cancelled = True
            return handle
        if first_time != base:
            handle._current = self.schedule_at(first_time, fire)
        else:
            handle._current = self.schedule(delay, fire)
        return handle

    def __repr__(self) -> str:
        return (
            f"NativeScheduler(t={self.now:.6g}, "
            f"pending={self.pending}, processed={self.events_processed})"
        )


class NativeMessageStats(_kernel.StatsCore):
    """Scalar-totals message stats backed by C counters.

    The drop-in equivalent of ``MessageStats(detailed=False)``: the four
    ``record_*`` methods are C (and the delivery trampoline bumps the
    counters without any method call at all), while the breakdown
    accessors raise :class:`~repro.sim.metrics.DetailNotCollected`
    exactly like the pure-python scalar mode does.
    """

    __slots__ = ("_marks",)

    def __init__(self, detailed: bool = False) -> None:
        super().__init__(detailed=detailed)
        self._marks = {}

    def _not_collected(self, name: str):
        raise DetailNotCollected(
            f"MessageStats.{name} was never collected: this instance "
            f"was built with detailed=False (scalar totals only). "
            f"Use detailed=True / RegisterDeployment(detailed_stats="
            f"True) to measure per-kind/per-node breakdowns."
        )

    @property
    def by_sender(self):
        return self._not_collected("by_sender")

    @property
    def by_receiver(self):
        return self._not_collected("by_receiver")

    @property
    def by_kind(self):
        return self._not_collected("by_kind")

    @property
    def delivered_by_kind(self):
        return self._not_collected("delivered_by_kind")

    @property
    def dropped_by_kind(self):
        return self._not_collected("dropped_by_kind")

    @property
    def dropped_by_receiver(self):
        return self._not_collected("dropped_by_receiver")

    @property
    def dropped_by_reason(self):
        return self._not_collected("dropped_by_reason")

    def busiest_receiver(self) -> Tuple[Optional[int], int]:
        return self._not_collected("busiest_receiver")

    def receiver_load(self, node: int) -> float:
        return self._not_collected("receiver_load")

    def mark(self, name: str) -> None:
        """Remember the current sent-count under ``name`` (for deltas)."""
        self._marks[name] = self.sent

    def since_mark(self, name: str) -> int:
        """Messages sent since :meth:`mark` was called with ``name``."""
        return self.sent - self._marks.get(name, 0)

    def drop_rate(self) -> float:
        """Fraction of sent messages that were dropped."""
        if self.sent == 0:
            return 0.0
        return self.dropped / self.sent

    def reset(self) -> None:
        """Zero every counter — including the :meth:`mark` table."""
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self._marks.clear()
