/* Native simulation-kernel core (REPRO_KERNEL=native).
 *
 * A CPython extension housing the event-heap scheduler hot path of the
 * simulator: push/pop/cancel with (time, seq) ordering, the inlined
 * run() drain loops, the handle-free uncancellable delivery entries, a
 * scalar-totals MessageStats core, and a C delivery trampoline that
 * re-enters Python only at the algorithm-callback boundary
 * (``node.on_message``).
 *
 * Contract: byte-identical behaviour to the pure-python kernel in
 * ``repro.sim.scheduler`` / ``repro.sim.metrics`` / ``Network._deliver``.
 * Event ordering is a strict total order on (time, seq) — seq is unique —
 * so the C binary heap pops events in exactly the order heapq does, even
 * though the internal array layout may differ.  All times are IEEE-754
 * doubles on both sides, so ``now + delay`` produces the same bits.
 *
 * RNG draws never happen here: delays are sampled in Python (numpy) and
 * handed over as plain floats, which keeps the determinism contract
 * trivially aligned with the pure-python backend.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <stddef.h>

/* ------------------------------------------------------------------ */
/* Interned strings / cached exception types                          */
/* ------------------------------------------------------------------ */

static PyObject *str_active;        /* "active"          */
static PyObject *str_can_deliver;   /* "can_deliver"     */
static PyObject *str_on_message;    /* "on_message"      */
static PyObject *str_record_drop;   /* "record_drop"     */
static PyObject *str_record_delivery; /* "record_delivery" */
static PyObject *str_record_send;   /* "record_send"     */
static PyObject *str_fault;         /* "fault"           */
static PyObject *str_loss;          /* "loss"            */
static PyObject *str_adversary;     /* "adversary"       */
static PyObject *str_drop_action;   /* "drop"            */
static PyObject *str_kind_attr;     /* "kind"            */
static PyObject *str_dunder_name;   /* "__name__"        */
static PyObject *str_sample;        /* "sample"          */
static PyObject *str_random;        /* "random"          */
static PyObject *str_intercept;     /* "intercept"       */
static PyObject *str_loss_rate;     /* "loss_rate"       */
static PyObject *str_taps_attr;     /* "_taps"           */
static PyObject *str_adversary_attr; /* "_adversary"     */
static PyObject *str_loss_rng_attr; /* "_loss_rng"       */
static PyObject *str_deliver_attr;  /* "_deliver"        */
static PyObject *str_delay_model;   /* "delay_model"     */
static PyObject *str_rng_attr;      /* "rng"             */
static PyObject *scheduler_error = NULL;  /* repro.sim.scheduler.SchedulerError */

/* Lazily resolve SchedulerError so importing this module never requires
 * the Python package to be importable first (and vice versa). */
static PyObject *
get_scheduler_error(void)
{
    if (scheduler_error == NULL) {
        PyObject *mod = PyImport_ImportModule("repro.sim.scheduler");
        if (mod == NULL) {
            /* Fall back to RuntimeError (SchedulerError's base) rather
             * than failing to report the real usage error. */
            PyErr_Clear();
            scheduler_error = PyExc_RuntimeError;
            Py_INCREF(scheduler_error);
            return scheduler_error;
        }
        scheduler_error = PyObject_GetAttrString(mod, "SchedulerError");
        Py_DECREF(mod);
        if (scheduler_error == NULL) {
            PyErr_Clear();
            scheduler_error = PyExc_RuntimeError;
            Py_INCREF(scheduler_error);
        }
    }
    return scheduler_error;
}

/* ------------------------------------------------------------------ */
/* StatsCore: the MessageStats(detailed=False) scalar-totals fast path */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    long long sent;
    long long delivered;
    long long dropped;
} StatsCore;

static PyTypeObject StatsCore_Type;

#define StatsCore_Check(op) PyObject_TypeCheck((op), &StatsCore_Type)

static PyObject *
statscore_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    StatsCore *self = (StatsCore *)type->tp_alloc(type, 0);
    if (self != NULL) {
        self->sent = 0;
        self->delivered = 0;
        self->dropped = 0;
    }
    return (PyObject *)self;
}

static int
statscore_init(StatsCore *self, PyObject *args, PyObject *kwds)
{
    /* Accept and ignore a ``detailed`` keyword for signature parity with
     * MessageStats; the core is always scalar-totals (detailed=False). */
    static char *kwlist[] = {"detailed", NULL};
    int detailed = 0;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|p", kwlist, &detailed))
        return -1;
    if (detailed) {
        PyErr_SetString(PyExc_ValueError,
                        "the native stats core is scalar-totals only; "
                        "use repro.sim.metrics.MessageStats for "
                        "detailed=True");
        return -1;
    }
    return 0;
}

static PyObject *
statscore_record_send(StatsCore *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2 || nargs > 3) {
        PyErr_SetString(PyExc_TypeError,
                        "record_send expects (src, dst, kind)");
        return NULL;
    }
    self->sent += 1;
    Py_RETURN_NONE;
}

static PyObject *
statscore_record_sends(StatsCore *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2 || nargs > 3) {
        PyErr_SetString(PyExc_TypeError,
                        "record_sends expects (src, count, kind)");
        return NULL;
    }
    long long count = PyLong_AsLongLong(args[1]);
    if (count == -1 && PyErr_Occurred())
        return NULL;
    self->sent += count;
    Py_RETURN_NONE;
}

static PyObject *
statscore_record_delivery(StatsCore *self, PyObject *const *args,
                          Py_ssize_t nargs)
{
    if (nargs < 2 || nargs > 3) {
        PyErr_SetString(PyExc_TypeError,
                        "record_delivery expects (src, dst[, kind])");
        return NULL;
    }
    self->delivered += 1;
    Py_RETURN_NONE;
}

static PyObject *
statscore_record_drop(StatsCore *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"src", "dst", "kind", "reason", NULL};
    PyObject *src, *dst, *kind = Py_None, *reason = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OO|OO", kwlist,
                                     &src, &dst, &kind, &reason))
        return NULL;
    self->dropped += 1;
    Py_RETURN_NONE;
}

static PyObject *
statscore_get_detailed(StatsCore *self, void *closure)
{
    Py_RETURN_FALSE;
}

static PyObject *
statscore_repr(StatsCore *self)
{
    return PyUnicode_FromFormat(
        "MessageStats(sent=%lld, delivered=%lld, dropped=%lld)",
        self->sent, self->delivered, self->dropped);
}

static PyMemberDef statscore_members[] = {
    {"sent", T_LONGLONG, offsetof(StatsCore, sent), 0,
     "total messages sent"},
    {"delivered", T_LONGLONG, offsetof(StatsCore, delivered), 0,
     "total messages delivered"},
    {"dropped", T_LONGLONG, offsetof(StatsCore, dropped), 0,
     "total messages dropped"},
    {NULL}
};

static PyGetSetDef statscore_getset[] = {
    {"detailed", (getter)statscore_get_detailed, NULL,
     "always False: the native core keeps scalar totals only", NULL},
    {NULL}
};

static PyMethodDef statscore_methods[] = {
    {"record_send", (PyCFunction)statscore_record_send, METH_FASTCALL,
     "Record one message leaving src for dst."},
    {"record_sends", (PyCFunction)statscore_record_sends, METH_FASTCALL,
     "Record count messages leaving src in one update."},
    {"record_delivery", (PyCFunction)statscore_record_delivery,
     METH_FASTCALL, "Record one message arriving at dst."},
    {"record_drop", (PyCFunction)statscore_record_drop,
     METH_VARARGS | METH_KEYWORDS,
     "Record a message lost to a crash, partition or lossy link."},
    {NULL}
};

static PyTypeObject StatsCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._native._kernel.StatsCore",
    .tp_basicsize = sizeof(StatsCore),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE,
    .tp_doc = "Scalar-totals message counters (the detailed=False fast path).",
    .tp_new = statscore_new,
    .tp_init = (initproc)statscore_init,
    .tp_repr = (reprfunc)statscore_repr,
    .tp_members = statscore_members,
    .tp_getset = statscore_getset,
    .tp_methods = statscore_methods,
};

/* ------------------------------------------------------------------ */
/* DeliveryCore: Network._deliver without a Python frame               */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    PyObject *stats;    /* StatsCore or a python MessageStats */
    PyObject *failures; /* FailureInjector */
    PyObject *nodes;    /* the Network's {node_id: Node} dict (shared) */
} DeliveryCore;

static PyTypeObject DeliveryCore_Type;

static PyObject *
deliverycore_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PyObject *stats, *failures, *nodes;
    if (!PyArg_ParseTuple(args, "OOO!", &stats, &failures,
                          &PyDict_Type, &nodes))
        return NULL;
    DeliveryCore *self = (DeliveryCore *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    Py_INCREF(stats);
    self->stats = stats;
    Py_INCREF(failures);
    self->failures = failures;
    Py_INCREF(nodes);
    self->nodes = nodes;
    return (PyObject *)self;
}

static int
deliverycore_traverse(DeliveryCore *self, visitproc visit, void *arg)
{
    Py_VISIT(self->stats);
    Py_VISIT(self->failures);
    Py_VISIT(self->nodes);
    return 0;
}

static int
deliverycore_clear(DeliveryCore *self)
{
    Py_CLEAR(self->stats);
    Py_CLEAR(self->failures);
    Py_CLEAR(self->nodes);
    return 0;
}

static void
deliverycore_dealloc(DeliveryCore *self)
{
    PyObject_GC_UnTrack(self);
    deliverycore_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* The body of Network._deliver, mirrored exactly:
 *
 *     failures = self.failures
 *     if failures.active and not failures.can_deliver(src, dst):
 *         self.stats.record_drop(src, dst, kind, reason="fault")
 *         return
 *     self.stats.record_delivery(src, dst, kind)
 *     self._nodes[dst].on_message(src, message)
 *
 * Returns 0 on success, -1 with an exception set on failure.
 */
static int
delivery_invoke(DeliveryCore *self, PyObject *src, PyObject *dst,
                PyObject *message, PyObject *kind)
{
    PyObject *active = PyObject_GetAttr(self->failures, str_active);
    if (active == NULL)
        return -1;
    int is_active = PyObject_IsTrue(active);
    Py_DECREF(active);
    if (is_active < 0)
        return -1;
    if (is_active) {
        PyObject *ok = PyObject_CallMethodObjArgs(
            self->failures, str_can_deliver, src, dst, NULL);
        if (ok == NULL)
            return -1;
        int deliverable = PyObject_IsTrue(ok);
        Py_DECREF(ok);
        if (deliverable < 0)
            return -1;
        if (!deliverable) {
            if (StatsCore_Check(self->stats)) {
                ((StatsCore *)self->stats)->dropped += 1;
            }
            else {
                PyObject *res = PyObject_CallMethodObjArgs(
                    self->stats, str_record_drop, src, dst, kind,
                    str_fault, NULL);
                if (res == NULL)
                    return -1;
                Py_DECREF(res);
            }
            return 0;
        }
    }
    if (StatsCore_Check(self->stats)) {
        ((StatsCore *)self->stats)->delivered += 1;
    }
    else {
        PyObject *res = PyObject_CallMethodObjArgs(
            self->stats, str_record_delivery, src, dst, kind, NULL);
        if (res == NULL)
            return -1;
        Py_DECREF(res);
    }
    PyObject *node = PyDict_GetItemWithError(self->nodes, dst);
    if (node == NULL) {
        if (!PyErr_Occurred())
            PyErr_SetObject(PyExc_KeyError, dst);
        return -1;
    }
    /* Borrowed node ref stays alive: the nodes dict is never mutated
     * from inside on_message (nodes are only added during set-up). */
    Py_INCREF(node);
    PyObject *res = PyObject_CallMethodObjArgs(
        node, str_on_message, src, message, NULL);
    Py_DECREF(node);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

static PyObject *
deliverycore_call(DeliveryCore *self, PyObject *args, PyObject *kwds)
{
    PyObject *src, *dst, *message, *kind;
    if (kwds != NULL && PyDict_GET_SIZE(kwds) != 0) {
        PyErr_SetString(PyExc_TypeError,
                        "delivery takes no keyword arguments");
        return NULL;
    }
    if (!PyArg_UnpackTuple(args, "delivery", 4, 4,
                           &src, &dst, &message, &kind))
        return NULL;
    if (delivery_invoke(self, src, dst, message, kind) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyMemberDef deliverycore_members[] = {
    {"stats", T_OBJECT_EX, offsetof(DeliveryCore, stats), READONLY,
     "the stats object deliveries are recorded on"},
    {"failures", T_OBJECT_EX, offsetof(DeliveryCore, failures), READONLY,
     "the FailureInjector consulted per delivery"},
    {NULL}
};

static PyTypeObject DeliveryCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._native._kernel.DeliveryCore",
    .tp_basicsize = sizeof(DeliveryCore),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Network._deliver as a C callable: fault check, stats "
              "update, then node.on_message(src, message).",
    .tp_new = deliverycore_new,
    .tp_dealloc = (destructor)deliverycore_dealloc,
    .tp_traverse = (traverseproc)deliverycore_traverse,
    .tp_clear = (inquiry)deliverycore_clear,
    .tp_call = (ternaryfunc)deliverycore_call,
    .tp_members = deliverycore_members,
};

/* ------------------------------------------------------------------ */
/* EventHandle                                                         */
/* ------------------------------------------------------------------ */

struct SchedulerCore;

typedef struct {
    PyObject_HEAD
    double time;
    long long seq;
    PyObject *callback;
    PyObject *args;             /* always a tuple */
    struct SchedulerCore *owner; /* strong reference (cycle: GC-tracked) */
    char cancelled;
    char dequeued;
} KernelHandle;

static PyTypeObject KernelHandle_Type;

static int
kernelhandle_traverse(KernelHandle *self, visitproc visit, void *arg)
{
    Py_VISIT(self->callback);
    Py_VISIT(self->args);
    Py_VISIT((PyObject *)self->owner);
    return 0;
}

static int
kernelhandle_clear(KernelHandle *self)
{
    Py_CLEAR(self->callback);
    Py_CLEAR(self->args);
    Py_CLEAR(self->owner);
    return 0;
}

static void
kernelhandle_dealloc(KernelHandle *self)
{
    PyObject_GC_UnTrack(self);
    kernelhandle_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* forward declaration: cancel touches the owner's live counter */
static PyObject *kernelhandle_cancel(KernelHandle *self,
                                     PyObject *Py_UNUSED(ignored));

static PyObject *
kernelhandle_repr(KernelHandle *self)
{
    const char *state = self->cancelled ? "cancelled" : "pending";
    PyObject *name = NULL;
    if (self->callback != NULL)
        name = PyObject_GetAttrString(self->callback, "__name__");
    if (name == NULL) {
        PyErr_Clear();
        name = PyObject_Repr(self->callback ? self->callback : Py_None);
        if (name == NULL)
            return NULL;
    }
    PyObject *time = PyFloat_FromDouble(self->time);
    if (time == NULL) {
        Py_DECREF(name);
        return NULL;
    }
    PyObject *out = PyUnicode_FromFormat(
        "EventHandle(t=%R, seq=%lld, %U, %s)",
        time, self->seq, name, state);
    Py_DECREF(time);
    Py_DECREF(name);
    return out;
}

static PyObject *
kernelhandle_get_cancelled(KernelHandle *self, void *closure)
{
    return PyBool_FromLong(self->cancelled);
}

static PyObject *
kernelhandle_get_dequeued(KernelHandle *self, void *closure)
{
    return PyBool_FromLong(self->dequeued);
}

static PyObject *
kernelhandle_richcompare(PyObject *a, PyObject *b, int op)
{
    if (op != Py_LT || !PyObject_TypeCheck(a, &KernelHandle_Type)
        || !PyObject_TypeCheck(b, &KernelHandle_Type))
        Py_RETURN_NOTIMPLEMENTED;
    KernelHandle *ha = (KernelHandle *)a, *hb = (KernelHandle *)b;
    int lt = (ha->time < hb->time)
             || (ha->time == hb->time && ha->seq < hb->seq);
    return PyBool_FromLong(lt);
}

static PyMemberDef kernelhandle_members[] = {
    {"time", T_DOUBLE, offsetof(KernelHandle, time), READONLY,
     "absolute simulated firing time"},
    {"seq", T_LONGLONG, offsetof(KernelHandle, seq), READONLY,
     "scheduling sequence number (tie-breaker)"},
    {"callback", T_OBJECT_EX, offsetof(KernelHandle, callback), READONLY,
     "the scheduled callable"},
    {"args", T_OBJECT_EX, offsetof(KernelHandle, args), READONLY,
     "the callable's argument tuple"},
    {NULL}
};

static PyGetSetDef kernelhandle_getset[] = {
    {"cancelled", (getter)kernelhandle_get_cancelled, NULL,
     "True once cancel() was called", NULL},
    {"_dequeued", (getter)kernelhandle_get_dequeued, NULL,
     "True once the heap entry was popped", NULL},
    {NULL}
};

static PyMethodDef kernelhandle_methods[] = {
    {"cancel", (PyCFunction)kernelhandle_cancel, METH_NOARGS,
     "Prevent the event from firing.  Idempotent."},
    {NULL}
};

static PyTypeObject KernelHandle_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._native._kernel.EventHandle",
    .tp_basicsize = sizeof(KernelHandle),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A cancellable reference to a scheduled event.",
    .tp_dealloc = (destructor)kernelhandle_dealloc,
    .tp_traverse = (traverseproc)kernelhandle_traverse,
    .tp_clear = (inquiry)kernelhandle_clear,
    .tp_repr = (reprfunc)kernelhandle_repr,
    .tp_richcompare = kernelhandle_richcompare,
    .tp_members = kernelhandle_members,
    .tp_getset = kernelhandle_getset,
    .tp_methods = kernelhandle_methods,
};

/* ------------------------------------------------------------------ */
/* SchedulerCore                                                       */
/* ------------------------------------------------------------------ */

/* One heap slot.  Two layouts share the struct (the heap is hot; a
 * union of PyObject* slots keeps it 32 bytes):
 *   handle entry:        obj = KernelHandle*,  args = NULL
 *   uncancellable entry: obj = callback,       args = tuple
 */
typedef struct {
    double time;
    long long seq;
    PyObject *obj;
    PyObject *args;
} KEvent;

typedef struct SchedulerCore {
    PyObject_HEAD
    KEvent *heap;
    Py_ssize_t len;
    Py_ssize_t cap;
    double now;
    long long seq;
    long long processed;
    long long live;
    int stopped;
} SchedulerCore;

static PyTypeObject SchedulerCore_Type;

static inline int
ev_lt(const KEvent *a, const KEvent *b)
{
    return a->time < b->time || (a->time == b->time && a->seq < b->seq);
}

static int
heap_grow(SchedulerCore *self)
{
    Py_ssize_t cap = self->cap ? self->cap * 2 : 64;
    KEvent *heap = PyMem_Realloc(self->heap, (size_t)cap * sizeof(KEvent));
    if (heap == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    self->heap = heap;
    self->cap = cap;
    return 0;
}

/* Push: steals no references — the caller hands over ownership of
 * ev.obj / ev.args on success and keeps it on failure. */
static int
heap_push(SchedulerCore *self, KEvent ev)
{
    if (self->len == self->cap && heap_grow(self) < 0)
        return -1;
    Py_ssize_t i = self->len++;
    KEvent *heap = self->heap;
    while (i > 0) {
        Py_ssize_t parent = (i - 1) >> 1;
        if (ev_lt(&ev, &heap[parent])) {
            heap[i] = heap[parent];
            i = parent;
        }
        else
            break;
    }
    heap[i] = ev;
    return 0;
}

/* Pop the root; the caller owns the returned event's references.
 * Precondition: len > 0. */
static KEvent
heap_pop(SchedulerCore *self)
{
    KEvent *heap = self->heap;
    KEvent top = heap[0];
    KEvent last = heap[--self->len];
    Py_ssize_t n = self->len;
    if (n > 0) {
        Py_ssize_t i = 0;
        for (;;) {
            Py_ssize_t child = 2 * i + 1;
            if (child >= n)
                break;
            if (child + 1 < n && ev_lt(&heap[child + 1], &heap[child]))
                child += 1;
            if (ev_lt(&heap[child], &last)) {
                heap[i] = heap[child];
                i = child;
            }
            else
                break;
        }
        heap[i] = last;
    }
    return top;
}

static PyObject *
kernelhandle_cancel(KernelHandle *self, PyObject *Py_UNUSED(ignored))
{
    if (self->cancelled)
        Py_RETURN_NONE;
    self->cancelled = 1;
    /* Keep the owner's live-event counter exact: a handle leaves the
     * live count exactly once — here, or when it is popped and run. */
    if (self->owner != NULL && !self->dequeued)
        self->owner->live -= 1;
    Py_RETURN_NONE;
}

static PyObject *
schedulercore_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    SchedulerCore *self = (SchedulerCore *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->heap = NULL;
    self->len = 0;
    self->cap = 0;
    self->now = 0.0;
    self->seq = 0;
    self->processed = 0;
    self->live = 0;
    self->stopped = 0;
    return (PyObject *)self;
}

static int
schedulercore_traverse(SchedulerCore *self, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < self->len; i++) {
        Py_VISIT(self->heap[i].obj);
        Py_VISIT(self->heap[i].args);
    }
    return 0;
}

static int
schedulercore_clear(SchedulerCore *self)
{
    Py_ssize_t n = self->len;
    self->len = 0;
    for (Py_ssize_t i = 0; i < n; i++) {
        Py_CLEAR(self->heap[i].obj);
        Py_CLEAR(self->heap[i].args);
    }
    return 0;
}

static void
schedulercore_dealloc(SchedulerCore *self)
{
    PyObject_GC_UnTrack(self);
    schedulercore_clear(self);
    PyMem_Free(self->heap);
    self->heap = NULL;
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* Build the args tuple for a schedule call's trailing *args. */
static PyObject *
pack_args(PyObject *const *args, Py_ssize_t start, Py_ssize_t nargs)
{
    PyObject *tuple = PyTuple_New(nargs - start);
    if (tuple == NULL)
        return NULL;
    for (Py_ssize_t i = start; i < nargs; i++) {
        PyObject *item = args[i];
        Py_INCREF(item);
        PyTuple_SET_ITEM(tuple, i - start, item);
    }
    return tuple;
}

/* Shared push path for schedule / schedule_at / call_soon. */
static PyObject *
push_handle_event(SchedulerCore *self, double time, PyObject *callback,
                  PyObject *argtuple /* stolen on success */)
{
    KernelHandle *handle =
        PyObject_GC_New(KernelHandle, &KernelHandle_Type);
    if (handle == NULL) {
        Py_DECREF(argtuple);
        return NULL;
    }
    handle->time = time;
    handle->seq = self->seq;
    Py_INCREF(callback);
    handle->callback = callback;
    handle->args = argtuple;  /* stolen */
    Py_INCREF(self);
    handle->owner = self;
    handle->cancelled = 0;
    handle->dequeued = 0;
    PyObject_GC_Track((PyObject *)handle);

    KEvent ev;
    ev.time = time;
    ev.seq = self->seq;
    Py_INCREF(handle);
    ev.obj = (PyObject *)handle;
    ev.args = NULL;
    if (heap_push(self, ev) < 0) {
        Py_DECREF(handle);  /* the heap's ref */
        Py_DECREF(handle);  /* the return ref */
        return NULL;
    }
    self->seq += 1;
    self->live += 1;
    return (PyObject *)handle;
}

static PyObject *
schedulercore_schedule(SchedulerCore *self, PyObject *const *args,
                       Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule expects (delay, callback, *args)");
        return NULL;
    }
    double delay = PyFloat_AsDouble(args[0]);
    if (delay == -1.0 && PyErr_Occurred())
        return NULL;
    if (delay < 0) {
        PyErr_Format(get_scheduler_error(),
                     "cannot schedule into the past (delay=%R)", args[0]);
        return NULL;
    }
    PyObject *argtuple = pack_args(args, 2, nargs);
    if (argtuple == NULL)
        return NULL;
    return push_handle_event(self, self->now + delay, args[1], argtuple);
}

static PyObject *
schedulercore_schedule_at(SchedulerCore *self, PyObject *const *args,
                          Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule_at expects (time, callback, *args)");
        return NULL;
    }
    double time = PyFloat_AsDouble(args[0]);
    if (time == -1.0 && PyErr_Occurred())
        return NULL;
    if (time < self->now) {
        PyObject *now_obj = PyFloat_FromDouble(self->now);
        if (now_obj == NULL)
            return NULL;
        PyErr_Format(get_scheduler_error(),
                     "cannot schedule at t=%R before current time t=%R",
                     args[0], now_obj);
        Py_DECREF(now_obj);
        return NULL;
    }
    PyObject *argtuple = pack_args(args, 2, nargs);
    if (argtuple == NULL)
        return NULL;
    return push_handle_event(self, time, args[1], argtuple);
}

static PyObject *
schedulercore_call_soon(SchedulerCore *self, PyObject *const *args,
                        Py_ssize_t nargs)
{
    if (nargs < 1) {
        PyErr_SetString(PyExc_TypeError,
                        "call_soon expects (callback, *args)");
        return NULL;
    }
    PyObject *argtuple = pack_args(args, 1, nargs);
    if (argtuple == NULL)
        return NULL;
    return push_handle_event(self, self->now, args[0], argtuple);
}

static PyObject *
schedulercore_schedule_uncancellable(SchedulerCore *self,
                                     PyObject *const *args,
                                     Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(
            PyExc_TypeError,
            "schedule_uncancellable expects (delay, callback, *args)");
        return NULL;
    }
    double delay = PyFloat_AsDouble(args[0]);
    if (delay == -1.0 && PyErr_Occurred())
        return NULL;
    if (delay < 0) {
        PyErr_Format(get_scheduler_error(),
                     "cannot schedule into the past (delay=%R)", args[0]);
        return NULL;
    }
    PyObject *argtuple = pack_args(args, 2, nargs);
    if (argtuple == NULL)
        return NULL;
    KEvent ev;
    ev.time = self->now + delay;
    ev.seq = self->seq;
    Py_INCREF(args[1]);
    ev.obj = args[1];
    ev.args = argtuple;
    if (heap_push(self, ev) < 0) {
        Py_DECREF(ev.obj);
        Py_DECREF(ev.args);
        return NULL;
    }
    self->seq += 1;
    self->live += 1;
    Py_RETURN_NONE;
}

/* schedule_deliveries(delays, callback, src, dsts, message, kind)
 *
 * The batched tail of Network.broadcast: one C call pushes one
 * uncancellable delivery per (delay, dst) pair, validating delays and
 * consuming seq numbers exactly as a Python loop of
 * schedule_uncancellable(delay, callback, src, dst, message, kind)
 * calls would.
 */
static PyObject *
schedulercore_schedule_deliveries(SchedulerCore *self,
                                  PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 6) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule_deliveries expects (delays, callback, "
                        "src, dsts, message, kind)");
        return NULL;
    }
    PyObject *delays = PySequence_Fast(args[0], "delays must be a sequence");
    if (delays == NULL)
        return NULL;
    PyObject *dsts = PySequence_Fast(args[3], "dsts must be a sequence");
    if (dsts == NULL) {
        Py_DECREF(delays);
        return NULL;
    }
    PyObject *callback = args[1], *src = args[2];
    PyObject *message = args[4], *kind = args[5];
    Py_ssize_t n = PySequence_Fast_GET_SIZE(delays);
    if (PySequence_Fast_GET_SIZE(dsts) != n) {
        Py_DECREF(delays);
        Py_DECREF(dsts);
        PyErr_SetString(PyExc_ValueError,
                        "delays and dsts must have equal length");
        return NULL;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *delay_obj = PySequence_Fast_GET_ITEM(delays, i);
        double delay = PyFloat_AsDouble(delay_obj);
        if (delay == -1.0 && PyErr_Occurred())
            goto fail;
        if (delay <= 0) {
            PyErr_Format(PyExc_ValueError,
                         "delay model produced non-positive delay %S",
                         delay_obj);
            goto fail;
        }
        PyObject *dst = PySequence_Fast_GET_ITEM(dsts, i);
        PyObject *argtuple = PyTuple_Pack(4, src, dst, message, kind);
        if (argtuple == NULL)
            goto fail;
        KEvent ev;
        ev.time = self->now + delay;
        ev.seq = self->seq;
        Py_INCREF(callback);
        ev.obj = callback;
        ev.args = argtuple;
        if (heap_push(self, ev) < 0) {
            Py_DECREF(ev.obj);
            Py_DECREF(ev.args);
            goto fail;
        }
        self->seq += 1;
        self->live += 1;
    }
    Py_DECREF(delays);
    Py_DECREF(dsts);
    Py_RETURN_NONE;
fail:
    Py_DECREF(delays);
    Py_DECREF(dsts);
    return NULL;
}

/* Invoke callback(*args); the DeliveryCore case skips tp_call. */
static inline int
dispatch(PyObject *callback, PyObject *args)
{
    if (Py_TYPE(callback) == &DeliveryCore_Type
        && PyTuple_GET_SIZE(args) == 4) {
        return delivery_invoke((DeliveryCore *)callback,
                               PyTuple_GET_ITEM(args, 0),
                               PyTuple_GET_ITEM(args, 1),
                               PyTuple_GET_ITEM(args, 2),
                               PyTuple_GET_ITEM(args, 3));
    }
    PyObject *res = PyObject_Call(callback, args, NULL);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

static PyObject *
schedulercore_step(SchedulerCore *self, PyObject *Py_UNUSED(ignored))
{
    while (self->len > 0) {
        KEvent ev = heap_pop(self);
        PyObject *callback, *args;
        KernelHandle *handle = NULL;
        if (ev.args == NULL) {
            handle = (KernelHandle *)ev.obj;
            handle->dequeued = 1;
            if (handle->cancelled) {
                Py_DECREF(ev.obj);
                continue;
            }
            callback = handle->callback;
            args = handle->args;
        }
        else {
            callback = ev.obj;
            args = ev.args;
        }
        self->live -= 1;
        self->now = ev.time;
        self->processed += 1;
        int rc = dispatch(callback, args);
        Py_DECREF(ev.obj);
        Py_XDECREF(ev.args);
        if (rc < 0)
            return NULL;
        Py_RETURN_TRUE;
    }
    Py_RETURN_FALSE;
}

static PyObject *
schedulercore_run(SchedulerCore *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"until", "max_events", "stop_when", NULL};
    PyObject *until_obj = Py_None;
    PyObject *max_events_obj = Py_None;
    PyObject *stop_when = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|OOO", kwlist,
                                     &until_obj, &max_events_obj,
                                     &stop_when))
        return NULL;

    self->stopped = 0;

    int have_until = until_obj != Py_None;
    double until = 0.0;
    if (have_until) {
        until = PyFloat_AsDouble(until_obj);
        if (until == -1.0 && PyErr_Occurred())
            return NULL;
    }
    int have_max = max_events_obj != Py_None;
    long long max_events = 0;
    if (have_max) {
        max_events = PyLong_AsLongLong(max_events_obj);
        if (max_events == -1 && PyErr_Occurred())
            return NULL;
    }
    int have_stop_when = stop_when != Py_None;

    if (!have_until && !have_max && !have_stop_when) {
        /* Fast drain loop: no limit checks, one pop per event. */
        while (self->len > 0) {
            if (self->stopped)
                break;
            KEvent ev = heap_pop(self);
            PyObject *callback, *cbargs;
            if (ev.args == NULL) {
                KernelHandle *handle = (KernelHandle *)ev.obj;
                handle->dequeued = 1;
                if (handle->cancelled) {
                    Py_DECREF(ev.obj);
                    continue;
                }
                callback = handle->callback;
                cbargs = handle->args;
            }
            else {
                callback = ev.obj;
                cbargs = ev.args;
            }
            self->live -= 1;
            self->now = ev.time;
            self->processed += 1;
            int rc = dispatch(callback, cbargs);
            Py_DECREF(ev.obj);
            Py_XDECREF(ev.args);
            if (rc < 0)
                return NULL;
        }
        return PyFloat_FromDouble(self->now);
    }

    long long executed = 0;
    while (self->len > 0) {
        if (self->stopped)
            break;
        /* Peek the head; cancelled handle entries are drained without
         * consuming any of the run limits. */
        KEvent *head = &self->heap[0];
        double head_time;
        if (head->args == NULL) {
            KernelHandle *handle = (KernelHandle *)head->obj;
            if (handle->cancelled) {
                handle->dequeued = 1;
                KEvent ev = heap_pop(self);
                Py_DECREF(ev.obj);
                continue;
            }
            head_time = handle->time;
        }
        else
            head_time = head->time;
        if (have_until && head_time > until) {
            self->now = until;
            break;
        }
        if (have_max && executed >= max_events)
            break;
        KEvent ev = heap_pop(self);
        PyObject *callback, *cbargs;
        if (ev.args == NULL) {
            KernelHandle *handle = (KernelHandle *)ev.obj;
            handle->dequeued = 1;
            callback = handle->callback;
            cbargs = handle->args;
        }
        else {
            callback = ev.obj;
            cbargs = ev.args;
        }
        self->live -= 1;
        self->now = head_time;
        self->processed += 1;
        int rc = dispatch(callback, cbargs);
        Py_DECREF(ev.obj);
        Py_XDECREF(ev.args);
        if (rc < 0)
            return NULL;
        executed += 1;
        if (have_stop_when) {
            PyObject *verdict = PyObject_CallNoArgs(stop_when);
            if (verdict == NULL)
                return NULL;
            int stop = PyObject_IsTrue(verdict);
            Py_DECREF(verdict);
            if (stop < 0)
                return NULL;
            if (stop)
                break;
        }
    }
    return PyFloat_FromDouble(self->now);
}

static PyObject *
schedulercore_stop(SchedulerCore *self, PyObject *Py_UNUSED(ignored))
{
    self->stopped = 1;
    Py_RETURN_NONE;
}

static PyObject *
schedulercore_get_now(SchedulerCore *self, void *closure)
{
    return PyFloat_FromDouble(self->now);
}

static PyObject *
schedulercore_get_events_processed(SchedulerCore *self, void *closure)
{
    return PyLong_FromLongLong(self->processed);
}

static PyObject *
schedulercore_get_pending(SchedulerCore *self, void *closure)
{
    return PyLong_FromLongLong(self->live);
}

/* Debug/introspection snapshot mirroring the pure-python Scheduler's
 * ``_queue`` list: (time, seq, handle) for cancellable entries and
 * (time, seq, callback, args) for uncancellable ones, in heap (not
 * sorted) order.  Built fresh per access — tests only. */
static PyObject *
schedulercore_get_queue(SchedulerCore *self, void *closure)
{
    PyObject *out = PyList_New(self->len);
    if (out == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < self->len; i++) {
        KEvent *ev = &self->heap[i];
        PyObject *time = PyFloat_FromDouble(ev->time);
        PyObject *seq = PyLong_FromLongLong(ev->seq);
        PyObject *entry = NULL;
        if (time != NULL && seq != NULL) {
            if (ev->args == NULL)
                entry = PyTuple_Pack(3, time, seq, ev->obj);
            else
                entry = PyTuple_Pack(4, time, seq, ev->obj, ev->args);
        }
        Py_XDECREF(time);
        Py_XDECREF(seq);
        if (entry == NULL) {
            Py_DECREF(out);
            return NULL;
        }
        PyList_SET_ITEM(out, i, entry);
    }
    return out;
}

static PyGetSetDef schedulercore_getset[] = {
    {"now", (getter)schedulercore_get_now, NULL,
     "Current simulated time.", NULL},
    {"events_processed", (getter)schedulercore_get_events_processed, NULL,
     "Number of events executed so far.", NULL},
    {"pending", (getter)schedulercore_get_pending, NULL,
     "Number of non-cancelled events still queued (O(1) live counter).",
     NULL},
    {"_queue", (getter)schedulercore_get_queue, NULL,
     "Debug snapshot of the heap entries (tests only).", NULL},
    {NULL}
};

static PyMethodDef schedulercore_methods[] = {
    {"schedule", (PyCFunction)schedulercore_schedule, METH_FASTCALL,
     "Schedule callback(*args) to run delay time units from now."},
    {"schedule_at", (PyCFunction)schedulercore_schedule_at, METH_FASTCALL,
     "Schedule callback(*args) at an absolute simulated time."},
    {"call_soon", (PyCFunction)schedulercore_call_soon, METH_FASTCALL,
     "Schedule callback(*args) at the current time (after queued events)."},
    {"schedule_uncancellable",
     (PyCFunction)schedulercore_schedule_uncancellable, METH_FASTCALL,
     "Schedule an event that can never be cancelled; returns no handle."},
    {"schedule_deliveries",
     (PyCFunction)schedulercore_schedule_deliveries, METH_FASTCALL,
     "Push one uncancellable delivery per (delay, dst) pair in one call."},
    {"step", (PyCFunction)schedulercore_step, METH_NOARGS,
     "Execute the next event.  Returns False when the queue is empty."},
    {"run", (PyCFunction)schedulercore_run,
     METH_VARARGS | METH_KEYWORDS,
     "Run events until the queue drains or a limit is reached."},
    {"stop", (PyCFunction)schedulercore_stop, METH_NOARGS,
     "Request that run() return after the current event."},
    {NULL}
};

static PyTypeObject SchedulerCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._native._kernel.SchedulerCore",
    .tp_basicsize = sizeof(SchedulerCore),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE
                | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Native discrete-event scheduler core (C event heap).",
    .tp_new = schedulercore_new,
    .tp_dealloc = (destructor)schedulercore_dealloc,
    .tp_traverse = (traverseproc)schedulercore_traverse,
    .tp_clear = (inquiry)schedulercore_clear,
    .tp_getset = schedulercore_getset,
    .tp_methods = schedulercore_methods,
};

/* ------------------------------------------------------------------ */
/* SendCore: Network.send without a Python frame                       */
/* ------------------------------------------------------------------ */

/* The full body of Network.send, transcribed statement for statement —
 * including the operation order the streams depend on: stats/taps
 * first, then the loss draw (always, so the loss stream advances
 * identically however many nodes are crashed), then the fault check,
 * the loss verdict, the adversary, and finally the delay sample and
 * heap push.  Mutable knobs (loss_rate, _taps, _adversary, _loss_rng,
 * _deliver, delay_model, rng) are re-read from the Network on every
 * call so set_message_loss / set_adversary / trace monkeypatches keep
 * working; only the identity-stable collaborators (stats, failures,
 * nodes dict, scheduler) are bound at construction.
 */
typedef struct {
    PyObject_HEAD
    PyObject *network;    /* the owning Network (cycle; GC-tracked) */
    PyObject *stats;
    PyObject *failures;
    PyObject *nodes;      /* the Network's {node_id: Node} dict (shared) */
    SchedulerCore *sched; /* must be a native SchedulerCore */
} SendCore;

static PyTypeObject SendCore_Type;

/* message.kind if truthy, else type(message).__name__ — _kind_of(). */
static PyObject *
kind_of(PyObject *message)
{
    PyObject *kind = PyObject_GetAttr(message, str_kind_attr);
    if (kind == NULL) {
        if (!PyErr_ExceptionMatches(PyExc_AttributeError))
            return NULL;
        PyErr_Clear();
        return PyObject_GetAttr((PyObject *)Py_TYPE(message),
                                str_dunder_name);
    }
    int truth = PyObject_IsTrue(kind);
    if (truth < 0) {
        Py_DECREF(kind);
        return NULL;
    }
    if (truth)
        return kind;
    Py_DECREF(kind);
    return PyObject_GetAttr((PyObject *)Py_TYPE(message), str_dunder_name);
}

/* stats.record_drop(src, dst, kind, reason) — scalar-fast when native. */
static int
stats_record_drop(PyObject *stats, PyObject *src, PyObject *dst,
                  PyObject *kind, PyObject *reason)
{
    if (StatsCore_Check(stats)) {
        ((StatsCore *)stats)->dropped += 1;
        return 0;
    }
    PyObject *res = PyObject_CallMethodObjArgs(
        stats, str_record_drop, src, dst, kind, reason, NULL);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

static PyObject *
sendcore_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PyObject *network;
    if (!PyArg_ParseTuple(args, "O", &network))
        return NULL;
    PyObject *stats = PyObject_GetAttrString(network, "stats");
    if (stats == NULL)
        return NULL;
    PyObject *failures = PyObject_GetAttrString(network, "failures");
    if (failures == NULL) {
        Py_DECREF(stats);
        return NULL;
    }
    PyObject *nodes = PyObject_GetAttrString(network, "_nodes");
    if (nodes == NULL || !PyDict_Check(nodes)) {
        Py_DECREF(stats);
        Py_DECREF(failures);
        Py_XDECREF(nodes);
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError,
                            "network._nodes must be a dict");
        return NULL;
    }
    PyObject *sched = PyObject_GetAttrString(network, "scheduler");
    if (sched == NULL || !PyObject_TypeCheck(sched, &SchedulerCore_Type)) {
        Py_DECREF(stats);
        Py_DECREF(failures);
        Py_DECREF(nodes);
        Py_XDECREF(sched);
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError,
                            "SendCore needs a native SchedulerCore");
        return NULL;
    }
    SendCore *self = (SendCore *)type->tp_alloc(type, 0);
    if (self == NULL) {
        Py_DECREF(stats);
        Py_DECREF(failures);
        Py_DECREF(nodes);
        Py_DECREF(sched);
        return NULL;
    }
    Py_INCREF(network);
    self->network = network;
    self->stats = stats;
    self->failures = failures;
    self->nodes = nodes;
    self->sched = (SchedulerCore *)sched;
    return (PyObject *)self;
}

static int
sendcore_traverse(SendCore *self, visitproc visit, void *arg)
{
    Py_VISIT(self->network);
    Py_VISIT(self->stats);
    Py_VISIT(self->failures);
    Py_VISIT(self->nodes);
    Py_VISIT((PyObject *)self->sched);
    return 0;
}

static int
sendcore_clear(SendCore *self)
{
    Py_CLEAR(self->network);
    Py_CLEAR(self->stats);
    Py_CLEAR(self->failures);
    Py_CLEAR(self->nodes);
    Py_CLEAR(self->sched);
    return 0;
}

static void
sendcore_dealloc(SendCore *self)
{
    PyObject_GC_UnTrack(self);
    sendcore_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
sendcore_call(SendCore *self, PyObject *args, PyObject *kwds)
{
    PyObject *src, *dst, *message;
    if (kwds != NULL && PyDict_GET_SIZE(kwds) != 0) {
        PyErr_SetString(PyExc_TypeError,
                        "send takes no keyword arguments");
        return NULL;
    }
    if (!PyArg_UnpackTuple(args, "send", 3, 3, &src, &dst, &message))
        return NULL;

    int known = PyDict_Contains(self->nodes, dst);
    if (known < 0)
        return NULL;
    if (!known) {
        PyErr_Format(PyExc_KeyError, "unknown destination node %S", dst);
        return NULL;
    }
    PyObject *kind = kind_of(message);
    if (kind == NULL)
        return NULL;

    if (StatsCore_Check(self->stats)) {
        ((StatsCore *)self->stats)->sent += 1;
    }
    else {
        PyObject *res = PyObject_CallMethodObjArgs(
            self->stats, str_record_send, src, dst, kind, NULL);
        if (res == NULL)
            goto fail;
        Py_DECREF(res);
    }

    PyObject *taps = PyObject_GetAttr(self->network, str_taps_attr);
    if (taps == NULL)
        goto fail;
    if (PyList_Check(taps)) {
        for (Py_ssize_t i = 0; i < PyList_GET_SIZE(taps); i++) {
            PyObject *tap = PyList_GET_ITEM(taps, i);
            Py_INCREF(tap);
            PyObject *res = PyObject_CallFunctionObjArgs(
                tap, src, dst, message, NULL);
            Py_DECREF(tap);
            if (res == NULL) {
                Py_DECREF(taps);
                goto fail;
            }
            Py_DECREF(res);
        }
    }
    Py_DECREF(taps);

    /* One loss draw per send whenever loss is on, before any fault
     * check, so the loss stream advances identically however many
     * nodes happen to be crashed. */
    PyObject *rate_obj = PyObject_GetAttr(self->network, str_loss_rate);
    if (rate_obj == NULL)
        goto fail;
    double loss_rate = PyFloat_AsDouble(rate_obj);
    Py_DECREF(rate_obj);
    if (loss_rate == -1.0 && PyErr_Occurred())
        goto fail;
    int lost = 0;
    if (loss_rate > 0.0) {
        PyObject *loss_rng = PyObject_GetAttr(self->network,
                                              str_loss_rng_attr);
        if (loss_rng == NULL)
            goto fail;
        PyObject *draw = PyObject_CallMethodObjArgs(loss_rng, str_random,
                                                    NULL);
        Py_DECREF(loss_rng);
        if (draw == NULL)
            goto fail;
        double value = PyFloat_AsDouble(draw);
        Py_DECREF(draw);
        if (value == -1.0 && PyErr_Occurred())
            goto fail;
        lost = value < loss_rate;
    }

    PyObject *active = PyObject_GetAttr(self->failures, str_active);
    if (active == NULL)
        goto fail;
    int is_active = PyObject_IsTrue(active);
    Py_DECREF(active);
    if (is_active < 0)
        goto fail;
    if (is_active) {
        PyObject *ok = PyObject_CallMethodObjArgs(
            self->failures, str_can_deliver, src, dst, NULL);
        if (ok == NULL)
            goto fail;
        int deliverable = PyObject_IsTrue(ok);
        Py_DECREF(ok);
        if (deliverable < 0)
            goto fail;
        if (!deliverable) {
            if (stats_record_drop(self->stats, src, dst, kind,
                                  str_fault) < 0)
                goto fail;
            Py_DECREF(kind);
            Py_RETURN_NONE;
        }
    }
    if (lost) {
        if (stats_record_drop(self->stats, src, dst, kind, str_loss) < 0)
            goto fail;
        Py_DECREF(kind);
        Py_RETURN_NONE;
    }

    double extra = 0.0;
    PyObject *adversary = PyObject_GetAttr(self->network,
                                           str_adversary_attr);
    if (adversary == NULL)
        goto fail;
    if (adversary != Py_None) {
        PyObject *now_obj = PyFloat_FromDouble(self->sched->now);
        if (now_obj == NULL) {
            Py_DECREF(adversary);
            goto fail;
        }
        PyObject *action = PyObject_CallMethodObjArgs(
            adversary, str_intercept, src, dst, message, kind, now_obj,
            NULL);
        Py_DECREF(now_obj);
        Py_DECREF(adversary);
        if (action == NULL)
            goto fail;
        int dropped = PyObject_RichCompareBool(action, str_drop_action,
                                               Py_EQ);
        if (dropped < 0) {
            Py_DECREF(action);
            goto fail;
        }
        if (dropped) {
            Py_DECREF(action);
            if (stats_record_drop(self->stats, src, dst, kind,
                                  str_adversary) < 0)
                goto fail;
            Py_DECREF(kind);
            Py_RETURN_NONE;
        }
        if (action != Py_None) {
            extra = PyFloat_AsDouble(action);
            if (extra == -1.0 && PyErr_Occurred()) {
                Py_DECREF(action);
                goto fail;
            }
        }
        Py_DECREF(action);
    }
    else {
        Py_DECREF(adversary);
    }

    PyObject *delay_model = PyObject_GetAttr(self->network,
                                             str_delay_model);
    if (delay_model == NULL)
        goto fail;
    PyObject *rng = PyObject_GetAttr(self->network, str_rng_attr);
    if (rng == NULL) {
        Py_DECREF(delay_model);
        goto fail;
    }
    PyObject *delay_obj = PyObject_CallMethodObjArgs(
        delay_model, str_sample, rng, src, dst, NULL);
    Py_DECREF(delay_model);
    Py_DECREF(rng);
    if (delay_obj == NULL)
        goto fail;
    double delay = PyFloat_AsDouble(delay_obj);
    if (delay == -1.0 && PyErr_Occurred()) {
        Py_DECREF(delay_obj);
        goto fail;
    }
    if (delay <= 0) {
        PyErr_Format(PyExc_ValueError,
                     "delay model produced non-positive delay %S",
                     delay_obj);
        Py_DECREF(delay_obj);
        goto fail;
    }
    Py_DECREF(delay_obj);

    /* scheduler.schedule_uncancellable(delay + extra, _deliver, src,
     * dst, message, kind) — inlined: time = now + (delay + extra),
     * matching the Python operation order bit for bit. */
    PyObject *deliver = PyObject_GetAttr(self->network, str_deliver_attr);
    if (deliver == NULL)
        goto fail;
    PyObject *argtuple = PyTuple_Pack(4, src, dst, message, kind);
    if (argtuple == NULL) {
        Py_DECREF(deliver);
        goto fail;
    }
    KEvent ev;
    ev.time = self->sched->now + (delay + extra);
    ev.seq = self->sched->seq;
    ev.obj = deliver;
    ev.args = argtuple;
    if (heap_push(self->sched, ev) < 0) {
        Py_DECREF(deliver);
        Py_DECREF(argtuple);
        goto fail;
    }
    self->sched->seq += 1;
    self->sched->live += 1;
    Py_DECREF(kind);
    Py_RETURN_NONE;

fail:
    Py_DECREF(kind);
    return NULL;
}

static PyTypeObject SendCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._native._kernel.SendCore",
    .tp_basicsize = sizeof(SendCore),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Network.send as a C callable: stats, taps, loss draw, "
              "fault check, adversary, delay sample, heap push.",
    .tp_new = sendcore_new,
    .tp_dealloc = (destructor)sendcore_dealloc,
    .tp_traverse = (traverseproc)sendcore_traverse,
    .tp_clear = (inquiry)sendcore_clear,
    .tp_call = (ternaryfunc)sendcore_call,
};

/* ------------------------------------------------------------------ */
/* Module                                                              */
/* ------------------------------------------------------------------ */

static struct PyModuleDef kernelmodule = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._native._kernel",
    .m_doc = "Native simulation-kernel hot path (scheduler heap, "
             "scalar stats, delivery trampoline).",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__kernel(void)
{
    str_active = PyUnicode_InternFromString("active");
    str_can_deliver = PyUnicode_InternFromString("can_deliver");
    str_on_message = PyUnicode_InternFromString("on_message");
    str_record_drop = PyUnicode_InternFromString("record_drop");
    str_record_delivery = PyUnicode_InternFromString("record_delivery");
    str_record_send = PyUnicode_InternFromString("record_send");
    str_fault = PyUnicode_InternFromString("fault");
    str_loss = PyUnicode_InternFromString("loss");
    str_adversary = PyUnicode_InternFromString("adversary");
    str_drop_action = PyUnicode_InternFromString("drop");
    str_kind_attr = PyUnicode_InternFromString("kind");
    str_dunder_name = PyUnicode_InternFromString("__name__");
    str_sample = PyUnicode_InternFromString("sample");
    str_random = PyUnicode_InternFromString("random");
    str_intercept = PyUnicode_InternFromString("intercept");
    str_loss_rate = PyUnicode_InternFromString("loss_rate");
    str_taps_attr = PyUnicode_InternFromString("_taps");
    str_adversary_attr = PyUnicode_InternFromString("_adversary");
    str_loss_rng_attr = PyUnicode_InternFromString("_loss_rng");
    str_deliver_attr = PyUnicode_InternFromString("_deliver");
    str_delay_model = PyUnicode_InternFromString("delay_model");
    str_rng_attr = PyUnicode_InternFromString("rng");
    if (str_active == NULL || str_can_deliver == NULL
        || str_on_message == NULL || str_record_drop == NULL
        || str_record_delivery == NULL || str_record_send == NULL
        || str_fault == NULL || str_loss == NULL || str_adversary == NULL
        || str_drop_action == NULL || str_kind_attr == NULL
        || str_dunder_name == NULL || str_sample == NULL
        || str_random == NULL || str_intercept == NULL
        || str_loss_rate == NULL || str_taps_attr == NULL
        || str_adversary_attr == NULL || str_loss_rng_attr == NULL
        || str_deliver_attr == NULL || str_delay_model == NULL
        || str_rng_attr == NULL)
        return NULL;

    if (PyType_Ready(&StatsCore_Type) < 0
        || PyType_Ready(&DeliveryCore_Type) < 0
        || PyType_Ready(&KernelHandle_Type) < 0
        || PyType_Ready(&SchedulerCore_Type) < 0
        || PyType_Ready(&SendCore_Type) < 0)
        return NULL;

    PyObject *module = PyModule_Create(&kernelmodule);
    if (module == NULL)
        return NULL;

    Py_INCREF(&StatsCore_Type);
    if (PyModule_AddObject(module, "StatsCore",
                           (PyObject *)&StatsCore_Type) < 0)
        goto fail;
    Py_INCREF(&DeliveryCore_Type);
    if (PyModule_AddObject(module, "DeliveryCore",
                           (PyObject *)&DeliveryCore_Type) < 0)
        goto fail;
    Py_INCREF(&KernelHandle_Type);
    if (PyModule_AddObject(module, "EventHandle",
                           (PyObject *)&KernelHandle_Type) < 0)
        goto fail;
    Py_INCREF(&SchedulerCore_Type);
    if (PyModule_AddObject(module, "SchedulerCore",
                           (PyObject *)&SchedulerCore_Type) < 0)
        goto fail;
    Py_INCREF(&SendCore_Type);
    if (PyModule_AddObject(module, "SendCore",
                           (PyObject *)&SendCore_Type) < 0)
        goto fail;
    if (PyModule_AddIntConstant(module, "KERNEL_ABI", 1) < 0)
        goto fail;
    return module;
fail:
    Py_DECREF(module);
    return NULL;
}
