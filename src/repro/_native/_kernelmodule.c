/* Native simulation-kernel core (REPRO_KERNEL=native).
 *
 * A CPython extension housing the event-heap scheduler hot path of the
 * simulator: push/pop/cancel with (time, seq) ordering, the inlined
 * run() drain loops, the handle-free uncancellable delivery entries, a
 * scalar-totals MessageStats core, and a C delivery trampoline that
 * re-enters Python only at the algorithm-callback boundary
 * (``node.on_message``).
 *
 * Contract: byte-identical behaviour to the pure-python kernel in
 * ``repro.sim.scheduler`` / ``repro.sim.metrics`` / ``Network._deliver``.
 * Event ordering is a strict total order on (time, seq) — seq is unique —
 * so the C binary heap pops events in exactly the order heapq does, even
 * though the internal array layout may differ.  All times are IEEE-754
 * doubles on both sides, so ``now + delay`` produces the same bits.
 *
 * RNG draws: historically all draws happened in Python (numpy) and were
 * handed over as plain floats.  When the build links numpy's exported
 * C random library (REPRO_HAVE_NPYRANDOM), the hottest draws — the
 * per-message exponential delay and the k-of-n quorum sample — run
 * through the same Generator bit stream in C, reproducing numpy's
 * algorithms (Lemire bounded integers, ziggurat exponential, Floyd +
 * descending Fisher-Yates for choice(replace=False)) bit for bit, so
 * the determinism contract still holds draw for draw.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <stddef.h>

#ifdef REPRO_HAVE_NPYRANDOM
#include <numpy/random/bitgen.h>
#include <numpy/random/distributions.h>
#endif

/* ------------------------------------------------------------------ */
/* Interned strings / cached exception types                          */
/* ------------------------------------------------------------------ */

static PyObject *str_active;        /* "active"          */
static PyObject *str_can_deliver;   /* "can_deliver"     */
static PyObject *str_on_message;    /* "on_message"      */
static PyObject *str_record_drop;   /* "record_drop"     */
static PyObject *str_record_delivery; /* "record_delivery" */
static PyObject *str_record_send;   /* "record_send"     */
static PyObject *str_fault;         /* "fault"           */
static PyObject *str_loss;          /* "loss"            */
static PyObject *str_adversary;     /* "adversary"       */
static PyObject *str_drop_action;   /* "drop"            */
static PyObject *str_kind_attr;     /* "kind"            */
static PyObject *str_dunder_name;   /* "__name__"        */
static PyObject *str_sample;        /* "sample"          */
static PyObject *str_random;        /* "random"          */
static PyObject *str_intercept;     /* "intercept"       */
static PyObject *str_loss_rate;     /* "loss_rate"       */
static PyObject *str_taps_attr;     /* "_taps"           */
static PyObject *str_adversary_attr; /* "_adversary"     */
static PyObject *str_loss_rng_attr; /* "_loss_rng"       */
static PyObject *str_deliver_attr;  /* "_deliver"        */
static PyObject *str_delay_model;   /* "delay_model"     */
static PyObject *str_rng_attr;      /* "rng"             */
static PyObject *str_stats_attr;    /* "stats"           */
static PyObject *str_send_attr;     /* "send"            */
static PyObject *str_node_id;       /* "node_id"         */
static PyObject *str_network_attr;  /* "network"         */
static PyObject *str_seq_attr;      /* "seq"             */
static PyObject *str_writer_attr;   /* "writer"          */
static PyObject *str_cancel;        /* "cancel"          */
static PyObject *str_replies;       /* "replies"         */
static PyObject *str_quorum;        /* "quorum"          */
static PyObject *str_span;          /* "span"            */
static PyObject *str_is_read;       /* "is_read"         */
static PyObject *str_register_attr; /* "register"        */
static PyObject *str_record;        /* "record"          */
static PyObject *str_future_attr;   /* "future"          */
static PyObject *str_respond;       /* "respond"         */
static PyObject *str_complete;      /* "complete"        */
static PyObject *str_resolve;       /* "resolve"         */
static PyObject *str_retry_handle;  /* "retry_handle"    */
static PyObject *str_deadline_handle; /* "deadline_handle" */
static PyObject *str_timestamp_attr; /* "timestamp"      */
static PyObject *str_value_attr;    /* "value"           */
static PyObject *str_monotone;      /* "monotone"        */
static PyObject *str_cache_attr;    /* "_cache"          */
static PyObject *str_cache_hits;    /* "cache_hits"      */
static PyObject *str_monitor_on;    /* "_monitor_on"     */
static PyObject *str_latency_attr;  /* "_latency"        */
static PyObject *str_pending_attr;  /* "_pending"        */
static PyObject *str_server_index;  /* "_server_index"   */
static PyObject *str_replicas_attr; /* "_replicas"       */
static PyObject *str_reads_served;  /* "reads_served"    */
static PyObject *str_writes_applied; /* "writes_applied" */
static PyObject *str_stale_updates; /* "stale_updates_ignored" */
static PyObject *str_ops_completed; /* "ops_completed"   */
static PyObject *str_ops_under_failure; /* "ops_completed_under_failure" */
static PyObject *str_failures_attr; /* "failures"        */
static PyObject *str_scheduler_attr; /* "scheduler"      */
static PyObject *str_replica_method; /* "_replica"       */
static PyObject *str_bit_generator; /* "bit_generator"   */
static PyObject *str_capsule_attr;  /* "capsule"         */
static PyObject *str_mean_attr;     /* "_mean"           */
static PyObject *str_floor_attr;    /* "_floor"          */
static PyObject *str_cdelay_attr;   /* "_delay"          */
static PyObject *str_started_attr;  /* "started"         */
static PyObject *str_observe;       /* "observe"         */
static PyObject *str_read_kind;     /* "read"            */
static PyObject *str_write_kind;    /* "write"           */
static PyObject *str_broadcast_attr; /* "broadcast"      */
static PyObject *py_one = NULL;     /* the int 1 (counter bumps) */
static PyObject *scheduler_error = NULL;  /* repro.sim.scheduler.SchedulerError */

/* Register-protocol classes, resolved lazily from the Python package
 * the first time a protocol core is built (never at module import, so
 * the extension stays importable on its own). */
static PyObject *msg_read_query = NULL;   /* messages.ReadQuery   */
static PyObject *msg_read_reply = NULL;   /* messages.ReadReply   */
static PyObject *msg_write_update = NULL; /* messages.WriteUpdate */
static PyObject *msg_write_ack = NULL;    /* messages.WriteAck    */
static PyObject *timestamp_type = NULL;   /* timestamps.Timestamp */
static PyObject *nullrecord_type = NULL;  /* history._NullRecord  */

/* Delay-model classes, resolved lazily the first time a delay is
 * sampled natively.  Soft-resolved: when the import fails (stripped
 * install), the generic .sample() path is used forever after. */
static PyObject *exponential_delay_type = NULL; /* delays.ExponentialDelay */
static PyObject *constant_delay_type = NULL;    /* delays.ConstantDelay    */
static int delay_types_unavailable = 0;

/* Forward declarations: the delivery trampoline dispatches straight
 * into the protocol cores (defined after SendCore) without a call
 * through tp_call. */
static PyTypeObject ServerCore_Type;
static PyTypeObject ClientCore_Type;
static int protocolcore_invoke(PyObject *core, PyObject *src,
                               PyObject *message);

/* Lazily resolve SchedulerError so importing this module never requires
 * the Python package to be importable first (and vice versa). */
static PyObject *
get_scheduler_error(void)
{
    if (scheduler_error == NULL) {
        PyObject *mod = PyImport_ImportModule("repro.sim.scheduler");
        if (mod == NULL) {
            /* Fall back to RuntimeError (SchedulerError's base) rather
             * than failing to report the real usage error. */
            PyErr_Clear();
            scheduler_error = PyExc_RuntimeError;
            Py_INCREF(scheduler_error);
            return scheduler_error;
        }
        scheduler_error = PyObject_GetAttrString(mod, "SchedulerError");
        Py_DECREF(mod);
        if (scheduler_error == NULL) {
            PyErr_Clear();
            scheduler_error = PyExc_RuntimeError;
            Py_INCREF(scheduler_error);
        }
    }
    return scheduler_error;
}

/* ------------------------------------------------------------------ */
/* StatsCore: the MessageStats(detailed=False) scalar-totals fast path */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    long long sent;
    long long delivered;
    long long dropped;
} StatsCore;

static PyTypeObject StatsCore_Type;

#define StatsCore_Check(op) PyObject_TypeCheck((op), &StatsCore_Type)

static PyObject *
statscore_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    StatsCore *self = (StatsCore *)type->tp_alloc(type, 0);
    if (self != NULL) {
        self->sent = 0;
        self->delivered = 0;
        self->dropped = 0;
    }
    return (PyObject *)self;
}

static int
statscore_init(StatsCore *self, PyObject *args, PyObject *kwds)
{
    /* Accept and ignore a ``detailed`` keyword for signature parity with
     * MessageStats; the core is always scalar-totals (detailed=False). */
    static char *kwlist[] = {"detailed", NULL};
    int detailed = 0;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|p", kwlist, &detailed))
        return -1;
    if (detailed) {
        PyErr_SetString(PyExc_ValueError,
                        "the native stats core is scalar-totals only; "
                        "use repro.sim.metrics.MessageStats for "
                        "detailed=True");
        return -1;
    }
    return 0;
}

static PyObject *
statscore_record_send(StatsCore *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2 || nargs > 3) {
        PyErr_SetString(PyExc_TypeError,
                        "record_send expects (src, dst, kind)");
        return NULL;
    }
    self->sent += 1;
    Py_RETURN_NONE;
}

static PyObject *
statscore_record_sends(StatsCore *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2 || nargs > 3) {
        PyErr_SetString(PyExc_TypeError,
                        "record_sends expects (src, count, kind)");
        return NULL;
    }
    long long count = PyLong_AsLongLong(args[1]);
    if (count == -1 && PyErr_Occurred())
        return NULL;
    self->sent += count;
    Py_RETURN_NONE;
}

static PyObject *
statscore_record_delivery(StatsCore *self, PyObject *const *args,
                          Py_ssize_t nargs)
{
    if (nargs < 2 || nargs > 3) {
        PyErr_SetString(PyExc_TypeError,
                        "record_delivery expects (src, dst[, kind])");
        return NULL;
    }
    self->delivered += 1;
    Py_RETURN_NONE;
}

static PyObject *
statscore_record_drop(StatsCore *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"src", "dst", "kind", "reason", NULL};
    PyObject *src, *dst, *kind = Py_None, *reason = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OO|OO", kwlist,
                                     &src, &dst, &kind, &reason))
        return NULL;
    self->dropped += 1;
    Py_RETURN_NONE;
}

static PyObject *
statscore_get_detailed(StatsCore *self, void *closure)
{
    Py_RETURN_FALSE;
}

static PyObject *
statscore_repr(StatsCore *self)
{
    return PyUnicode_FromFormat(
        "MessageStats(sent=%lld, delivered=%lld, dropped=%lld)",
        self->sent, self->delivered, self->dropped);
}

static PyMemberDef statscore_members[] = {
    {"sent", T_LONGLONG, offsetof(StatsCore, sent), 0,
     "total messages sent"},
    {"delivered", T_LONGLONG, offsetof(StatsCore, delivered), 0,
     "total messages delivered"},
    {"dropped", T_LONGLONG, offsetof(StatsCore, dropped), 0,
     "total messages dropped"},
    {NULL}
};

static PyGetSetDef statscore_getset[] = {
    {"detailed", (getter)statscore_get_detailed, NULL,
     "always False: the native core keeps scalar totals only", NULL},
    {NULL}
};

static PyMethodDef statscore_methods[] = {
    {"record_send", (PyCFunction)statscore_record_send, METH_FASTCALL,
     "Record one message leaving src for dst."},
    {"record_sends", (PyCFunction)statscore_record_sends, METH_FASTCALL,
     "Record count messages leaving src in one update."},
    {"record_delivery", (PyCFunction)statscore_record_delivery,
     METH_FASTCALL, "Record one message arriving at dst."},
    {"record_drop", (PyCFunction)statscore_record_drop,
     METH_VARARGS | METH_KEYWORDS,
     "Record a message lost to a crash, partition or lossy link."},
    {NULL}
};

static PyTypeObject StatsCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._native._kernel.StatsCore",
    .tp_basicsize = sizeof(StatsCore),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE,
    .tp_doc = "Scalar-totals message counters (the detailed=False fast path).",
    .tp_new = statscore_new,
    .tp_init = (initproc)statscore_init,
    .tp_repr = (reprfunc)statscore_repr,
    .tp_members = statscore_members,
    .tp_getset = statscore_getset,
    .tp_methods = statscore_methods,
};

/* ------------------------------------------------------------------ */
/* DeliveryCore: Network._deliver without a Python frame               */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    PyObject *stats;    /* StatsCore or a python MessageStats */
    PyObject *failures; /* FailureInjector */
    PyObject *nodes;    /* the Network's {node_id: Node} dict (shared) */
} DeliveryCore;

static PyTypeObject DeliveryCore_Type;

static PyObject *
deliverycore_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PyObject *stats, *failures, *nodes;
    if (!PyArg_ParseTuple(args, "OOO!", &stats, &failures,
                          &PyDict_Type, &nodes))
        return NULL;
    DeliveryCore *self = (DeliveryCore *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    Py_INCREF(stats);
    self->stats = stats;
    Py_INCREF(failures);
    self->failures = failures;
    Py_INCREF(nodes);
    self->nodes = nodes;
    return (PyObject *)self;
}

static int
deliverycore_traverse(DeliveryCore *self, visitproc visit, void *arg)
{
    Py_VISIT(self->stats);
    Py_VISIT(self->failures);
    Py_VISIT(self->nodes);
    return 0;
}

static int
deliverycore_clear(DeliveryCore *self)
{
    Py_CLEAR(self->stats);
    Py_CLEAR(self->failures);
    Py_CLEAR(self->nodes);
    return 0;
}

static void
deliverycore_dealloc(DeliveryCore *self)
{
    PyObject_GC_UnTrack(self);
    deliverycore_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* The body of Network._deliver, mirrored exactly:
 *
 *     failures = self.failures
 *     if failures.active and not failures.can_deliver(src, dst):
 *         self.stats.record_drop(src, dst, kind, reason="fault")
 *         return
 *     self.stats.record_delivery(src, dst, kind)
 *     self._nodes[dst].on_message(src, message)
 *
 * Returns 0 on success, -1 with an exception set on failure.
 */
static int
delivery_invoke(DeliveryCore *self, PyObject *src, PyObject *dst,
                PyObject *message, PyObject *kind)
{
    PyObject *active = PyObject_GetAttr(self->failures, str_active);
    if (active == NULL)
        return -1;
    int is_active = PyObject_IsTrue(active);
    Py_DECREF(active);
    if (is_active < 0)
        return -1;
    if (is_active) {
        PyObject *ok = PyObject_CallMethodObjArgs(
            self->failures, str_can_deliver, src, dst, NULL);
        if (ok == NULL)
            return -1;
        int deliverable = PyObject_IsTrue(ok);
        Py_DECREF(ok);
        if (deliverable < 0)
            return -1;
        if (!deliverable) {
            if (StatsCore_Check(self->stats)) {
                ((StatsCore *)self->stats)->dropped += 1;
            }
            else {
                PyObject *res = PyObject_CallMethodObjArgs(
                    self->stats, str_record_drop, src, dst, kind,
                    str_fault, NULL);
                if (res == NULL)
                    return -1;
                Py_DECREF(res);
            }
            return 0;
        }
    }
    if (StatsCore_Check(self->stats)) {
        ((StatsCore *)self->stats)->delivered += 1;
    }
    else {
        PyObject *res = PyObject_CallMethodObjArgs(
            self->stats, str_record_delivery, src, dst, kind, NULL);
        if (res == NULL)
            return -1;
        Py_DECREF(res);
    }
    PyObject *node = PyDict_GetItemWithError(self->nodes, dst);
    if (node == NULL) {
        if (!PyErr_Occurred())
            PyErr_SetObject(PyExc_KeyError, dst);
        return -1;
    }
    /* Borrowed node ref stays alive: the nodes dict is never mutated
     * from inside on_message (nodes are only added during set-up). */
    Py_INCREF(node);
    PyObject *handler = PyObject_GetAttr(node, str_on_message);
    if (handler == NULL) {
        Py_DECREF(node);
        return -1;
    }
    int rc;
    if (Py_TYPE(handler) == &ServerCore_Type
        || Py_TYPE(handler) == &ClientCore_Type) {
        /* A protocol core installed as the node's instance attribute:
         * stay in C end to end (the core falls back to the Python
         * handler itself when a hook demands it). */
        rc = protocolcore_invoke(handler, src, message);
    }
    else {
        PyObject *res = PyObject_CallFunctionObjArgs(
            handler, src, message, NULL);
        rc = res == NULL ? -1 : 0;
        Py_XDECREF(res);
    }
    Py_DECREF(handler);
    Py_DECREF(node);
    return rc;
}

static PyObject *
deliverycore_call(DeliveryCore *self, PyObject *args, PyObject *kwds)
{
    PyObject *src, *dst, *message, *kind;
    if (kwds != NULL && PyDict_GET_SIZE(kwds) != 0) {
        PyErr_SetString(PyExc_TypeError,
                        "delivery takes no keyword arguments");
        return NULL;
    }
    if (!PyArg_UnpackTuple(args, "delivery", 4, 4,
                           &src, &dst, &message, &kind))
        return NULL;
    if (delivery_invoke(self, src, dst, message, kind) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyMemberDef deliverycore_members[] = {
    {"stats", T_OBJECT_EX, offsetof(DeliveryCore, stats), READONLY,
     "the stats object deliveries are recorded on"},
    {"failures", T_OBJECT_EX, offsetof(DeliveryCore, failures), READONLY,
     "the FailureInjector consulted per delivery"},
    {NULL}
};

static PyTypeObject DeliveryCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._native._kernel.DeliveryCore",
    .tp_basicsize = sizeof(DeliveryCore),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Network._deliver as a C callable: fault check, stats "
              "update, then node.on_message(src, message).",
    .tp_new = deliverycore_new,
    .tp_dealloc = (destructor)deliverycore_dealloc,
    .tp_traverse = (traverseproc)deliverycore_traverse,
    .tp_clear = (inquiry)deliverycore_clear,
    .tp_call = (ternaryfunc)deliverycore_call,
    .tp_members = deliverycore_members,
};

/* ------------------------------------------------------------------ */
/* EventHandle                                                         */
/* ------------------------------------------------------------------ */

struct SchedulerCore;

typedef struct {
    PyObject_HEAD
    double time;
    long long seq;
    PyObject *callback;
    PyObject *args;             /* always a tuple */
    struct SchedulerCore *owner; /* strong reference (cycle: GC-tracked) */
    char cancelled;
    char dequeued;
} KernelHandle;

static PyTypeObject KernelHandle_Type;

static int
kernelhandle_traverse(KernelHandle *self, visitproc visit, void *arg)
{
    Py_VISIT(self->callback);
    Py_VISIT(self->args);
    Py_VISIT((PyObject *)self->owner);
    return 0;
}

static int
kernelhandle_clear(KernelHandle *self)
{
    Py_CLEAR(self->callback);
    Py_CLEAR(self->args);
    Py_CLEAR(self->owner);
    return 0;
}

static void
kernelhandle_dealloc(KernelHandle *self)
{
    PyObject_GC_UnTrack(self);
    kernelhandle_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* forward declaration: cancel touches the owner's live counter */
static PyObject *kernelhandle_cancel(KernelHandle *self,
                                     PyObject *Py_UNUSED(ignored));

static PyObject *
kernelhandle_repr(KernelHandle *self)
{
    const char *state = self->cancelled ? "cancelled" : "pending";
    PyObject *name = NULL;
    if (self->callback != NULL)
        name = PyObject_GetAttrString(self->callback, "__name__");
    if (name == NULL) {
        PyErr_Clear();
        name = PyObject_Repr(self->callback ? self->callback : Py_None);
        if (name == NULL)
            return NULL;
    }
    PyObject *time = PyFloat_FromDouble(self->time);
    if (time == NULL) {
        Py_DECREF(name);
        return NULL;
    }
    PyObject *out = PyUnicode_FromFormat(
        "EventHandle(t=%R, seq=%lld, %U, %s)",
        time, self->seq, name, state);
    Py_DECREF(time);
    Py_DECREF(name);
    return out;
}

static PyObject *
kernelhandle_get_cancelled(KernelHandle *self, void *closure)
{
    return PyBool_FromLong(self->cancelled);
}

static PyObject *
kernelhandle_get_dequeued(KernelHandle *self, void *closure)
{
    return PyBool_FromLong(self->dequeued);
}

static PyObject *
kernelhandle_richcompare(PyObject *a, PyObject *b, int op)
{
    if (op != Py_LT || !PyObject_TypeCheck(a, &KernelHandle_Type)
        || !PyObject_TypeCheck(b, &KernelHandle_Type))
        Py_RETURN_NOTIMPLEMENTED;
    KernelHandle *ha = (KernelHandle *)a, *hb = (KernelHandle *)b;
    int lt = (ha->time < hb->time)
             || (ha->time == hb->time && ha->seq < hb->seq);
    return PyBool_FromLong(lt);
}

static PyMemberDef kernelhandle_members[] = {
    {"time", T_DOUBLE, offsetof(KernelHandle, time), READONLY,
     "absolute simulated firing time"},
    {"seq", T_LONGLONG, offsetof(KernelHandle, seq), READONLY,
     "scheduling sequence number (tie-breaker)"},
    {"callback", T_OBJECT_EX, offsetof(KernelHandle, callback), READONLY,
     "the scheduled callable"},
    {"args", T_OBJECT_EX, offsetof(KernelHandle, args), READONLY,
     "the callable's argument tuple"},
    {NULL}
};

static PyGetSetDef kernelhandle_getset[] = {
    {"cancelled", (getter)kernelhandle_get_cancelled, NULL,
     "True once cancel() was called", NULL},
    {"_dequeued", (getter)kernelhandle_get_dequeued, NULL,
     "True once the heap entry was popped", NULL},
    {NULL}
};

static PyMethodDef kernelhandle_methods[] = {
    {"cancel", (PyCFunction)kernelhandle_cancel, METH_NOARGS,
     "Prevent the event from firing.  Idempotent."},
    {NULL}
};

static PyTypeObject KernelHandle_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._native._kernel.EventHandle",
    .tp_basicsize = sizeof(KernelHandle),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A cancellable reference to a scheduled event.",
    .tp_dealloc = (destructor)kernelhandle_dealloc,
    .tp_traverse = (traverseproc)kernelhandle_traverse,
    .tp_clear = (inquiry)kernelhandle_clear,
    .tp_repr = (reprfunc)kernelhandle_repr,
    .tp_richcompare = kernelhandle_richcompare,
    .tp_members = kernelhandle_members,
    .tp_getset = kernelhandle_getset,
    .tp_methods = kernelhandle_methods,
};

/* ------------------------------------------------------------------ */
/* SchedulerCore                                                       */
/* ------------------------------------------------------------------ */

/* One heap slot.  Two layouts share the struct (the heap is hot; a
 * union of PyObject* slots keeps it 32 bytes):
 *   handle entry:        obj = KernelHandle*,  args = NULL
 *   uncancellable entry: obj = callback,       args = tuple
 */
typedef struct {
    double time;
    long long seq;
    PyObject *obj;
    PyObject *args;
} KEvent;

typedef struct SchedulerCore {
    PyObject_HEAD
    KEvent *heap;
    Py_ssize_t len;
    Py_ssize_t cap;
    double now;
    long long seq;
    long long processed;
    long long live;
    int stopped;
} SchedulerCore;

static PyTypeObject SchedulerCore_Type;

static inline int
ev_lt(const KEvent *a, const KEvent *b)
{
    return a->time < b->time || (a->time == b->time && a->seq < b->seq);
}

static int
heap_grow(SchedulerCore *self)
{
    Py_ssize_t cap = self->cap ? self->cap * 2 : 64;
    KEvent *heap = PyMem_Realloc(self->heap, (size_t)cap * sizeof(KEvent));
    if (heap == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    self->heap = heap;
    self->cap = cap;
    return 0;
}

/* Push: steals no references — the caller hands over ownership of
 * ev.obj / ev.args on success and keeps it on failure. */
static int
heap_push(SchedulerCore *self, KEvent ev)
{
    if (self->len == self->cap && heap_grow(self) < 0)
        return -1;
    Py_ssize_t i = self->len++;
    KEvent *heap = self->heap;
    while (i > 0) {
        Py_ssize_t parent = (i - 1) >> 1;
        if (ev_lt(&ev, &heap[parent])) {
            heap[i] = heap[parent];
            i = parent;
        }
        else
            break;
    }
    heap[i] = ev;
    return 0;
}

/* Pop the root; the caller owns the returned event's references.
 * Precondition: len > 0. */
static KEvent
heap_pop(SchedulerCore *self)
{
    KEvent *heap = self->heap;
    KEvent top = heap[0];
    KEvent last = heap[--self->len];
    Py_ssize_t n = self->len;
    if (n > 0) {
        Py_ssize_t i = 0;
        for (;;) {
            Py_ssize_t child = 2 * i + 1;
            if (child >= n)
                break;
            if (child + 1 < n && ev_lt(&heap[child + 1], &heap[child]))
                child += 1;
            if (ev_lt(&heap[child], &last)) {
                heap[i] = heap[child];
                i = child;
            }
            else
                break;
        }
        heap[i] = last;
    }
    return top;
}

static PyObject *
kernelhandle_cancel(KernelHandle *self, PyObject *Py_UNUSED(ignored))
{
    if (self->cancelled)
        Py_RETURN_NONE;
    self->cancelled = 1;
    /* Keep the owner's live-event counter exact: a handle leaves the
     * live count exactly once — here, or when it is popped and run. */
    if (self->owner != NULL && !self->dequeued)
        self->owner->live -= 1;
    Py_RETURN_NONE;
}

static PyObject *
schedulercore_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    SchedulerCore *self = (SchedulerCore *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->heap = NULL;
    self->len = 0;
    self->cap = 0;
    self->now = 0.0;
    self->seq = 0;
    self->processed = 0;
    self->live = 0;
    self->stopped = 0;
    return (PyObject *)self;
}

static int
schedulercore_traverse(SchedulerCore *self, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < self->len; i++) {
        Py_VISIT(self->heap[i].obj);
        Py_VISIT(self->heap[i].args);
    }
    return 0;
}

static int
schedulercore_clear(SchedulerCore *self)
{
    Py_ssize_t n = self->len;
    self->len = 0;
    for (Py_ssize_t i = 0; i < n; i++) {
        Py_CLEAR(self->heap[i].obj);
        Py_CLEAR(self->heap[i].args);
    }
    return 0;
}

static void
schedulercore_dealloc(SchedulerCore *self)
{
    PyObject_GC_UnTrack(self);
    schedulercore_clear(self);
    PyMem_Free(self->heap);
    self->heap = NULL;
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* Build the args tuple for a schedule call's trailing *args. */
static PyObject *
pack_args(PyObject *const *args, Py_ssize_t start, Py_ssize_t nargs)
{
    PyObject *tuple = PyTuple_New(nargs - start);
    if (tuple == NULL)
        return NULL;
    for (Py_ssize_t i = start; i < nargs; i++) {
        PyObject *item = args[i];
        Py_INCREF(item);
        PyTuple_SET_ITEM(tuple, i - start, item);
    }
    return tuple;
}

/* Shared push path for schedule / schedule_at / call_soon. */
static PyObject *
push_handle_event(SchedulerCore *self, double time, PyObject *callback,
                  PyObject *argtuple /* stolen on success */)
{
    KernelHandle *handle =
        PyObject_GC_New(KernelHandle, &KernelHandle_Type);
    if (handle == NULL) {
        Py_DECREF(argtuple);
        return NULL;
    }
    handle->time = time;
    handle->seq = self->seq;
    Py_INCREF(callback);
    handle->callback = callback;
    handle->args = argtuple;  /* stolen */
    Py_INCREF(self);
    handle->owner = self;
    handle->cancelled = 0;
    handle->dequeued = 0;
    PyObject_GC_Track((PyObject *)handle);

    KEvent ev;
    ev.time = time;
    ev.seq = self->seq;
    Py_INCREF(handle);
    ev.obj = (PyObject *)handle;
    ev.args = NULL;
    if (heap_push(self, ev) < 0) {
        Py_DECREF(handle);  /* the heap's ref */
        Py_DECREF(handle);  /* the return ref */
        return NULL;
    }
    self->seq += 1;
    self->live += 1;
    return (PyObject *)handle;
}

static PyObject *
schedulercore_schedule(SchedulerCore *self, PyObject *const *args,
                       Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule expects (delay, callback, *args)");
        return NULL;
    }
    double delay = PyFloat_AsDouble(args[0]);
    if (delay == -1.0 && PyErr_Occurred())
        return NULL;
    if (delay < 0) {
        PyErr_Format(get_scheduler_error(),
                     "cannot schedule into the past (delay=%R)", args[0]);
        return NULL;
    }
    PyObject *argtuple = pack_args(args, 2, nargs);
    if (argtuple == NULL)
        return NULL;
    return push_handle_event(self, self->now + delay, args[1], argtuple);
}

static PyObject *
schedulercore_schedule_at(SchedulerCore *self, PyObject *const *args,
                          Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule_at expects (time, callback, *args)");
        return NULL;
    }
    double time = PyFloat_AsDouble(args[0]);
    if (time == -1.0 && PyErr_Occurred())
        return NULL;
    if (time < self->now) {
        PyObject *now_obj = PyFloat_FromDouble(self->now);
        if (now_obj == NULL)
            return NULL;
        PyErr_Format(get_scheduler_error(),
                     "cannot schedule at t=%R before current time t=%R",
                     args[0], now_obj);
        Py_DECREF(now_obj);
        return NULL;
    }
    PyObject *argtuple = pack_args(args, 2, nargs);
    if (argtuple == NULL)
        return NULL;
    return push_handle_event(self, time, args[1], argtuple);
}

static PyObject *
schedulercore_call_soon(SchedulerCore *self, PyObject *const *args,
                        Py_ssize_t nargs)
{
    if (nargs < 1) {
        PyErr_SetString(PyExc_TypeError,
                        "call_soon expects (callback, *args)");
        return NULL;
    }
    PyObject *argtuple = pack_args(args, 1, nargs);
    if (argtuple == NULL)
        return NULL;
    return push_handle_event(self, self->now, args[0], argtuple);
}

static PyObject *
schedulercore_schedule_uncancellable(SchedulerCore *self,
                                     PyObject *const *args,
                                     Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(
            PyExc_TypeError,
            "schedule_uncancellable expects (delay, callback, *args)");
        return NULL;
    }
    double delay = PyFloat_AsDouble(args[0]);
    if (delay == -1.0 && PyErr_Occurred())
        return NULL;
    if (delay < 0) {
        PyErr_Format(get_scheduler_error(),
                     "cannot schedule into the past (delay=%R)", args[0]);
        return NULL;
    }
    PyObject *argtuple = pack_args(args, 2, nargs);
    if (argtuple == NULL)
        return NULL;
    KEvent ev;
    ev.time = self->now + delay;
    ev.seq = self->seq;
    Py_INCREF(args[1]);
    ev.obj = args[1];
    ev.args = argtuple;
    if (heap_push(self, ev) < 0) {
        Py_DECREF(ev.obj);
        Py_DECREF(ev.args);
        return NULL;
    }
    self->seq += 1;
    self->live += 1;
    Py_RETURN_NONE;
}

/* schedule_deliveries(delays, callback, src, dsts, message, kind)
 *
 * The batched tail of Network.broadcast: one C call pushes one
 * uncancellable delivery per (delay, dst) pair, validating delays and
 * consuming seq numbers exactly as a Python loop of
 * schedule_uncancellable(delay, callback, src, dst, message, kind)
 * calls would.
 */
static PyObject *
schedulercore_schedule_deliveries(SchedulerCore *self,
                                  PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 6) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule_deliveries expects (delays, callback, "
                        "src, dsts, message, kind)");
        return NULL;
    }
    PyObject *delays = PySequence_Fast(args[0], "delays must be a sequence");
    if (delays == NULL)
        return NULL;
    PyObject *dsts = PySequence_Fast(args[3], "dsts must be a sequence");
    if (dsts == NULL) {
        Py_DECREF(delays);
        return NULL;
    }
    PyObject *callback = args[1], *src = args[2];
    PyObject *message = args[4], *kind = args[5];
    Py_ssize_t n = PySequence_Fast_GET_SIZE(delays);
    if (PySequence_Fast_GET_SIZE(dsts) != n) {
        Py_DECREF(delays);
        Py_DECREF(dsts);
        PyErr_SetString(PyExc_ValueError,
                        "delays and dsts must have equal length");
        return NULL;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *delay_obj = PySequence_Fast_GET_ITEM(delays, i);
        double delay = PyFloat_AsDouble(delay_obj);
        if (delay == -1.0 && PyErr_Occurred())
            goto fail;
        if (delay <= 0) {
            PyErr_Format(PyExc_ValueError,
                         "delay model produced non-positive delay %S",
                         delay_obj);
            goto fail;
        }
        PyObject *dst = PySequence_Fast_GET_ITEM(dsts, i);
        PyObject *argtuple = PyTuple_Pack(4, src, dst, message, kind);
        if (argtuple == NULL)
            goto fail;
        KEvent ev;
        ev.time = self->now + delay;
        ev.seq = self->seq;
        Py_INCREF(callback);
        ev.obj = callback;
        ev.args = argtuple;
        if (heap_push(self, ev) < 0) {
            Py_DECREF(ev.obj);
            Py_DECREF(ev.args);
            goto fail;
        }
        self->seq += 1;
        self->live += 1;
    }
    Py_DECREF(delays);
    Py_DECREF(dsts);
    Py_RETURN_NONE;
fail:
    Py_DECREF(delays);
    Py_DECREF(dsts);
    return NULL;
}

/* Invoke callback(*args); the DeliveryCore case skips tp_call. */
static inline int
dispatch(PyObject *callback, PyObject *args)
{
    if (Py_TYPE(callback) == &DeliveryCore_Type
        && PyTuple_GET_SIZE(args) == 4) {
        return delivery_invoke((DeliveryCore *)callback,
                               PyTuple_GET_ITEM(args, 0),
                               PyTuple_GET_ITEM(args, 1),
                               PyTuple_GET_ITEM(args, 2),
                               PyTuple_GET_ITEM(args, 3));
    }
    PyObject *res = PyObject_Call(callback, args, NULL);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

static PyObject *
schedulercore_step(SchedulerCore *self, PyObject *Py_UNUSED(ignored))
{
    while (self->len > 0) {
        KEvent ev = heap_pop(self);
        PyObject *callback, *args;
        KernelHandle *handle = NULL;
        if (ev.args == NULL) {
            handle = (KernelHandle *)ev.obj;
            handle->dequeued = 1;
            if (handle->cancelled) {
                Py_DECREF(ev.obj);
                continue;
            }
            callback = handle->callback;
            args = handle->args;
        }
        else {
            callback = ev.obj;
            args = ev.args;
        }
        self->live -= 1;
        self->now = ev.time;
        self->processed += 1;
        int rc = dispatch(callback, args);
        Py_DECREF(ev.obj);
        Py_XDECREF(ev.args);
        if (rc < 0)
            return NULL;
        Py_RETURN_TRUE;
    }
    Py_RETURN_FALSE;
}

static PyObject *
schedulercore_run(SchedulerCore *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"until", "max_events", "stop_when", NULL};
    PyObject *until_obj = Py_None;
    PyObject *max_events_obj = Py_None;
    PyObject *stop_when = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|OOO", kwlist,
                                     &until_obj, &max_events_obj,
                                     &stop_when))
        return NULL;

    self->stopped = 0;

    int have_until = until_obj != Py_None;
    double until = 0.0;
    if (have_until) {
        until = PyFloat_AsDouble(until_obj);
        if (until == -1.0 && PyErr_Occurred())
            return NULL;
    }
    int have_max = max_events_obj != Py_None;
    long long max_events = 0;
    if (have_max) {
        max_events = PyLong_AsLongLong(max_events_obj);
        if (max_events == -1 && PyErr_Occurred())
            return NULL;
    }
    int have_stop_when = stop_when != Py_None;

    if (!have_until && !have_max && !have_stop_when) {
        /* Fast drain loop: no limit checks, one pop per event. */
        while (self->len > 0) {
            if (self->stopped)
                break;
            KEvent ev = heap_pop(self);
            PyObject *callback, *cbargs;
            if (ev.args == NULL) {
                KernelHandle *handle = (KernelHandle *)ev.obj;
                handle->dequeued = 1;
                if (handle->cancelled) {
                    Py_DECREF(ev.obj);
                    continue;
                }
                callback = handle->callback;
                cbargs = handle->args;
            }
            else {
                callback = ev.obj;
                cbargs = ev.args;
            }
            self->live -= 1;
            self->now = ev.time;
            self->processed += 1;
            int rc = dispatch(callback, cbargs);
            Py_DECREF(ev.obj);
            Py_XDECREF(ev.args);
            if (rc < 0)
                return NULL;
        }
        return PyFloat_FromDouble(self->now);
    }

    long long executed = 0;
    while (self->len > 0) {
        if (self->stopped)
            break;
        /* Peek the head; cancelled handle entries are drained without
         * consuming any of the run limits. */
        KEvent *head = &self->heap[0];
        double head_time;
        if (head->args == NULL) {
            KernelHandle *handle = (KernelHandle *)head->obj;
            if (handle->cancelled) {
                handle->dequeued = 1;
                KEvent ev = heap_pop(self);
                Py_DECREF(ev.obj);
                continue;
            }
            head_time = handle->time;
        }
        else
            head_time = head->time;
        if (have_until && head_time > until) {
            self->now = until;
            break;
        }
        if (have_max && executed >= max_events)
            break;
        KEvent ev = heap_pop(self);
        PyObject *callback, *cbargs;
        if (ev.args == NULL) {
            KernelHandle *handle = (KernelHandle *)ev.obj;
            handle->dequeued = 1;
            callback = handle->callback;
            cbargs = handle->args;
        }
        else {
            callback = ev.obj;
            cbargs = ev.args;
        }
        self->live -= 1;
        self->now = head_time;
        self->processed += 1;
        int rc = dispatch(callback, cbargs);
        Py_DECREF(ev.obj);
        Py_XDECREF(ev.args);
        if (rc < 0)
            return NULL;
        executed += 1;
        if (have_stop_when) {
            PyObject *verdict = PyObject_CallNoArgs(stop_when);
            if (verdict == NULL)
                return NULL;
            int stop = PyObject_IsTrue(verdict);
            Py_DECREF(verdict);
            if (stop < 0)
                return NULL;
            if (stop)
                break;
        }
    }
    return PyFloat_FromDouble(self->now);
}

static PyObject *
schedulercore_stop(SchedulerCore *self, PyObject *Py_UNUSED(ignored))
{
    self->stopped = 1;
    Py_RETURN_NONE;
}

static PyObject *
schedulercore_get_now(SchedulerCore *self, void *closure)
{
    return PyFloat_FromDouble(self->now);
}

static PyObject *
schedulercore_get_events_processed(SchedulerCore *self, void *closure)
{
    return PyLong_FromLongLong(self->processed);
}

static PyObject *
schedulercore_get_pending(SchedulerCore *self, void *closure)
{
    return PyLong_FromLongLong(self->live);
}

/* Debug/introspection snapshot mirroring the pure-python Scheduler's
 * ``_queue`` list: (time, seq, handle) for cancellable entries and
 * (time, seq, callback, args) for uncancellable ones, in heap (not
 * sorted) order.  Built fresh per access — tests only. */
static PyObject *
schedulercore_get_queue(SchedulerCore *self, void *closure)
{
    PyObject *out = PyList_New(self->len);
    if (out == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < self->len; i++) {
        KEvent *ev = &self->heap[i];
        PyObject *time = PyFloat_FromDouble(ev->time);
        PyObject *seq = PyLong_FromLongLong(ev->seq);
        PyObject *entry = NULL;
        if (time != NULL && seq != NULL) {
            if (ev->args == NULL)
                entry = PyTuple_Pack(3, time, seq, ev->obj);
            else
                entry = PyTuple_Pack(4, time, seq, ev->obj, ev->args);
        }
        Py_XDECREF(time);
        Py_XDECREF(seq);
        if (entry == NULL) {
            Py_DECREF(out);
            return NULL;
        }
        PyList_SET_ITEM(out, i, entry);
    }
    return out;
}

static PyGetSetDef schedulercore_getset[] = {
    {"now", (getter)schedulercore_get_now, NULL,
     "Current simulated time.", NULL},
    {"events_processed", (getter)schedulercore_get_events_processed, NULL,
     "Number of events executed so far.", NULL},
    {"pending", (getter)schedulercore_get_pending, NULL,
     "Number of non-cancelled events still queued (O(1) live counter).",
     NULL},
    {"_queue", (getter)schedulercore_get_queue, NULL,
     "Debug snapshot of the heap entries (tests only).", NULL},
    {NULL}
};

static PyMethodDef schedulercore_methods[] = {
    {"schedule", (PyCFunction)schedulercore_schedule, METH_FASTCALL,
     "Schedule callback(*args) to run delay time units from now."},
    {"schedule_at", (PyCFunction)schedulercore_schedule_at, METH_FASTCALL,
     "Schedule callback(*args) at an absolute simulated time."},
    {"call_soon", (PyCFunction)schedulercore_call_soon, METH_FASTCALL,
     "Schedule callback(*args) at the current time (after queued events)."},
    {"schedule_uncancellable",
     (PyCFunction)schedulercore_schedule_uncancellable, METH_FASTCALL,
     "Schedule an event that can never be cancelled; returns no handle."},
    {"schedule_deliveries",
     (PyCFunction)schedulercore_schedule_deliveries, METH_FASTCALL,
     "Push one uncancellable delivery per (delay, dst) pair in one call."},
    {"step", (PyCFunction)schedulercore_step, METH_NOARGS,
     "Execute the next event.  Returns False when the queue is empty."},
    {"run", (PyCFunction)schedulercore_run,
     METH_VARARGS | METH_KEYWORDS,
     "Run events until the queue drains or a limit is reached."},
    {"stop", (PyCFunction)schedulercore_stop, METH_NOARGS,
     "Request that run() return after the current event."},
    {NULL}
};

static PyTypeObject SchedulerCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._native._kernel.SchedulerCore",
    .tp_basicsize = sizeof(SchedulerCore),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE
                | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Native discrete-event scheduler core (C event heap).",
    .tp_new = schedulercore_new,
    .tp_dealloc = (destructor)schedulercore_dealloc,
    .tp_traverse = (traverseproc)schedulercore_traverse,
    .tp_clear = (inquiry)schedulercore_clear,
    .tp_getset = schedulercore_getset,
    .tp_methods = schedulercore_methods,
};

/* ------------------------------------------------------------------ */
/* Native RNG draws: numpy's bit stream without a Python frame         */
/* ------------------------------------------------------------------ */

/* Resolve the two built-in delay-model classes, softly: a failed import
 * (stripped install, import cycle) flags them unavailable and every
 * sample goes through the generic .sample() call instead.  Mirrors the
 * soft-eligibility style of the protocol cores. */
static int
ensure_delay_types(void)
{
    if (delay_types_unavailable)
        return 0;
    if (exponential_delay_type != NULL)
        return 1;
    PyObject *mod = PyImport_ImportModule("repro.sim.delays");
    if (mod == NULL) {
        PyErr_Clear();
        delay_types_unavailable = 1;
        return 0;
    }
    exponential_delay_type = PyObject_GetAttrString(mod, "ExponentialDelay");
    constant_delay_type = PyObject_GetAttrString(mod, "ConstantDelay");
    Py_DECREF(mod);
    if (exponential_delay_type == NULL || constant_delay_type == NULL) {
        PyErr_Clear();
        Py_CLEAR(exponential_delay_type);
        Py_CLEAR(constant_delay_type);
        delay_types_unavailable = 1;
        return 0;
    }
    return 1;
}

#ifdef REPRO_HAVE_NPYRANDOM
/* The bitgen_t behind a numpy Generator.  numpy's public contract:
 * ``generator.bit_generator.capsule`` is a PyCapsule named
 * "BitGenerator" wrapping the bitgen_t.  The caller must hold *holder
 * (a strong ref to the BitGenerator) for as long as it draws. */
static bitgen_t *
bitgen_of(PyObject *rng, PyObject **holder)
{
    PyObject *bg_obj = PyObject_GetAttr(rng, str_bit_generator);
    if (bg_obj == NULL)
        return NULL;
    PyObject *capsule = PyObject_GetAttr(bg_obj, str_capsule_attr);
    if (capsule == NULL) {
        Py_DECREF(bg_obj);
        return NULL;
    }
    bitgen_t *bg = (bitgen_t *)PyCapsule_GetPointer(capsule, "BitGenerator");
    Py_DECREF(capsule);
    if (bg == NULL) {
        Py_DECREF(bg_obj);
        return NULL;
    }
    *holder = bg_obj;
    return bg;
}
#endif

/* Sample a delay without calling .sample() when the model is one of the
 * two built-ins with exactly transcribable draws.  Returns 1 with *out
 * set on a native draw, 0 when the model isn't eligible (caller falls
 * back to the generic call), -1 on error.  Exactness:
 * ``Generator.exponential(scale)`` is one ziggurat draw scaled — the
 * same bits ``random_standard_exponential`` produces — and Python's
 * ``max(floor, v)`` returns v only when strictly greater. */
static int
fast_sample_delay(PyObject *delay_model, PyObject *rng, double *out)
{
    if (!ensure_delay_types())
        return 0;
    if ((PyObject *)Py_TYPE(delay_model) == constant_delay_type) {
        PyObject *delay_obj = PyObject_GetAttr(delay_model, str_cdelay_attr);
        if (delay_obj == NULL)
            return -1;
        double delay = PyFloat_AsDouble(delay_obj);
        Py_DECREF(delay_obj);
        if (delay == -1.0 && PyErr_Occurred())
            return -1;
        *out = delay;
        return 1;
    }
#ifdef REPRO_HAVE_NPYRANDOM
    if ((PyObject *)Py_TYPE(delay_model) == exponential_delay_type) {
        PyObject *mean_obj = PyObject_GetAttr(delay_model, str_mean_attr);
        if (mean_obj == NULL)
            return -1;
        double mean = PyFloat_AsDouble(mean_obj);
        Py_DECREF(mean_obj);
        if (mean == -1.0 && PyErr_Occurred())
            return -1;
        PyObject *floor_obj = PyObject_GetAttr(delay_model, str_floor_attr);
        if (floor_obj == NULL)
            return -1;
        double floor_v = PyFloat_AsDouble(floor_obj);
        Py_DECREF(floor_obj);
        if (floor_v == -1.0 && PyErr_Occurred())
            return -1;
        PyObject *holder;
        bitgen_t *bg = bitgen_of(rng, &holder);
        if (bg == NULL)
            return -1;
        double v = random_standard_exponential(bg) * mean;
        Py_DECREF(holder);
        *out = v > floor_v ? v : floor_v;
        return 1;
    }
#endif
    return 0;
}

/* ------------------------------------------------------------------ */
/* SendCore: Network.send without a Python frame                       */
/* ------------------------------------------------------------------ */

/* The full body of Network.send, transcribed statement for statement —
 * including the operation order the streams depend on: stats/taps
 * first, then the loss draw (always, so the loss stream advances
 * identically however many nodes are crashed), then the fault check,
 * the loss verdict, the adversary, and finally the delay sample and
 * heap push.  Mutable knobs (loss_rate, _taps, _adversary, _loss_rng,
 * _deliver, delay_model, rng) are re-read from the Network on every
 * call so set_message_loss / set_adversary / trace monkeypatches keep
 * working; only the identity-stable collaborators (stats, failures,
 * nodes dict, scheduler) are bound at construction.
 */
typedef struct {
    PyObject_HEAD
    PyObject *network;    /* the owning Network (cycle; GC-tracked) */
    PyObject *stats;
    PyObject *failures;
    PyObject *nodes;      /* the Network's {node_id: Node} dict (shared) */
    SchedulerCore *sched; /* must be a native SchedulerCore */
} SendCore;

static PyTypeObject SendCore_Type;

/* message.kind if truthy, else type(message).__name__ — _kind_of(). */
static PyObject *
kind_of(PyObject *message)
{
    PyObject *kind = PyObject_GetAttr(message, str_kind_attr);
    if (kind == NULL) {
        if (!PyErr_ExceptionMatches(PyExc_AttributeError))
            return NULL;
        PyErr_Clear();
        return PyObject_GetAttr((PyObject *)Py_TYPE(message),
                                str_dunder_name);
    }
    int truth = PyObject_IsTrue(kind);
    if (truth < 0) {
        Py_DECREF(kind);
        return NULL;
    }
    if (truth)
        return kind;
    Py_DECREF(kind);
    return PyObject_GetAttr((PyObject *)Py_TYPE(message), str_dunder_name);
}

/* stats.record_drop(src, dst, kind, reason) — scalar-fast when native. */
static int
stats_record_drop(PyObject *stats, PyObject *src, PyObject *dst,
                  PyObject *kind, PyObject *reason)
{
    if (StatsCore_Check(stats)) {
        ((StatsCore *)stats)->dropped += 1;
        return 0;
    }
    PyObject *res = PyObject_CallMethodObjArgs(
        stats, str_record_drop, src, dst, kind, reason, NULL);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

static PyObject *
sendcore_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PyObject *network;
    if (!PyArg_ParseTuple(args, "O", &network))
        return NULL;
    PyObject *stats = PyObject_GetAttrString(network, "stats");
    if (stats == NULL)
        return NULL;
    PyObject *failures = PyObject_GetAttrString(network, "failures");
    if (failures == NULL) {
        Py_DECREF(stats);
        return NULL;
    }
    PyObject *nodes = PyObject_GetAttrString(network, "_nodes");
    if (nodes == NULL || !PyDict_Check(nodes)) {
        Py_DECREF(stats);
        Py_DECREF(failures);
        Py_XDECREF(nodes);
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError,
                            "network._nodes must be a dict");
        return NULL;
    }
    PyObject *sched = PyObject_GetAttrString(network, "scheduler");
    if (sched == NULL || !PyObject_TypeCheck(sched, &SchedulerCore_Type)) {
        Py_DECREF(stats);
        Py_DECREF(failures);
        Py_DECREF(nodes);
        Py_XDECREF(sched);
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError,
                            "SendCore needs a native SchedulerCore");
        return NULL;
    }
    SendCore *self = (SendCore *)type->tp_alloc(type, 0);
    if (self == NULL) {
        Py_DECREF(stats);
        Py_DECREF(failures);
        Py_DECREF(nodes);
        Py_DECREF(sched);
        return NULL;
    }
    Py_INCREF(network);
    self->network = network;
    self->stats = stats;
    self->failures = failures;
    self->nodes = nodes;
    self->sched = (SchedulerCore *)sched;
    return (PyObject *)self;
}

static int
sendcore_traverse(SendCore *self, visitproc visit, void *arg)
{
    Py_VISIT(self->network);
    Py_VISIT(self->stats);
    Py_VISIT(self->failures);
    Py_VISIT(self->nodes);
    Py_VISIT((PyObject *)self->sched);
    return 0;
}

static int
sendcore_clear(SendCore *self)
{
    Py_CLEAR(self->network);
    Py_CLEAR(self->stats);
    Py_CLEAR(self->failures);
    Py_CLEAR(self->nodes);
    Py_CLEAR(self->sched);
    return 0;
}

static void
sendcore_dealloc(SendCore *self)
{
    PyObject_GC_UnTrack(self);
    sendcore_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
sendcore_invoke(SendCore *self, PyObject *src, PyObject *dst,
                PyObject *message)
{
    int known = PyDict_Contains(self->nodes, dst);
    if (known < 0)
        return -1;
    if (!known) {
        PyErr_Format(PyExc_KeyError, "unknown destination node %S", dst);
        return -1;
    }
    PyObject *kind = kind_of(message);
    if (kind == NULL)
        return -1;

    if (StatsCore_Check(self->stats)) {
        ((StatsCore *)self->stats)->sent += 1;
    }
    else {
        PyObject *res = PyObject_CallMethodObjArgs(
            self->stats, str_record_send, src, dst, kind, NULL);
        if (res == NULL)
            goto fail;
        Py_DECREF(res);
    }

    PyObject *taps = PyObject_GetAttr(self->network, str_taps_attr);
    if (taps == NULL)
        goto fail;
    if (PyList_Check(taps)) {
        for (Py_ssize_t i = 0; i < PyList_GET_SIZE(taps); i++) {
            PyObject *tap = PyList_GET_ITEM(taps, i);
            Py_INCREF(tap);
            PyObject *res = PyObject_CallFunctionObjArgs(
                tap, src, dst, message, NULL);
            Py_DECREF(tap);
            if (res == NULL) {
                Py_DECREF(taps);
                goto fail;
            }
            Py_DECREF(res);
        }
    }
    Py_DECREF(taps);

    /* One loss draw per send whenever loss is on, before any fault
     * check, so the loss stream advances identically however many
     * nodes happen to be crashed. */
    PyObject *rate_obj = PyObject_GetAttr(self->network, str_loss_rate);
    if (rate_obj == NULL)
        goto fail;
    double loss_rate = PyFloat_AsDouble(rate_obj);
    Py_DECREF(rate_obj);
    if (loss_rate == -1.0 && PyErr_Occurred())
        goto fail;
    int lost = 0;
    if (loss_rate > 0.0) {
        PyObject *loss_rng = PyObject_GetAttr(self->network,
                                              str_loss_rng_attr);
        if (loss_rng == NULL)
            goto fail;
        PyObject *draw = PyObject_CallMethodObjArgs(loss_rng, str_random,
                                                    NULL);
        Py_DECREF(loss_rng);
        if (draw == NULL)
            goto fail;
        double value = PyFloat_AsDouble(draw);
        Py_DECREF(draw);
        if (value == -1.0 && PyErr_Occurred())
            goto fail;
        lost = value < loss_rate;
    }

    PyObject *active = PyObject_GetAttr(self->failures, str_active);
    if (active == NULL)
        goto fail;
    int is_active = PyObject_IsTrue(active);
    Py_DECREF(active);
    if (is_active < 0)
        goto fail;
    if (is_active) {
        PyObject *ok = PyObject_CallMethodObjArgs(
            self->failures, str_can_deliver, src, dst, NULL);
        if (ok == NULL)
            goto fail;
        int deliverable = PyObject_IsTrue(ok);
        Py_DECREF(ok);
        if (deliverable < 0)
            goto fail;
        if (!deliverable) {
            if (stats_record_drop(self->stats, src, dst, kind,
                                  str_fault) < 0)
                goto fail;
            Py_DECREF(kind);
            return 0;
        }
    }
    if (lost) {
        if (stats_record_drop(self->stats, src, dst, kind, str_loss) < 0)
            goto fail;
        Py_DECREF(kind);
        return 0;
    }

    double extra = 0.0;
    PyObject *adversary = PyObject_GetAttr(self->network,
                                           str_adversary_attr);
    if (adversary == NULL)
        goto fail;
    if (adversary != Py_None) {
        PyObject *now_obj = PyFloat_FromDouble(self->sched->now);
        if (now_obj == NULL) {
            Py_DECREF(adversary);
            goto fail;
        }
        PyObject *action = PyObject_CallMethodObjArgs(
            adversary, str_intercept, src, dst, message, kind, now_obj,
            NULL);
        Py_DECREF(now_obj);
        Py_DECREF(adversary);
        if (action == NULL)
            goto fail;
        int dropped = PyObject_RichCompareBool(action, str_drop_action,
                                               Py_EQ);
        if (dropped < 0) {
            Py_DECREF(action);
            goto fail;
        }
        if (dropped) {
            Py_DECREF(action);
            if (stats_record_drop(self->stats, src, dst, kind,
                                  str_adversary) < 0)
                goto fail;
            Py_DECREF(kind);
            return 0;
        }
        if (action != Py_None) {
            extra = PyFloat_AsDouble(action);
            if (extra == -1.0 && PyErr_Occurred()) {
                Py_DECREF(action);
                goto fail;
            }
        }
        Py_DECREF(action);
    }
    else {
        Py_DECREF(adversary);
    }

    PyObject *delay_model = PyObject_GetAttr(self->network,
                                             str_delay_model);
    if (delay_model == NULL)
        goto fail;
    PyObject *rng = PyObject_GetAttr(self->network, str_rng_attr);
    if (rng == NULL) {
        Py_DECREF(delay_model);
        goto fail;
    }
    double delay;
    int drawn = fast_sample_delay(delay_model, rng, &delay);
    if (drawn < 0) {
        Py_DECREF(delay_model);
        Py_DECREF(rng);
        goto fail;
    }
    if (!drawn) {
        PyObject *delay_obj = PyObject_CallMethodObjArgs(
            delay_model, str_sample, rng, src, dst, NULL);
        Py_DECREF(delay_model);
        Py_DECREF(rng);
        if (delay_obj == NULL)
            goto fail;
        delay = PyFloat_AsDouble(delay_obj);
        if (delay == -1.0 && PyErr_Occurred()) {
            Py_DECREF(delay_obj);
            goto fail;
        }
        if (delay <= 0) {
            PyErr_Format(PyExc_ValueError,
                         "delay model produced non-positive delay %S",
                         delay_obj);
            Py_DECREF(delay_obj);
            goto fail;
        }
        Py_DECREF(delay_obj);
    }
    else {
        Py_DECREF(delay_model);
        Py_DECREF(rng);
        if (delay <= 0) {
            PyObject *delay_obj = PyFloat_FromDouble(delay);
            if (delay_obj != NULL) {
                PyErr_Format(PyExc_ValueError,
                             "delay model produced non-positive delay %S",
                             delay_obj);
                Py_DECREF(delay_obj);
            }
            goto fail;
        }
    }

    /* scheduler.schedule_uncancellable(delay + extra, _deliver, src,
     * dst, message, kind) — inlined: time = now + (delay + extra),
     * matching the Python operation order bit for bit. */
    PyObject *deliver = PyObject_GetAttr(self->network, str_deliver_attr);
    if (deliver == NULL)
        goto fail;
    PyObject *argtuple = PyTuple_Pack(4, src, dst, message, kind);
    if (argtuple == NULL) {
        Py_DECREF(deliver);
        goto fail;
    }
    KEvent ev;
    ev.time = self->sched->now + (delay + extra);
    ev.seq = self->sched->seq;
    ev.obj = deliver;
    ev.args = argtuple;
    if (heap_push(self->sched, ev) < 0) {
        Py_DECREF(deliver);
        Py_DECREF(argtuple);
        goto fail;
    }
    self->sched->seq += 1;
    self->sched->live += 1;
    Py_DECREF(kind);
    return 0;

fail:
    Py_DECREF(kind);
    return -1;
}

static PyObject *
sendcore_call(SendCore *self, PyObject *args, PyObject *kwds)
{
    PyObject *src, *dst, *message;
    if (kwds != NULL && PyDict_GET_SIZE(kwds) != 0) {
        PyErr_SetString(PyExc_TypeError,
                        "send takes no keyword arguments");
        return NULL;
    }
    if (!PyArg_UnpackTuple(args, "send", 3, 3, &src, &dst, &message))
        return NULL;
    if (sendcore_invoke(self, src, dst, message) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyTypeObject SendCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._native._kernel.SendCore",
    .tp_basicsize = sizeof(SendCore),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Network.send as a C callable: stats, taps, loss draw, "
              "fault check, adversary, delay sample, heap push.",
    .tp_new = sendcore_new,
    .tp_dealloc = (destructor)sendcore_dealloc,
    .tp_traverse = (traverseproc)sendcore_traverse,
    .tp_clear = (inquiry)sendcore_clear,
    .tp_call = (ternaryfunc)sendcore_call,
};

/* ------------------------------------------------------------------ */
/* BroadcastCore: Network.broadcast's healthy fast branch in C         */
/* ------------------------------------------------------------------ */

/* The healthy, loss-free, untapped, adversary-free branch of
 * Network.broadcast — the path every quorum round takes — without a
 * Python frame or the sample_batch list round-trip: membership checks,
 * one scalar stats bump for the whole fan-out, then per destination a
 * native delay draw and an inlined heap push.  Per-destination scalar
 * draws consume the delay stream in exactly the order sample_batch
 * does (a size-n exponential fill is n sequential ziggurat draws), and
 * seq numbers are assigned in destination order either way, so events
 * sort identically.
 *
 * Eligibility is re-checked per call against the same mutable knobs the
 * Python fast branch tests (taps, failures.active, loss_rate,
 * adversary) plus a transcribable delay model; any other configuration
 * falls back to the original Python broadcast method. */
typedef struct {
    PyObject_HEAD
    PyObject *network;    /* the owning Network (cycle; GC-tracked) */
    PyObject *fallback;   /* type(network).broadcast, unbound */
    PyObject *stats;
    PyObject *failures;
    PyObject *nodes;      /* the Network's {node_id: Node} dict (shared) */
    SchedulerCore *sched; /* must be a native SchedulerCore */
} BroadcastCore;

static PyTypeObject BroadcastCore_Type;

static PyObject *
broadcastcore_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PyObject *network;
    if (!PyArg_ParseTuple(args, "O", &network))
        return NULL;
    PyObject *fallback = PyObject_GetAttr(
        (PyObject *)Py_TYPE(network), str_broadcast_attr);
    if (fallback == NULL)
        return NULL;
    PyObject *stats = PyObject_GetAttrString(network, "stats");
    if (stats == NULL) {
        Py_DECREF(fallback);
        return NULL;
    }
    PyObject *failures = PyObject_GetAttrString(network, "failures");
    if (failures == NULL) {
        Py_DECREF(fallback);
        Py_DECREF(stats);
        return NULL;
    }
    PyObject *nodes = PyObject_GetAttrString(network, "_nodes");
    if (nodes == NULL || !PyDict_Check(nodes)) {
        Py_DECREF(fallback);
        Py_DECREF(stats);
        Py_DECREF(failures);
        Py_XDECREF(nodes);
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError,
                            "network._nodes must be a dict");
        return NULL;
    }
    PyObject *sched = PyObject_GetAttrString(network, "scheduler");
    if (sched == NULL || !PyObject_TypeCheck(sched, &SchedulerCore_Type)) {
        Py_DECREF(fallback);
        Py_DECREF(stats);
        Py_DECREF(failures);
        Py_DECREF(nodes);
        Py_XDECREF(sched);
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError,
                            "BroadcastCore needs a native SchedulerCore");
        return NULL;
    }
    BroadcastCore *self = (BroadcastCore *)type->tp_alloc(type, 0);
    if (self == NULL) {
        Py_DECREF(fallback);
        Py_DECREF(stats);
        Py_DECREF(failures);
        Py_DECREF(nodes);
        Py_DECREF(sched);
        return NULL;
    }
    Py_INCREF(network);
    self->network = network;
    self->fallback = fallback;
    self->stats = stats;
    self->failures = failures;
    self->nodes = nodes;
    self->sched = (SchedulerCore *)sched;
    return (PyObject *)self;
}

static int
broadcastcore_traverse(BroadcastCore *self, visitproc visit, void *arg)
{
    Py_VISIT(self->network);
    Py_VISIT(self->fallback);
    Py_VISIT(self->stats);
    Py_VISIT(self->failures);
    Py_VISIT(self->nodes);
    Py_VISIT((PyObject *)self->sched);
    return 0;
}

static int
broadcastcore_clear(BroadcastCore *self)
{
    Py_CLEAR(self->network);
    Py_CLEAR(self->fallback);
    Py_CLEAR(self->stats);
    Py_CLEAR(self->failures);
    Py_CLEAR(self->nodes);
    Py_CLEAR(self->sched);
    return 0;
}

static void
broadcastcore_dealloc(BroadcastCore *self)
{
    PyObject_GC_UnTrack(self);
    broadcastcore_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* The fast-branch preconditions, re-read per call.  1 = native path,
 * 0 = fall back to the Python method, -1 = error. */
static int
broadcastcore_eligible(BroadcastCore *self, PyObject *delay_model)
{
    if (!StatsCore_Check(self->stats))
        return 0;
    if (!ensure_delay_types())
        return 0;
    if ((PyObject *)Py_TYPE(delay_model) != constant_delay_type) {
#ifdef REPRO_HAVE_NPYRANDOM
        if ((PyObject *)Py_TYPE(delay_model) != exponential_delay_type)
            return 0;
#else
        return 0;
#endif
    }
    PyObject *rate_obj = PyObject_GetAttr(self->network, str_loss_rate);
    if (rate_obj == NULL)
        return -1;
    double loss_rate = PyFloat_AsDouble(rate_obj);
    Py_DECREF(rate_obj);
    if (loss_rate == -1.0 && PyErr_Occurred())
        return -1;
    if (loss_rate != 0.0)
        return 0;
    PyObject *taps = PyObject_GetAttr(self->network, str_taps_attr);
    if (taps == NULL)
        return -1;
    int tapped = PyObject_IsTrue(taps);
    Py_DECREF(taps);
    if (tapped < 0)
        return -1;
    if (tapped)
        return 0;
    PyObject *active = PyObject_GetAttr(self->failures, str_active);
    if (active == NULL)
        return -1;
    int faulty = PyObject_IsTrue(active);
    Py_DECREF(active);
    if (faulty < 0)
        return -1;
    if (faulty)
        return 0;
    PyObject *adversary = PyObject_GetAttr(self->network,
                                           str_adversary_attr);
    if (adversary == NULL)
        return -1;
    int hooked = adversary != Py_None;
    Py_DECREF(adversary);
    return hooked ? 0 : 1;
}

static int
broadcastcore_invoke(BroadcastCore *self, PyObject *src, PyObject *dsts,
                     PyObject *message)
{
    int nonempty = PyObject_IsTrue(dsts);
    if (nonempty < 0)
        return -1;
    if (!nonempty)
        return 0;
    PyObject *delay_model = PyObject_GetAttr(self->network,
                                             str_delay_model);
    if (delay_model == NULL)
        return -1;
    int eligible = broadcastcore_eligible(self, delay_model);
    if (eligible < 0) {
        Py_DECREF(delay_model);
        return -1;
    }
    if (!eligible) {
        Py_DECREF(delay_model);
        PyObject *res = PyObject_CallFunctionObjArgs(
            self->fallback, self->network, src, dsts, message, NULL);
        if (res == NULL)
            return -1;
        Py_DECREF(res);
        return 0;
    }

    PyObject *fast = PySequence_Fast(dsts, "dsts must be a sequence");
    if (fast == NULL) {
        Py_DECREF(delay_model);
        return -1;
    }
    Py_ssize_t n = PySequence_Fast_GET_SIZE(fast);
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *dst = PySequence_Fast_GET_ITEM(fast, i);
        int known = PyDict_Contains(self->nodes, dst);
        if (known < 0)
            goto fail_fast;
        if (!known) {
            PyErr_Format(PyExc_KeyError,
                         "unknown destination node %S", dst);
            goto fail_fast;
        }
    }
    PyObject *kind = kind_of(message);
    if (kind == NULL)
        goto fail_fast;
    ((StatsCore *)self->stats)->sent += n;

    PyObject *rng = PyObject_GetAttr(self->network, str_rng_attr);
    if (rng == NULL)
        goto fail_kind;
    PyObject *deliver = PyObject_GetAttr(self->network, str_deliver_attr);
    if (deliver == NULL) {
        Py_DECREF(rng);
        goto fail_kind;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *dst = PySequence_Fast_GET_ITEM(fast, i);
        double delay;
        int drawn = fast_sample_delay(delay_model, rng, &delay);
        if (drawn < 0)
            goto fail_loop;
        if (drawn == 0) {
            PyErr_SetString(PyExc_RuntimeError,
                            "delay model changed type mid-broadcast");
            goto fail_loop;
        }
        if (delay <= 0) {
            PyObject *delay_obj = PyFloat_FromDouble(delay);
            if (delay_obj != NULL) {
                PyErr_Format(PyExc_ValueError,
                             "delay model produced non-positive delay %S",
                             delay_obj);
                Py_DECREF(delay_obj);
            }
            goto fail_loop;
        }
        PyObject *argtuple = PyTuple_Pack(4, src, dst, message, kind);
        if (argtuple == NULL)
            goto fail_loop;
        KEvent ev;
        ev.time = self->sched->now + delay;
        ev.seq = self->sched->seq;
        Py_INCREF(deliver);
        ev.obj = deliver;
        ev.args = argtuple;
        if (heap_push(self->sched, ev) < 0) {
            Py_DECREF(deliver);
            Py_DECREF(argtuple);
            goto fail_loop;
        }
        self->sched->seq += 1;
        self->sched->live += 1;
    }
    Py_DECREF(deliver);
    Py_DECREF(rng);
    Py_DECREF(kind);
    Py_DECREF(fast);
    Py_DECREF(delay_model);
    return 0;

fail_loop:
    Py_DECREF(deliver);
    Py_DECREF(rng);
fail_kind:
    Py_DECREF(kind);
fail_fast:
    Py_DECREF(fast);
    Py_DECREF(delay_model);
    return -1;
}

static PyObject *
broadcastcore_call(BroadcastCore *self, PyObject *args, PyObject *kwds)
{
    PyObject *src, *dsts, *message;
    if (kwds != NULL && PyDict_GET_SIZE(kwds) != 0) {
        PyErr_SetString(PyExc_TypeError,
                        "broadcast takes no keyword arguments");
        return NULL;
    }
    if (!PyArg_UnpackTuple(args, "broadcast", 3, 3, &src, &dsts, &message))
        return NULL;
    if (broadcastcore_invoke(self, src, dsts, message) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyTypeObject BroadcastCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._native._kernel.BroadcastCore",
    .tp_basicsize = sizeof(BroadcastCore),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Network.broadcast's healthy fast branch as a C callable: "
              "membership checks, batched stats, native delay draws, "
              "inlined heap pushes; anything else falls back to Python.",
    .tp_new = broadcastcore_new,
    .tp_dealloc = (destructor)broadcastcore_dealloc,
    .tp_traverse = (traverseproc)broadcastcore_traverse,
    .tp_clear = (inquiry)broadcastcore_clear,
    .tp_call = (ternaryfunc)broadcastcore_call,
};

/* ------------------------------------------------------------------ */
/* quorum_sample: Generator.choice(n, size=k, replace=False) in C      */
/* ------------------------------------------------------------------ */

#ifdef REPRO_HAVE_NPYRANDOM
/* numpy's choice(replace=False, shuffle=True) for 1-D integer ranges,
 * reproduced draw for draw: Floyd's algorithm (one bounded draw per
 * selection, duplicates remapped to the loop index) followed by a
 * descending Fisher-Yates shuffle — the exact draw sequence numpy
 * makes, so the Generator leaves this call in the same state as the
 * Python expression.  Bounded draws use Lemire rejection
 * (use_masked=0), matching Generator.integers. */
static PyObject *
kernel_quorum_sample(PyObject *module, PyObject *const *args,
                     Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError,
                        "quorum_sample expects (rng, n, k)");
        return NULL;
    }
    PyObject *rng = args[0];
    Py_ssize_t n = PyLong_AsSsize_t(args[1]);
    if (n == -1 && PyErr_Occurred())
        return NULL;
    Py_ssize_t k = PyLong_AsSsize_t(args[2]);
    if (k == -1 && PyErr_Occurred())
        return NULL;
    if (n < 1 || k < 1 || k > n) {
        PyErr_Format(PyExc_ValueError,
                     "quorum_sample needs 1 <= k <= n, got n=%zd k=%zd",
                     n, k);
        return NULL;
    }
    if (k > 65536) {
        PyErr_SetString(PyExc_ValueError,
                        "quorum_sample caps k at 65536");
        return NULL;
    }
    int64_t stack_buf[128];
    int64_t *idx = stack_buf;
    if (k > 128) {
        idx = PyMem_Malloc((size_t)k * sizeof(int64_t));
        if (idx == NULL)
            return PyErr_NoMemory();
    }
    PyObject *holder;
    bitgen_t *bg = bitgen_of(rng, &holder);
    if (bg == NULL) {
        if (idx != stack_buf)
            PyMem_Free(idx);
        return NULL;
    }
    Py_ssize_t cnt = 0;
    for (Py_ssize_t j = n - k; j < n; j++) {
        int64_t v = (int64_t)random_bounded_uint64(
            bg, 0, (uint64_t)j, 0, 0);
        for (Py_ssize_t s = 0; s < cnt; s++) {
            if (idx[s] == v) {
                v = (int64_t)j;
                break;
            }
        }
        idx[cnt++] = v;
    }
    for (Py_ssize_t i = k - 1; i > 0; i--) {
        Py_ssize_t j = (Py_ssize_t)random_bounded_uint64(
            bg, 0, (uint64_t)i, 0, 0);
        int64_t tmp = idx[i];
        idx[i] = idx[j];
        idx[j] = tmp;
    }
    Py_DECREF(holder);
    PyObject *result = PyFrozenSet_New(NULL);
    if (result == NULL) {
        if (idx != stack_buf)
            PyMem_Free(idx);
        return NULL;
    }
    for (Py_ssize_t i = 0; i < k; i++) {
        PyObject *member = PyLong_FromLongLong((long long)idx[i]);
        if (member == NULL || PySet_Add(result, member) < 0) {
            Py_XDECREF(member);
            Py_DECREF(result);
            if (idx != stack_buf)
                PyMem_Free(idx);
            return NULL;
        }
        Py_DECREF(member);
    }
    if (idx != stack_buf)
        PyMem_Free(idx);
    return result;
}
#else
static PyObject *
kernel_quorum_sample(PyObject *module, PyObject *const *args,
                     Py_ssize_t nargs)
{
    PyErr_SetString(PyExc_RuntimeError,
                    "quorum_sample needs a build linked against numpy's "
                    "random library (HAVE_FAST_RNG is 0)");
    return NULL;
}
#endif

/* ------------------------------------------------------------------ */
/* ProtocolCore: the register protocol without Python frames           */
/* ------------------------------------------------------------------ */

/* Native transcriptions of the two per-message protocol callbacks:
 * ``ReplicaServer.on_message`` (ServerCore) and the reply-aggregation
 * path of ``QuorumRegisterClient.on_message`` + ``_finish`` +
 * ``_teardown`` (ClientCore).  Installed as the node's ``on_message``
 * instance attribute — exactly like the network's SendCore /
 * DeliveryCore — so trace taps and monkeypatches keep working, and the
 * pure-python methods remain the reference implementation.
 *
 * Soft fallback, re-checked on every delivery: an attached adversary,
 * detailed MessageStats, an op-level span (tracing), or the online spec
 * monitor route that message back through the original Python handler,
 * so chaos campaigns and observability runs stay bit-correct.  The
 * live latency histogram is observed natively in clientcore_finish.
 * RNG draws stay in Python in the pre-existing order here; the quorum
 * sample itself can run natively via ``quorum_sample`` (same bits).
 */

/* Resolve the protocol classes lazily, on first core construction —
 * never at module import, so the extension stays importable alone. */
static int
ensure_protocol_types(void)
{
    if (timestamp_type != NULL)
        return 0;
    PyObject *messages = PyImport_ImportModule("repro.registers.messages");
    if (messages == NULL)
        return -1;
    msg_read_query = PyObject_GetAttrString(messages, "ReadQuery");
    msg_read_reply = PyObject_GetAttrString(messages, "ReadReply");
    msg_write_update = PyObject_GetAttrString(messages, "WriteUpdate");
    msg_write_ack = PyObject_GetAttrString(messages, "WriteAck");
    Py_DECREF(messages);
    if (msg_read_query == NULL || msg_read_reply == NULL
        || msg_write_update == NULL || msg_write_ack == NULL)
        goto fail;
    /* Replies are built through tuple.__new__ directly (skipping the
     * generated NamedTuple __new__ frame), which is only valid for
     * tuple subtypes. */
    if (!PyType_Check(msg_read_reply) || !PyType_Check(msg_write_ack)
        || !PyType_IsSubtype((PyTypeObject *)msg_read_reply, &PyTuple_Type)
        || !PyType_IsSubtype((PyTypeObject *)msg_write_ack, &PyTuple_Type)
        || !PyType_Check(msg_read_query) || !PyType_Check(msg_write_update)) {
        PyErr_SetString(PyExc_TypeError,
                        "register protocol messages must be tuple "
                        "subclasses (typing.NamedTuple)");
        goto fail;
    }
    PyObject *history = PyImport_ImportModule("repro.core.history");
    if (history == NULL)
        goto fail;
    nullrecord_type = PyObject_GetAttrString(history, "_NullRecord");
    Py_DECREF(history);
    if (nullrecord_type == NULL)
        goto fail;
    PyObject *timestamps = PyImport_ImportModule("repro.core.timestamps");
    if (timestamps == NULL)
        goto fail;
    /* Assigned last: non-NULL timestamp_type marks full resolution. */
    timestamp_type = PyObject_GetAttrString(timestamps, "Timestamp");
    Py_DECREF(timestamps);
    if (timestamp_type == NULL)
        goto fail;
    return 0;
fail:
    Py_CLEAR(msg_read_query);
    Py_CLEAR(msg_read_reply);
    Py_CLEAR(msg_write_update);
    Py_CLEAR(msg_write_ack);
    Py_CLEAR(nullrecord_type);
    Py_CLEAR(timestamp_type);
    return -1;
}

/* a > b under Timestamp's lexicographic (seq, writer) order, without
 * the tuple-building Python __gt__ frame; non-exact operand types take
 * the generic comparison protocol.  Returns 1/0/-1 (error). */
static int
timestamp_gt(PyObject *a, PyObject *b)
{
    if ((PyObject *)Py_TYPE(a) != timestamp_type
        || (PyObject *)Py_TYPE(b) != timestamp_type)
        return PyObject_RichCompareBool(a, b, Py_GT);
    PyObject *a_seq = PyObject_GetAttr(a, str_seq_attr);
    if (a_seq == NULL)
        return -1;
    PyObject *b_seq = PyObject_GetAttr(b, str_seq_attr);
    if (b_seq == NULL) {
        Py_DECREF(a_seq);
        return -1;
    }
    int eq = PyObject_RichCompareBool(a_seq, b_seq, Py_EQ);
    if (eq < 0 || !eq) {
        int gt = eq < 0 ? -1 : PyObject_RichCompareBool(a_seq, b_seq, Py_GT);
        Py_DECREF(a_seq);
        Py_DECREF(b_seq);
        return gt;
    }
    Py_DECREF(a_seq);
    Py_DECREF(b_seq);
    PyObject *a_writer = PyObject_GetAttr(a, str_writer_attr);
    if (a_writer == NULL)
        return -1;
    PyObject *b_writer = PyObject_GetAttr(b, str_writer_attr);
    if (b_writer == NULL) {
        Py_DECREF(a_writer);
        return -1;
    }
    int gt = PyObject_RichCompareBool(a_writer, b_writer, Py_GT);
    Py_DECREF(a_writer);
    Py_DECREF(b_writer);
    return gt;
}

/* obj.<name> += 1 for the plain-int instance counters. */
static int
bump_counter(PyObject *obj, PyObject *name)
{
    PyObject *old = PyObject_GetAttr(obj, name);
    if (old == NULL)
        return -1;
    PyObject *fresh = PyNumber_Add(old, py_one);
    Py_DECREF(old);
    if (fresh == NULL)
        return -1;
    int rc = PyObject_SetAttr(obj, name, fresh);
    Py_DECREF(fresh);
    return rc;
}

/* network.send(src, dst, message) — straight into sendcore_invoke when
 * the network runs the native send path (the common case). */
static int
send_message(PyObject *network, PyObject *src, PyObject *dst,
             PyObject *message)
{
    PyObject *send = PyObject_GetAttr(network, str_send_attr);
    if (send == NULL)
        return -1;
    int rc;
    if (Py_TYPE(send) == &SendCore_Type) {
        rc = sendcore_invoke((SendCore *)send, src, dst, message);
    }
    else {
        PyObject *res = PyObject_CallFunctionObjArgs(
            send, src, dst, message, NULL);
        rc = res == NULL ? -1 : 0;
        Py_XDECREF(res);
    }
    Py_DECREF(send);
    return rc;
}

/* Instantiate a message NamedTuple via tuple.__new__(cls, fields) —
 * exactly what the generated __new__ does, minus its Python frame.
 * Steals the fields reference. */
static PyObject *
make_message(PyObject *cls, PyObject *fields)
{
    if (fields == NULL)
        return NULL;
    PyObject *args = PyTuple_Pack(1, fields);
    Py_DECREF(fields);
    if (args == NULL)
        return NULL;
    PyObject *message = PyTuple_Type.tp_new((PyTypeObject *)cls, args, NULL);
    Py_DECREF(args);
    return message;
}

/* ------------------------------ ServerCore ------------------------- */

typedef struct {
    PyObject_HEAD
    PyObject *server;   /* the ReplicaServer */
    PyObject *fallback; /* type(server).on_message, unbound */
    PyObject *network;
    PyObject *stats;    /* network.stats (identity-stable) */
    PyObject *replicas; /* server._replicas dict (shared) */
    PyObject *node_id;  /* server.node_id */
} ServerCore;

static PyObject *
servercore_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PyObject *server;
    if (!PyArg_ParseTuple(args, "O", &server))
        return NULL;
    if (ensure_protocol_types() < 0)
        return NULL;
    PyObject *fallback = NULL, *network = NULL, *stats = NULL;
    PyObject *replicas = NULL, *node_id = NULL;
    fallback = PyObject_GetAttr((PyObject *)Py_TYPE(server), str_on_message);
    if (fallback == NULL)
        goto fail;
    network = PyObject_GetAttr(server, str_network_attr);
    if (network == NULL)
        goto fail;
    stats = PyObject_GetAttr(network, str_stats_attr);
    if (stats == NULL)
        goto fail;
    replicas = PyObject_GetAttr(server, str_replicas_attr);
    if (replicas == NULL)
        goto fail;
    if (!PyDict_Check(replicas)) {
        PyErr_SetString(PyExc_TypeError, "server._replicas must be a dict");
        goto fail;
    }
    node_id = PyObject_GetAttr(server, str_node_id);
    if (node_id == NULL)
        goto fail;
    ServerCore *self = (ServerCore *)type->tp_alloc(type, 0);
    if (self == NULL)
        goto fail;
    Py_INCREF(server);
    self->server = server;
    self->fallback = fallback;
    self->network = network;
    self->stats = stats;
    self->replicas = replicas;
    self->node_id = node_id;
    return (PyObject *)self;
fail:
    Py_XDECREF(fallback);
    Py_XDECREF(network);
    Py_XDECREF(stats);
    Py_XDECREF(replicas);
    Py_XDECREF(node_id);
    return NULL;
}

static int
servercore_traverse(ServerCore *self, visitproc visit, void *arg)
{
    Py_VISIT(self->server);
    Py_VISIT(self->fallback);
    Py_VISIT(self->network);
    Py_VISIT(self->stats);
    Py_VISIT(self->replicas);
    Py_VISIT(self->node_id);
    return 0;
}

static int
servercore_clear(ServerCore *self)
{
    Py_CLEAR(self->server);
    Py_CLEAR(self->fallback);
    Py_CLEAR(self->network);
    Py_CLEAR(self->stats);
    Py_CLEAR(self->replicas);
    Py_CLEAR(self->node_id);
    return 0;
}

static void
servercore_dealloc(ServerCore *self)
{
    PyObject_GC_UnTrack(self);
    servercore_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
servercore_run_fallback(ServerCore *self, PyObject *src, PyObject *message)
{
    PyObject *res = PyObject_CallFunctionObjArgs(
        self->fallback, self->server, src, message, NULL);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

/* The replica-dict probe: hot path is one C dict lookup; the cold path
 * (first message touching a register) takes the Python ``_replica``
 * method so space.info validation stays in one place.  Returns a strong
 * reference to the (timestamp, value) entry, or NULL. */
static PyObject *
servercore_replica(ServerCore *self, PyObject *reg)
{
    PyObject *entry = PyDict_GetItemWithError(self->replicas, reg);
    if (entry != NULL) {
        Py_INCREF(entry);
        return entry;
    }
    if (PyErr_Occurred())
        return NULL;
    return PyObject_CallMethodObjArgs(self->server, str_replica_method,
                                      reg, NULL);
}

static int
servercore_invoke(ServerCore *self, PyObject *src, PyObject *message)
{
    /* Mutable hooks, re-checked per delivery: an adversary or detailed
     * stats hand the message back to the Python handler. */
    if (!StatsCore_Check(self->stats))
        return servercore_run_fallback(self, src, message);
    PyObject *adversary = PyObject_GetAttr(self->network, str_adversary_attr);
    if (adversary == NULL)
        return -1;
    int hooked = adversary != Py_None;
    Py_DECREF(adversary);
    if (hooked)
        return servercore_run_fallback(self, src, message);

    PyObject *msg_type = (PyObject *)Py_TYPE(message);
    if (msg_type == msg_read_query) {
        PyObject *reg = PyTuple_GET_ITEM(message, 0);
        PyObject *op_id = PyTuple_GET_ITEM(message, 1);
        PyObject *entry = servercore_replica(self, reg);
        if (entry == NULL)
            return -1;
        if (!PyTuple_Check(entry) || PyTuple_GET_SIZE(entry) != 2) {
            /* Foreign replica layout: let Python unpack (and fail) it. */
            Py_DECREF(entry);
            return servercore_run_fallback(self, src, message);
        }
        if (bump_counter(self->server, str_reads_served) < 0) {
            Py_DECREF(entry);
            return -1;
        }
        PyObject *reply = make_message(
            msg_read_reply,
            PyTuple_Pack(4, reg, op_id, PyTuple_GET_ITEM(entry, 1),
                         PyTuple_GET_ITEM(entry, 0)));
        Py_DECREF(entry);
        if (reply == NULL)
            return -1;
        int rc = send_message(self->network, self->node_id, src, reply);
        Py_DECREF(reply);
        return rc;
    }
    if (msg_type == msg_write_update) {
        PyObject *reg = PyTuple_GET_ITEM(message, 0);
        PyObject *op_id = PyTuple_GET_ITEM(message, 1);
        PyObject *value = PyTuple_GET_ITEM(message, 2);
        PyObject *ts = PyTuple_GET_ITEM(message, 3);
        PyObject *entry = servercore_replica(self, reg);
        if (entry == NULL)
            return -1;
        if (!PyTuple_Check(entry) || PyTuple_GET_SIZE(entry) != 2) {
            Py_DECREF(entry);
            return servercore_run_fallback(self, src, message);
        }
        int newer = timestamp_gt(ts, PyTuple_GET_ITEM(entry, 0));
        Py_DECREF(entry);
        if (newer < 0)
            return -1;
        if (newer) {
            PyObject *fresh = PyTuple_Pack(2, ts, value);
            if (fresh == NULL)
                return -1;
            int rc = PyDict_SetItem(self->replicas, reg, fresh);
            Py_DECREF(fresh);
            if (rc < 0)
                return -1;
            if (bump_counter(self->server, str_writes_applied) < 0)
                return -1;
        }
        else {
            if (bump_counter(self->server, str_stale_updates) < 0)
                return -1;
        }
        PyObject *reply = make_message(msg_write_ack,
                                       PyTuple_Pack(2, reg, op_id));
        if (reply == NULL)
            return -1;
        int rc = send_message(self->network, self->node_id, src, reply);
        Py_DECREF(reply);
        return rc;
    }
    /* Anything else — unknown kinds, message subclasses — takes the
     * Python handler, which counts-and-ignores unknown messages. */
    return servercore_run_fallback(self, src, message);
}

static PyObject *
servercore_call(ServerCore *self, PyObject *args, PyObject *kwds)
{
    PyObject *src, *message;
    if (kwds != NULL && PyDict_GET_SIZE(kwds) != 0) {
        PyErr_SetString(PyExc_TypeError,
                        "on_message takes no keyword arguments");
        return NULL;
    }
    if (!PyArg_UnpackTuple(args, "on_message", 2, 2, &src, &message))
        return NULL;
    if (servercore_invoke(self, src, message) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyMemberDef servercore_members[] = {
    {"server", T_OBJECT_EX, offsetof(ServerCore, server), READONLY,
     "the ReplicaServer this core handles messages for"},
    {"fallback", T_OBJECT_EX, offsetof(ServerCore, fallback), READONLY,
     "the unbound Python handler used when a hook forces fallback"},
    {NULL}
};

static PyTypeObject ServerCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._native._kernel.ServerCore",
    .tp_basicsize = sizeof(ServerCore),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "ReplicaServer.on_message as a C callable: replica probe, "
              "timestamp compare, install-or-ignore, reply send.",
    .tp_new = servercore_new,
    .tp_dealloc = (destructor)servercore_dealloc,
    .tp_traverse = (traverseproc)servercore_traverse,
    .tp_clear = (inquiry)servercore_clear,
    .tp_call = (ternaryfunc)servercore_call,
    .tp_members = servercore_members,
};

/* ------------------------------ ClientCore ------------------------- */

typedef struct {
    PyObject_HEAD
    PyObject *client;       /* the QuorumRegisterClient */
    PyObject *fallback;     /* type(client).on_message, unbound */
    PyObject *network;
    PyObject *failures;
    PyObject *stats;        /* network.stats (identity-stable) */
    PyObject *pending;      /* client._pending dict (shared) */
    PyObject *server_index; /* client._server_index dict (shared) */
    PyObject *cache;        /* client._cache dict (shared) */
    SchedulerCore *sched;   /* native scheduler (for ``now``) */
    int monotone;
} ClientCore;

static PyObject *
clientcore_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PyObject *client;
    if (!PyArg_ParseTuple(args, "O", &client))
        return NULL;
    if (ensure_protocol_types() < 0)
        return NULL;
    PyObject *fallback = NULL, *network = NULL, *failures = NULL;
    PyObject *stats = NULL, *pending = NULL, *server_index = NULL;
    PyObject *cache = NULL, *sched = NULL, *monotone_obj = NULL;
    fallback = PyObject_GetAttr((PyObject *)Py_TYPE(client), str_on_message);
    if (fallback == NULL)
        goto fail;
    network = PyObject_GetAttr(client, str_network_attr);
    if (network == NULL)
        goto fail;
    failures = PyObject_GetAttr(network, str_failures_attr);
    if (failures == NULL)
        goto fail;
    stats = PyObject_GetAttr(network, str_stats_attr);
    if (stats == NULL)
        goto fail;
    pending = PyObject_GetAttr(client, str_pending_attr);
    if (pending == NULL)
        goto fail;
    server_index = PyObject_GetAttr(client, str_server_index);
    if (server_index == NULL)
        goto fail;
    cache = PyObject_GetAttr(client, str_cache_attr);
    if (cache == NULL)
        goto fail;
    if (!PyDict_Check(pending) || !PyDict_Check(server_index)
        || !PyDict_Check(cache)) {
        PyErr_SetString(PyExc_TypeError,
                        "client._pending, _server_index and _cache must "
                        "be dicts");
        goto fail;
    }
    sched = PyObject_GetAttr(network, str_scheduler_attr);
    if (sched == NULL)
        goto fail;
    if (!PyObject_TypeCheck(sched, &SchedulerCore_Type)) {
        PyErr_SetString(PyExc_TypeError,
                        "ClientCore needs a native SchedulerCore");
        goto fail;
    }
    monotone_obj = PyObject_GetAttr(client, str_monotone);
    if (monotone_obj == NULL)
        goto fail;
    int monotone = PyObject_IsTrue(monotone_obj);
    Py_CLEAR(monotone_obj);
    if (monotone < 0)
        goto fail;
    ClientCore *self = (ClientCore *)type->tp_alloc(type, 0);
    if (self == NULL)
        goto fail;
    Py_INCREF(client);
    self->client = client;
    self->fallback = fallback;
    self->network = network;
    self->failures = failures;
    self->stats = stats;
    self->pending = pending;
    self->server_index = server_index;
    self->cache = cache;
    self->sched = (SchedulerCore *)sched;
    self->monotone = monotone;
    return (PyObject *)self;
fail:
    Py_XDECREF(fallback);
    Py_XDECREF(network);
    Py_XDECREF(failures);
    Py_XDECREF(stats);
    Py_XDECREF(pending);
    Py_XDECREF(server_index);
    Py_XDECREF(cache);
    Py_XDECREF(sched);
    Py_XDECREF(monotone_obj);
    return NULL;
}

static int
clientcore_traverse(ClientCore *self, visitproc visit, void *arg)
{
    Py_VISIT(self->client);
    Py_VISIT(self->fallback);
    Py_VISIT(self->network);
    Py_VISIT(self->failures);
    Py_VISIT(self->stats);
    Py_VISIT(self->pending);
    Py_VISIT(self->server_index);
    Py_VISIT(self->cache);
    Py_VISIT((PyObject *)self->sched);
    return 0;
}

static int
clientcore_clear(ClientCore *self)
{
    Py_CLEAR(self->client);
    Py_CLEAR(self->fallback);
    Py_CLEAR(self->network);
    Py_CLEAR(self->failures);
    Py_CLEAR(self->stats);
    Py_CLEAR(self->pending);
    Py_CLEAR(self->server_index);
    Py_CLEAR(self->cache);
    Py_CLEAR(self->sched);
    return 0;
}

static void
clientcore_dealloc(ClientCore *self)
{
    PyObject_GC_UnTrack(self);
    clientcore_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
clientcore_run_fallback(ClientCore *self, PyObject *src, PyObject *message)
{
    PyObject *res = PyObject_CallFunctionObjArgs(
        self->fallback, self->client, src, message, NULL);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

/* op.<attr>.cancel(), inlined for native handles. */
static int
cancel_op_handle(PyObject *op, PyObject *attr)
{
    PyObject *handle = PyObject_GetAttr(op, attr);
    if (handle == NULL)
        return -1;
    if (handle == Py_None) {
        Py_DECREF(handle);
        return 0;
    }
    if (PyObject_TypeCheck(handle, &KernelHandle_Type)) {
        KernelHandle *kh = (KernelHandle *)handle;
        if (!kh->cancelled) {
            kh->cancelled = 1;
            if (kh->owner != NULL && !kh->dequeued)
                kh->owner->live -= 1;
        }
        Py_DECREF(handle);
        return 0;
    }
    PyObject *res = PyObject_CallMethodObjArgs(handle, str_cancel, NULL);
    Py_DECREF(handle);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

/* reply.timestamp / reply.value: index access for exact message types,
 * attribute access for subclasses (mirroring the NamedTuple property). */
static PyObject *
reply_timestamp(PyObject *reply)
{
    if ((PyObject *)Py_TYPE(reply) == msg_read_reply) {
        PyObject *ts = PyTuple_GET_ITEM(reply, 3);
        Py_INCREF(ts);
        return ts;
    }
    return PyObject_GetAttr(reply, str_timestamp_attr);
}

static PyObject *
reply_value(PyObject *reply)
{
    if ((PyObject *)Py_TYPE(reply) == msg_read_reply) {
        PyObject *value = PyTuple_GET_ITEM(reply, 2);
        Py_INCREF(value);
        return value;
    }
    return PyObject_GetAttr(reply, str_value_attr);
}

/* QuorumRegisterClient._finish + _teardown, transcribed.  ``op`` is a
 * strong reference held by the caller; spans / monitor are guaranteed
 * off by the caller's fallback guards, while the latency histogram is
 * handled natively below. */
static int
clientcore_finish(ClientCore *self, PyObject *op, PyObject *op_id,
                  PyObject *quorum, PyObject *replies)
{
    if (PyDict_DelItem(self->pending, op_id) < 0)
        return -1;
    if (cancel_op_handle(op, str_retry_handle) < 0)
        return -1;
    if (cancel_op_handle(op, str_deadline_handle) < 0)
        return -1;
    if (bump_counter(self->client, str_ops_completed) < 0)
        return -1;
    PyObject *active = PyObject_GetAttr(self->failures, str_active);
    if (active == NULL)
        return -1;
    int under_failure = PyObject_IsTrue(active);
    Py_DECREF(active);
    if (under_failure < 0)
        return -1;
    if (under_failure
        && bump_counter(self->client, str_ops_under_failure) < 0)
        return -1;

    PyObject *is_read_obj = PyObject_GetAttr(op, str_is_read);
    if (is_read_obj == NULL)
        return -1;
    int is_read = PyObject_IsTrue(is_read_obj);
    Py_DECREF(is_read_obj);
    if (is_read < 0)
        return -1;

    /* Live latency histogram: observe(now - op.started) on the op's
     * kind, exactly where the Python _finish does it — after the
     * completion counters, before span finish and future resolution. */
    PyObject *latency = PyObject_GetAttr(self->client, str_latency_attr);
    if (latency == NULL)
        return -1;
    if (latency != Py_None) {
        PyObject *started_obj = PyObject_GetAttr(op, str_started_attr);
        if (started_obj == NULL) {
            Py_DECREF(latency);
            return -1;
        }
        double started = PyFloat_AsDouble(started_obj);
        Py_DECREF(started_obj);
        if (started == -1.0 && PyErr_Occurred()) {
            Py_DECREF(latency);
            return -1;
        }
        PyObject *hist = PyObject_GetItem(
            latency, is_read ? str_read_kind : str_write_kind);
        Py_DECREF(latency);
        if (hist == NULL)
            return -1;
        PyObject *elapsed = PyFloat_FromDouble(self->sched->now - started);
        if (elapsed == NULL) {
            Py_DECREF(hist);
            return -1;
        }
        PyObject *res = PyObject_CallMethodObjArgs(
            hist, str_observe, elapsed, NULL);
        Py_DECREF(elapsed);
        Py_DECREF(hist);
        if (res == NULL)
            return -1;
        Py_DECREF(res);
    }
    else {
        Py_DECREF(latency);
    }

    PyObject *record = PyObject_GetAttr(op, str_record);
    if (record == NULL)
        return -1;
    int null_record = (PyObject *)Py_TYPE(record) == nullrecord_type;

    if (!is_read) {
        if (!null_record) {
            PyObject *now_obj = PyFloat_FromDouble(self->sched->now);
            if (now_obj == NULL)
                goto fail_record;
            PyObject *res = PyObject_CallMethodObjArgs(
                record, str_respond, now_obj, NULL);
            Py_DECREF(now_obj);
            if (res == NULL)
                goto fail_record;
            Py_DECREF(res);
        }
        Py_DECREF(record);
        PyObject *future = PyObject_GetAttr(op, str_future_attr);
        if (future == NULL)
            return -1;
        PyObject *res = PyObject_CallMethodObjArgs(
            future, str_resolve, Py_None, NULL);
        Py_DECREF(future);
        if (res == NULL)
            return -1;
        Py_DECREF(res);
        return 0;
    }

    /* Read: the highest-timestamped reply among current-quorum members,
     * first-maximum semantics (replace only on strictly greater). */
    PyObject *iter = PyObject_GetIter(quorum);
    if (iter == NULL)
        goto fail_record;
    PyObject *best = NULL; /* borrowed from replies */
    PyObject *member;
    while ((member = PyIter_Next(iter)) != NULL) {
        PyObject *reply = PyDict_GetItemWithError(replies, member);
        Py_DECREF(member);
        if (reply == NULL) {
            if (PyErr_Occurred())
                break;
            continue; /* member answered for an earlier quorum only */
        }
        if (!PyObject_TypeCheck(reply, (PyTypeObject *)msg_read_reply))
            continue;
        if (best == NULL) {
            best = reply;
            continue;
        }
        PyObject *reply_ts = reply_timestamp(reply);
        if (reply_ts == NULL)
            break;
        PyObject *best_ts = reply_timestamp(best);
        if (best_ts == NULL) {
            Py_DECREF(reply_ts);
            break;
        }
        int gt = timestamp_gt(reply_ts, best_ts);
        Py_DECREF(reply_ts);
        Py_DECREF(best_ts);
        if (gt < 0)
            break;
        if (gt)
            best = reply;
    }
    Py_DECREF(iter);
    if (PyErr_Occurred())
        goto fail_record;
    if (best == NULL) {
        /* max() over an empty sequence — unreachable for a completed
         * read, kept for parity with the Python reference. */
        PyErr_SetString(PyExc_ValueError, "max() arg is an empty sequence");
        goto fail_record;
    }
    PyObject *value = reply_value(best);
    if (value == NULL)
        goto fail_record;
    PyObject *ts = reply_timestamp(best);
    if (ts == NULL) {
        Py_DECREF(value);
        goto fail_record;
    }

    if (self->monotone) {
        PyObject *reg = PyObject_GetAttr(op, str_register_attr);
        if (reg == NULL)
            goto fail_read;
        PyObject *cached = PyDict_GetItemWithError(self->cache, reg);
        if (cached == NULL && PyErr_Occurred()) {
            Py_DECREF(reg);
            goto fail_read;
        }
        int serve_cached = 0;
        if (cached != NULL) {
            Py_INCREF(cached);
            PyObject *cached_ts = PyTuple_Check(cached)
                ? PyTuple_GET_ITEM(cached, 0)
                : NULL;
            if (cached_ts == NULL) {
                Py_DECREF(cached);
                Py_DECREF(reg);
                PyErr_SetString(PyExc_TypeError,
                                "monotone cache entries must be tuples");
                goto fail_read;
            }
            serve_cached = timestamp_gt(cached_ts, ts);
            if (serve_cached < 0) {
                Py_DECREF(cached);
                Py_DECREF(reg);
                goto fail_read;
            }
            if (serve_cached) {
                Py_DECREF(ts);
                Py_DECREF(value);
                ts = PyTuple_GET_ITEM(cached, 0);
                value = PyTuple_GET_ITEM(cached, 1);
                Py_INCREF(ts);
                Py_INCREF(value);
                if (bump_counter(self->client, str_cache_hits) < 0) {
                    Py_DECREF(cached);
                    Py_DECREF(reg);
                    goto fail_read;
                }
            }
            Py_DECREF(cached);
        }
        if (!serve_cached) {
            PyObject *fresh = PyTuple_Pack(2, ts, value);
            if (fresh == NULL) {
                Py_DECREF(reg);
                goto fail_read;
            }
            int rc = PyDict_SetItem(self->cache, reg, fresh);
            Py_DECREF(fresh);
            if (rc < 0) {
                Py_DECREF(reg);
                goto fail_read;
            }
        }
        Py_DECREF(reg);
    }

    if (!null_record) {
        PyObject *now_obj = PyFloat_FromDouble(self->sched->now);
        if (now_obj == NULL)
            goto fail_read;
        PyObject *res = PyObject_CallMethodObjArgs(
            record, str_complete, now_obj, value, ts, NULL);
        Py_DECREF(now_obj);
        if (res == NULL)
            goto fail_read;
        Py_DECREF(res);
    }
    Py_DECREF(record);
    Py_DECREF(ts);

    PyObject *future = PyObject_GetAttr(op, str_future_attr);
    if (future == NULL) {
        Py_DECREF(value);
        return -1;
    }
    PyObject *res = PyObject_CallMethodObjArgs(
        future, str_resolve, value, NULL);
    Py_DECREF(future);
    Py_DECREF(value);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;

fail_read:
    Py_DECREF(value);
    Py_DECREF(ts);
fail_record:
    Py_DECREF(record);
    return -1;
}

static int
clientcore_invoke(ClientCore *self, PyObject *src, PyObject *message)
{
    PyObject *msg_type = (PyObject *)Py_TYPE(message);
    if (msg_type != msg_read_reply && msg_type != msg_write_ack)
        /* Subclassed replies take the Python isinstance path; foreign
         * kinds are a Python no-op either way. */
        return clientcore_run_fallback(self, src, message);

    /* Mutable hooks, re-checked per delivery: detailed stats, an
     * adversary, or the online spec monitor force the Python handler
     * for this message.  The latency histogram is observed natively
     * in clientcore_finish, so it no longer forces a fallback. */
    if (!StatsCore_Check(self->stats))
        return clientcore_run_fallback(self, src, message);
    PyObject *adversary = PyObject_GetAttr(self->network, str_adversary_attr);
    if (adversary == NULL)
        return -1;
    int hooked = adversary != Py_None;
    Py_DECREF(adversary);
    if (hooked)
        return clientcore_run_fallback(self, src, message);
    PyObject *monitor_on = PyObject_GetAttr(self->client, str_monitor_on);
    if (monitor_on == NULL)
        return -1;
    hooked = PyObject_IsTrue(monitor_on);
    Py_DECREF(monitor_on);
    if (hooked < 0)
        return -1;
    if (hooked)
        return clientcore_run_fallback(self, src, message);

    PyObject *op_id = PyTuple_GET_ITEM(message, 1);
    PyObject *op = PyDict_GetItemWithError(self->pending, op_id);
    if (op == NULL)
        /* Late reply for a completed operation. */
        return PyErr_Occurred() ? -1 : 0;
    PyObject *server_idx = PyDict_GetItemWithError(self->server_index, src);
    if (server_idx == NULL)
        /* Reply from an unknown node. */
        return PyErr_Occurred() ? -1 : 0;

    /* Span tracing is per-op: fall back *before* recording the reply so
     * the Python handler replays the whole step (the lookups above are
     * read-only). */
    PyObject *span = PyObject_GetAttr(op, str_span);
    if (span == NULL)
        return -1;
    int traced = span != Py_None;
    Py_DECREF(span);
    if (traced)
        return clientcore_run_fallback(self, src, message);

    Py_INCREF(op); /* survives the pending-dict delete in finish */
    PyObject *replies = PyObject_GetAttr(op, str_replies);
    if (replies == NULL) {
        Py_DECREF(op);
        return -1;
    }
    if (!PyDict_Check(replies)) {
        Py_DECREF(replies);
        Py_DECREF(op);
        PyErr_SetString(PyExc_TypeError, "op.replies must be a dict");
        return -1;
    }
    if (PyDict_SetItem(replies, server_idx, message) < 0) {
        Py_DECREF(replies);
        Py_DECREF(op);
        return -1;
    }
    PyObject *quorum = PyObject_GetAttr(op, str_quorum);
    if (quorum == NULL) {
        Py_DECREF(replies);
        Py_DECREF(op);
        return -1;
    }
    /* quorum.issubset(replies): a size prefilter (replies can't cover a
     * larger quorum) then a C membership loop. */
    int complete = 1;
    if (PyAnySet_Check(quorum)
        && PyDict_GET_SIZE(replies) < PySet_GET_SIZE(quorum)) {
        complete = 0;
    }
    else {
        PyObject *iter = PyObject_GetIter(quorum);
        if (iter == NULL)
            goto fail;
        PyObject *member;
        while ((member = PyIter_Next(iter)) != NULL) {
            int has = PyDict_Contains(replies, member);
            Py_DECREF(member);
            if (has < 0)
                break;
            if (!has) {
                complete = 0;
                break;
            }
        }
        Py_DECREF(iter);
        if (PyErr_Occurred())
            goto fail;
    }
    int rc = 0;
    if (complete)
        rc = clientcore_finish(self, op, op_id, quorum, replies);
    Py_DECREF(quorum);
    Py_DECREF(replies);
    Py_DECREF(op);
    return rc;
fail:
    Py_DECREF(quorum);
    Py_DECREF(replies);
    Py_DECREF(op);
    return -1;
}

static PyObject *
clientcore_call(ClientCore *self, PyObject *args, PyObject *kwds)
{
    PyObject *src, *message;
    if (kwds != NULL && PyDict_GET_SIZE(kwds) != 0) {
        PyErr_SetString(PyExc_TypeError,
                        "on_message takes no keyword arguments");
        return NULL;
    }
    if (!PyArg_UnpackTuple(args, "on_message", 2, 2, &src, &message))
        return NULL;
    if (clientcore_invoke(self, src, message) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyMemberDef clientcore_members[] = {
    {"client", T_OBJECT_EX, offsetof(ClientCore, client), READONLY,
     "the QuorumRegisterClient this core aggregates replies for"},
    {"fallback", T_OBJECT_EX, offsetof(ClientCore, fallback), READONLY,
     "the unbound Python handler used when a hook forces fallback"},
    {NULL}
};

static PyTypeObject ClientCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._native._kernel.ClientCore",
    .tp_basicsize = sizeof(ClientCore),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "QuorumRegisterClient reply aggregation as a C callable: "
              "count replies against the pending quorum, complete the "
              "op, tear down retry/deadline handles.",
    .tp_new = clientcore_new,
    .tp_dealloc = (destructor)clientcore_dealloc,
    .tp_traverse = (traverseproc)clientcore_traverse,
    .tp_clear = (inquiry)clientcore_clear,
    .tp_call = (ternaryfunc)clientcore_call,
    .tp_members = clientcore_members,
};

/* Dispatch from the delivery trampoline (both cores, no tp_call). */
static int
protocolcore_invoke(PyObject *core, PyObject *src, PyObject *message)
{
    if (Py_TYPE(core) == &ServerCore_Type)
        return servercore_invoke((ServerCore *)core, src, message);
    return clientcore_invoke((ClientCore *)core, src, message);
}

/* ------------------------------------------------------------------ */
/* Module                                                              */
/* ------------------------------------------------------------------ */

static PyMethodDef kernel_methods[] = {
    {"quorum_sample", (PyCFunction)(void (*)(void))kernel_quorum_sample,
     METH_FASTCALL,
     "quorum_sample(rng, n, k) -> frozenset\n\n"
     "Generator.choice(n, size=k, replace=False) as a frozenset, drawn\n"
     "from the same bit stream numpy would consume (Floyd + descending\n"
     "Fisher-Yates, Lemire bounded draws).  Requires HAVE_FAST_RNG."},
    {NULL, NULL, 0, NULL}
};

static struct PyModuleDef kernelmodule = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._native._kernel",
    .m_doc = "Native simulation-kernel hot path (scheduler heap, "
             "scalar stats, delivery trampoline).",
    .m_size = -1,
    .m_methods = kernel_methods,
};

PyMODINIT_FUNC
PyInit__kernel(void)
{
    str_active = PyUnicode_InternFromString("active");
    str_can_deliver = PyUnicode_InternFromString("can_deliver");
    str_on_message = PyUnicode_InternFromString("on_message");
    str_record_drop = PyUnicode_InternFromString("record_drop");
    str_record_delivery = PyUnicode_InternFromString("record_delivery");
    str_record_send = PyUnicode_InternFromString("record_send");
    str_fault = PyUnicode_InternFromString("fault");
    str_loss = PyUnicode_InternFromString("loss");
    str_adversary = PyUnicode_InternFromString("adversary");
    str_drop_action = PyUnicode_InternFromString("drop");
    str_kind_attr = PyUnicode_InternFromString("kind");
    str_dunder_name = PyUnicode_InternFromString("__name__");
    str_sample = PyUnicode_InternFromString("sample");
    str_random = PyUnicode_InternFromString("random");
    str_intercept = PyUnicode_InternFromString("intercept");
    str_loss_rate = PyUnicode_InternFromString("loss_rate");
    str_taps_attr = PyUnicode_InternFromString("_taps");
    str_adversary_attr = PyUnicode_InternFromString("_adversary");
    str_loss_rng_attr = PyUnicode_InternFromString("_loss_rng");
    str_deliver_attr = PyUnicode_InternFromString("_deliver");
    str_delay_model = PyUnicode_InternFromString("delay_model");
    str_rng_attr = PyUnicode_InternFromString("rng");
    str_stats_attr = PyUnicode_InternFromString("stats");
    str_send_attr = PyUnicode_InternFromString("send");
    str_node_id = PyUnicode_InternFromString("node_id");
    str_network_attr = PyUnicode_InternFromString("network");
    str_seq_attr = PyUnicode_InternFromString("seq");
    str_writer_attr = PyUnicode_InternFromString("writer");
    str_cancel = PyUnicode_InternFromString("cancel");
    str_replies = PyUnicode_InternFromString("replies");
    str_quorum = PyUnicode_InternFromString("quorum");
    str_span = PyUnicode_InternFromString("span");
    str_is_read = PyUnicode_InternFromString("is_read");
    str_register_attr = PyUnicode_InternFromString("register");
    str_record = PyUnicode_InternFromString("record");
    str_future_attr = PyUnicode_InternFromString("future");
    str_respond = PyUnicode_InternFromString("respond");
    str_complete = PyUnicode_InternFromString("complete");
    str_resolve = PyUnicode_InternFromString("resolve");
    str_retry_handle = PyUnicode_InternFromString("retry_handle");
    str_deadline_handle = PyUnicode_InternFromString("deadline_handle");
    str_timestamp_attr = PyUnicode_InternFromString("timestamp");
    str_value_attr = PyUnicode_InternFromString("value");
    str_monotone = PyUnicode_InternFromString("monotone");
    str_cache_attr = PyUnicode_InternFromString("_cache");
    str_cache_hits = PyUnicode_InternFromString("cache_hits");
    str_monitor_on = PyUnicode_InternFromString("_monitor_on");
    str_latency_attr = PyUnicode_InternFromString("_latency");
    str_pending_attr = PyUnicode_InternFromString("_pending");
    str_server_index = PyUnicode_InternFromString("_server_index");
    str_replicas_attr = PyUnicode_InternFromString("_replicas");
    str_reads_served = PyUnicode_InternFromString("reads_served");
    str_writes_applied = PyUnicode_InternFromString("writes_applied");
    str_stale_updates = PyUnicode_InternFromString("stale_updates_ignored");
    str_ops_completed = PyUnicode_InternFromString("ops_completed");
    str_ops_under_failure =
        PyUnicode_InternFromString("ops_completed_under_failure");
    str_failures_attr = PyUnicode_InternFromString("failures");
    str_scheduler_attr = PyUnicode_InternFromString("scheduler");
    str_replica_method = PyUnicode_InternFromString("_replica");
    str_bit_generator = PyUnicode_InternFromString("bit_generator");
    str_capsule_attr = PyUnicode_InternFromString("capsule");
    str_mean_attr = PyUnicode_InternFromString("_mean");
    str_floor_attr = PyUnicode_InternFromString("_floor");
    str_cdelay_attr = PyUnicode_InternFromString("_delay");
    str_started_attr = PyUnicode_InternFromString("started");
    str_observe = PyUnicode_InternFromString("observe");
    str_read_kind = PyUnicode_InternFromString("read");
    str_write_kind = PyUnicode_InternFromString("write");
    str_broadcast_attr = PyUnicode_InternFromString("broadcast");
    py_one = PyLong_FromLong(1);
    if (str_active == NULL || str_can_deliver == NULL
        || str_on_message == NULL || str_record_drop == NULL
        || str_record_delivery == NULL || str_record_send == NULL
        || str_fault == NULL || str_loss == NULL || str_adversary == NULL
        || str_drop_action == NULL || str_kind_attr == NULL
        || str_dunder_name == NULL || str_sample == NULL
        || str_random == NULL || str_intercept == NULL
        || str_loss_rate == NULL || str_taps_attr == NULL
        || str_adversary_attr == NULL || str_loss_rng_attr == NULL
        || str_deliver_attr == NULL || str_delay_model == NULL
        || str_rng_attr == NULL || str_stats_attr == NULL
        || str_send_attr == NULL || str_node_id == NULL
        || str_network_attr == NULL || str_seq_attr == NULL
        || str_writer_attr == NULL || str_cancel == NULL
        || str_replies == NULL || str_quorum == NULL || str_span == NULL
        || str_is_read == NULL || str_register_attr == NULL
        || str_record == NULL || str_future_attr == NULL
        || str_respond == NULL || str_complete == NULL
        || str_resolve == NULL || str_retry_handle == NULL
        || str_deadline_handle == NULL || str_timestamp_attr == NULL
        || str_value_attr == NULL || str_monotone == NULL
        || str_cache_attr == NULL || str_cache_hits == NULL
        || str_monitor_on == NULL || str_latency_attr == NULL
        || str_pending_attr == NULL || str_server_index == NULL
        || str_replicas_attr == NULL || str_reads_served == NULL
        || str_writes_applied == NULL || str_stale_updates == NULL
        || str_ops_completed == NULL || str_ops_under_failure == NULL
        || str_failures_attr == NULL || str_scheduler_attr == NULL
        || str_replica_method == NULL || str_bit_generator == NULL
        || str_capsule_attr == NULL || str_mean_attr == NULL
        || str_floor_attr == NULL || str_cdelay_attr == NULL
        || str_started_attr == NULL || str_observe == NULL
        || str_read_kind == NULL || str_write_kind == NULL
        || str_broadcast_attr == NULL || py_one == NULL)
        return NULL;

    if (PyType_Ready(&StatsCore_Type) < 0
        || PyType_Ready(&DeliveryCore_Type) < 0
        || PyType_Ready(&KernelHandle_Type) < 0
        || PyType_Ready(&SchedulerCore_Type) < 0
        || PyType_Ready(&SendCore_Type) < 0
        || PyType_Ready(&BroadcastCore_Type) < 0
        || PyType_Ready(&ServerCore_Type) < 0
        || PyType_Ready(&ClientCore_Type) < 0)
        return NULL;

    PyObject *module = PyModule_Create(&kernelmodule);
    if (module == NULL)
        return NULL;

    Py_INCREF(&StatsCore_Type);
    if (PyModule_AddObject(module, "StatsCore",
                           (PyObject *)&StatsCore_Type) < 0)
        goto fail;
    Py_INCREF(&DeliveryCore_Type);
    if (PyModule_AddObject(module, "DeliveryCore",
                           (PyObject *)&DeliveryCore_Type) < 0)
        goto fail;
    Py_INCREF(&KernelHandle_Type);
    if (PyModule_AddObject(module, "EventHandle",
                           (PyObject *)&KernelHandle_Type) < 0)
        goto fail;
    Py_INCREF(&SchedulerCore_Type);
    if (PyModule_AddObject(module, "SchedulerCore",
                           (PyObject *)&SchedulerCore_Type) < 0)
        goto fail;
    Py_INCREF(&SendCore_Type);
    if (PyModule_AddObject(module, "SendCore",
                           (PyObject *)&SendCore_Type) < 0)
        goto fail;
    Py_INCREF(&BroadcastCore_Type);
    if (PyModule_AddObject(module, "BroadcastCore",
                           (PyObject *)&BroadcastCore_Type) < 0)
        goto fail;
    Py_INCREF(&ServerCore_Type);
    if (PyModule_AddObject(module, "ServerCore",
                           (PyObject *)&ServerCore_Type) < 0)
        goto fail;
    Py_INCREF(&ClientCore_Type);
    if (PyModule_AddObject(module, "ClientCore",
                           (PyObject *)&ClientCore_Type) < 0)
        goto fail;
    if (PyModule_AddIntConstant(module, "KERNEL_ABI", 2) < 0)
        goto fail;
#ifdef REPRO_HAVE_NPYRANDOM
    if (PyModule_AddIntConstant(module, "HAVE_FAST_RNG", 1) < 0)
        goto fail;
#else
    if (PyModule_AddIntConstant(module, "HAVE_FAST_RNG", 0) < 0)
        goto fail;
#endif
    return module;
fail:
    Py_DECREF(module);
    return NULL;
}
