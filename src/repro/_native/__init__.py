"""Optional compiled kernel backend (``REPRO_KERNEL=native``).

This package houses the C extension ``repro._native._kernel`` (the
event-heap scheduler core, scalar stats counters and the delivery
trampoline) plus its build glue and Python-side wrappers.  The extension
is **optional**: a missing compiler or an unbuilt checkout degrades
gracefully — :func:`load_kernel` returns ``None`` and the caller
(:mod:`repro.sim.kernel`) falls back to the pure-python reference kernel
with a one-line warning.

Build in place with ``python -m repro._native.build`` (or via
``pip install .``, whose ``setup.py`` marks the extension optional so a
toolchain-less box still installs cleanly).
"""

from typing import Optional

_kernel_module = None
_import_error: Optional[str] = None
_attempted = False


def load_kernel():
    """Import and return the compiled ``_kernel`` module, or ``None``.

    The import is attempted once per process; the failure reason (if
    any) is kept for diagnostics via :func:`import_error`.
    """
    global _kernel_module, _import_error, _attempted
    if not _attempted:
        _attempted = True
        try:
            from repro._native import _kernel

            _kernel_module = _kernel
        except ImportError as error:
            _import_error = str(error)
    return _kernel_module


def import_error() -> Optional[str]:
    """Why the native kernel failed to import (None when loaded/untried)."""
    load_kernel()
    return _import_error
