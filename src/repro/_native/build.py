"""Build the native kernel extension in place.

Usage::

    python -m repro._native.build            # compile into src/repro/_native/
    python -m repro._native.build --check    # exit 0 iff the extension imports

Compiles ``_kernelmodule.c`` with the active interpreter's configuration
(via ``sysconfig``) straight into this package directory, so a
``PYTHONPATH=src`` checkout picks it up without installing.  ``pip
install .`` builds the same extension through ``setup.py`` instead; this
module exists for source checkouts and CI.

A missing toolchain is not an error for the package as a whole — the
runtime falls back to the pure-python kernel — but this command reports
failure loudly so CI legs that *require* the native backend notice.
"""

import pathlib
import subprocess
import sys
import sysconfig

PACKAGE_DIR = pathlib.Path(__file__).resolve().parent
SOURCE = PACKAGE_DIR / "_kernelmodule.c"


def extension_path() -> pathlib.Path:
    """Where the compiled module lands (ABI-tagged, import-ready)."""
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return PACKAGE_DIR / f"_kernel{suffix}"


def compiler() -> str:
    """The C compiler to use: $CC, the interpreter's, or plain cc."""
    import os

    cc = os.environ.get("CC") or sysconfig.get_config_var("CC") or "cc"
    # sysconfig's CC can carry flags ("gcc -pthread"); keep the program.
    return cc.split()[0]


def npyrandom_flags() -> list:
    """Extra flags linking numpy's exported C random library, if present.

    numpy ships ``libnpyrandom.a`` (the Generator distributions —
    bounded Lemire draws, the ziggurat exponential) as a public static
    library precisely so extensions can draw from a Generator's bit
    stream in C.  When it and the headers are importable, the kernel is
    compiled with ``-DREPRO_HAVE_NPYRANDOM`` and gains the native RNG
    fast paths (``HAVE_FAST_RNG == 1``); otherwise the extension builds
    without them and samples delays through Python as before.
    """
    try:
        import numpy
        import numpy.random
    except ImportError:
        return []
    archive = (
        pathlib.Path(numpy.random.__path__[0]) / "lib" / "libnpyrandom.a"
    )
    if not archive.is_file():
        return []
    header = (
        pathlib.Path(numpy.get_include())
        / "numpy" / "random" / "distributions.h"
    )
    if not header.is_file():
        return []
    return [
        "-DREPRO_HAVE_NPYRANDOM",
        f"-I{numpy.get_include()}",
        str(archive),
        "-lm",
    ]


def build(verbose: bool = True) -> pathlib.Path:
    """Compile the extension in place; returns the built path.

    Raises ``subprocess.CalledProcessError`` when compilation fails and
    ``FileNotFoundError`` when no compiler is available.
    """
    target = extension_path()
    include = sysconfig.get_paths()["include"]
    command = [
        compiler(),
        "-O2",
        "-fPIC",
        "-shared",
        "-fno-strict-aliasing",
        f"-I{include}",
        str(SOURCE),
    ]
    # The archive must follow the source file so the linker resolves
    # the distribution symbols the object file references.
    command += npyrandom_flags()
    command += ["-o", str(target)]
    if verbose:
        print(" ".join(command))
    subprocess.run(command, check=True)
    return target


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--check" in argv:
        from repro._native import import_error, load_kernel

        module = load_kernel()
        if module is None:
            print(f"native kernel unavailable: {import_error()}",
                  file=sys.stderr)
            return 1
        print(f"native kernel OK (ABI {module.KERNEL_ABI})")
        return 0
    try:
        target = build()
    except (OSError, subprocess.CalledProcessError) as error:
        print(f"native kernel build FAILED: {error}", file=sys.stderr)
        return 1
    print(f"built {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
