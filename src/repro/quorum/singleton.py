"""Singleton quorum system: one coordinator server.

The degenerate strict system — every quorum is the same single server.
Load is 1 (every access hits the coordinator) and availability is 1 (one
crash takes the system down).  Useful as the extreme point in load and
availability comparisons, and as the trivially correct register baseline
in tests.
"""

from typing import FrozenSet, Iterator, Optional

import numpy as np

from repro.quorum.base import QuorumSystem, QuorumSystemError


class SingletonQuorumSystem(QuorumSystem):
    """All quorums equal {coordinator}."""

    def __init__(self, n: int, coordinator: int = 0) -> None:
        super().__init__(n)
        if not 0 <= coordinator < n:
            raise QuorumSystemError(
                f"coordinator {coordinator} out of range [0, {n})"
            )
        self.coordinator = coordinator
        self._quorum = frozenset([coordinator])

    def quorum(self, rng: np.random.Generator) -> FrozenSet[int]:
        return self._quorum

    @property
    def is_strict(self) -> bool:
        return True

    @property
    def quorum_size(self) -> int:
        return 1

    def enumerate_quorums(self) -> Optional[Iterator[FrozenSet[int]]]:
        return iter([self._quorum])

    def availability(self) -> int:
        return 1

    def is_available(self, alive: frozenset) -> bool:
        """The coordinator must be alive."""
        return self.coordinator in alive

    def analytic_load(self) -> float:
        return 1.0
