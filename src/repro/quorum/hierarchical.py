"""Hierarchical quorum consensus (Kumar, 1991).

Servers form a tree of groups: at the top level the universe splits into
g groups, a quorum needs a majority of groups, and within each chosen
group recursively a (sub)quorum.  With 3-way splits at every level the
quorum size is n^{log_3 2} ≈ n^0.63 — between majority's Θ(n) and the
grid/FPP Θ(√n) — with availability better than the grid's.

Included as an intermediate point on the Section 4 load/availability
spectrum.
"""

import math
from typing import FrozenSet, Iterator, List, Optional

import numpy as np

from repro.quorum.base import QuorumSystem, QuorumSystemError


class HierarchicalQuorumSystem(QuorumSystem):
    """Recursive majority-of-groups over n = branching^depth servers."""

    def __init__(self, depth: int, branching: int = 3) -> None:
        if depth < 1:
            raise QuorumSystemError(f"depth must be at least 1, got {depth}")
        if branching < 2:
            raise QuorumSystemError(
                f"branching must be at least 2, got {branching}"
            )
        self.depth = depth
        self.branching = branching
        super().__init__(branching ** depth)
        self._group_majority = branching // 2 + 1

    def _sample(
        self, rng: np.random.Generator, start: int, size: int
    ) -> FrozenSet[int]:
        """A quorum of the subtree covering servers [start, start + size)."""
        if size == 1:
            return frozenset([start])
        child_size = size // self.branching
        chosen = rng.choice(
            self.branching, size=self._group_majority, replace=False
        )
        members: FrozenSet[int] = frozenset()
        for child in chosen:
            members |= self._sample(
                rng, start + int(child) * child_size, child_size
            )
        return members

    def quorum(self, rng: np.random.Generator) -> FrozenSet[int]:
        return self._sample(rng, 0, self.n)

    def _enumerate(self, start: int, size: int) -> List[FrozenSet[int]]:
        if size == 1:
            return [frozenset([start])]
        child_size = size // self.branching
        import itertools

        quorums: List[FrozenSet[int]] = []
        for combo in itertools.combinations(
            range(self.branching), self._group_majority
        ):
            child_lists = [
                self._enumerate(start + child * child_size, child_size)
                for child in combo
            ]
            for parts in itertools.product(*child_lists):
                merged: FrozenSet[int] = frozenset()
                for part in parts:
                    merged |= part
                quorums.append(merged)
        return quorums

    def enumerate_quorums(self) -> Optional[Iterator[FrozenSet[int]]]:
        if self.n > 81:
            return None
        return iter(self._enumerate(0, self.n))

    @property
    def is_strict(self) -> bool:
        # Majorities of groups intersect in a group; recursively the
        # sub-quorums of that group intersect.
        return True

    @property
    def quorum_size(self) -> int:
        return self._group_majority ** self.depth

    def availability(self) -> int:
        """Killing the system needs, recursively, enough crashes to kill
        ⌈b/2⌉ of the b child systems (leaving fewer than a majority):
        A(d) = (b - majority + 1) · A(d-1) with A(0) = 1."""
        per_level = self.branching - self._group_majority + 1
        return per_level ** self.depth

    def analytic_load(self) -> float:
        """Each child group is chosen with probability majority/branching
        at every level, so a server is hit with (maj/b)^depth."""
        return (self._group_majority / self.branching) ** self.depth

    def is_available(self, alive: frozenset) -> bool:
        """Recursive: a subtree is available iff a majority of its child
        groups are; a leaf iff the server is alive."""

        def available(start: int, size: int) -> bool:
            if size == 1:
                return start in alive
            child_size = size // self.branching
            live_children = sum(
                1
                for child in range(self.branching)
                if available(start + child * child_size, child_size)
            )
            return live_children >= self._group_majority

        return available(0, self.n)

    def __repr__(self) -> str:
        return (
            f"HierarchicalQuorumSystem(depth={self.depth}, "
            f"branching={self.branching}, n={self.n})"
        )


class WheelQuorumSystem(QuorumSystem):
    """The wheel system: a hub plus spokes.

    Quorums are either {hub, spoke_i} (for any spoke i) or the full rim
    (all spokes).  Any two quorums intersect: two hub quorums share the
    hub; a hub quorum and the rim share the spoke; the rim shares itself.
    Load can be pushed to ~1/2 on the hub with tiny quorums of size 2,
    and availability is 2 (crash the hub and one spoke... crash the hub
    and any spoke kills all {hub, s} quorums and the rim respectively).

    The classic example showing that *tiny* strict quorums exist at the
    price of terrible fault tolerance — another Section 4 data point.
    """

    def __init__(self, n: int, rim_probability: float = 0.1) -> None:
        if n < 3:
            raise QuorumSystemError(f"a wheel needs at least 3 servers, got {n}")
        if not 0.0 <= rim_probability < 1.0:
            raise QuorumSystemError(
                f"rim probability must be in [0, 1), got {rim_probability}"
            )
        super().__init__(n)
        self.hub = 0
        self.rim_probability = rim_probability
        self._rim = frozenset(range(1, n))

    def quorum(self, rng: np.random.Generator) -> FrozenSet[int]:
        if rng.random() < self.rim_probability:
            return self._rim
        spoke = 1 + int(rng.integers(self.n - 1))
        return frozenset([self.hub, spoke])

    def enumerate_quorums(self) -> Optional[Iterator[FrozenSet[int]]]:
        spokes = [frozenset([self.hub, s]) for s in range(1, self.n)]
        return iter(spokes + [self._rim])

    @property
    def is_strict(self) -> bool:
        return True

    @property
    def quorum_size(self) -> int:
        return 2

    def availability(self) -> int:
        """Crashing the hub and any one spoke kills every quorum."""
        return 2

    def analytic_load(self) -> float:
        """The hub is on every non-rim quorum."""
        return 1.0 - self.rim_probability

    def is_available(self, alive: frozenset) -> bool:
        """Hub plus any spoke, or the full rim."""
        if self.hub in alive and any(s in alive for s in self._rim):
            return True
        return self._rim <= alive

    def __repr__(self) -> str:
        return f"WheelQuorumSystem(n={self.n})"
