"""Finite-projective-plane quorum system (Maekawa, 1985).

In the projective plane PG(2, q) over GF(q), q prime, there are
n = q² + q + 1 points and equally many lines; every line has q + 1 points
and *any two lines meet in exactly one point*.  Taking lines as quorums
gives a strict system with quorum size q + 1 ≈ √n and load ≈ 1/√n — the
other optimal-load strict construction cited in Section 6.4.  Availability
is only q + 1: crashing all points of one line hits every other line.
"""

import math
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

import numpy as np

from repro.quorum.base import QuorumSystem, QuorumSystemError


def is_prime(value: int) -> bool:
    """Primality by trial division (orders of interest are tiny)."""
    if value < 2:
        return False
    if value < 4:
        return True
    if value % 2 == 0:
        return False
    for divisor in range(3, int(math.isqrt(value)) + 1, 2):
        if value % divisor == 0:
            return False
    return True


def _normalize(point: Tuple[int, int, int], q: int) -> Tuple[int, int, int]:
    """Scale a homogeneous triple so its first nonzero coordinate is 1."""
    for coord in point:
        if coord % q != 0:
            inverse = pow(coord, q - 2, q)
            return tuple((c * inverse) % q for c in point)
    raise ValueError("the zero triple is not a projective point")


class FppQuorumSystem(QuorumSystem):
    """Lines of PG(2, q) as quorums over n = q² + q + 1 servers."""

    def __init__(self, order: int) -> None:
        if not is_prime(order):
            raise QuorumSystemError(
                f"projective plane order must be prime here, got {order}"
            )
        self.order = order
        q = order
        super().__init__(q * q + q + 1)
        points = self._projective_points(q)
        self._point_index: Dict[Tuple[int, int, int], int] = {
            point: idx for idx, point in enumerate(points)
        }
        # Lines are also normalized triples; point P lies on line L iff
        # P·L ≡ 0 (mod q).
        self._lines: List[FrozenSet[int]] = []
        for line in points:  # lines are in bijection with points (duality)
            members = frozenset(
                idx
                for point, idx in self._point_index.items()
                if sum(a * b for a, b in zip(point, line)) % q == 0
            )
            self._lines.append(members)
        self._validate_plane()

    @staticmethod
    def _projective_points(q: int) -> List[Tuple[int, int, int]]:
        points = set()
        for x in range(q):
            for y in range(q):
                for z in range(q):
                    if x == y == z == 0:
                        continue
                    points.add(_normalize((x, y, z), q))
        return sorted(points)

    def _validate_plane(self) -> None:
        expected = self.order + 1
        for line in self._lines:
            if len(line) != expected:
                raise QuorumSystemError(
                    f"PG(2,{self.order}) construction broken: line of size "
                    f"{len(line)}, expected {expected}"
                )

    @classmethod
    def largest_order_for(cls, max_servers: int) -> Optional[int]:
        """The largest prime q with q²+q+1 <= max_servers, if any."""
        best = None
        q = 2
        while q * q + q + 1 <= max_servers:
            if is_prime(q):
                best = q
            q += 1
        return best

    def quorum(self, rng: np.random.Generator) -> FrozenSet[int]:
        return self._lines[int(rng.integers(len(self._lines)))]

    @property
    def is_strict(self) -> bool:
        return True

    @property
    def quorum_size(self) -> int:
        return self.order + 1

    def enumerate_quorums(self) -> Optional[Iterator[FrozenSet[int]]]:
        return iter(self._lines)

    def availability(self) -> int:
        """q + 1: crash every point of one line; each other line meets it."""
        return self.order + 1

    def is_available(self, alive: frozenset) -> bool:
        """Some line must be fully alive."""
        return any(line <= alive for line in self._lines)

    def analytic_load(self) -> float:
        """Each point lies on q+1 of the q²+q+1 lines, so uniform line
        choice hits each server with probability (q+1)/n ≈ 1/√n."""
        return (self.order + 1) / self.n

    def __repr__(self) -> str:
        return f"FppQuorumSystem(order={self.order}, n={self.n})"
