"""Quorum system base class."""

from typing import FrozenSet, Iterator, Optional

import numpy as np


class QuorumSystemError(ValueError):
    """Raised for invalid quorum-system parameters."""


class QuorumSystem:
    """A collection of quorums over the universe ``{0, ..., n-1}``.

    Subclasses implement :meth:`read_quorum` and :meth:`write_quorum`
    (symmetric systems implement just :meth:`quorum`).  Sampling takes an
    explicit RNG so quorum choice is attributable to a named random stream.
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise QuorumSystemError(f"need at least one server, got n={n}")
        self.n = n

    # -- sampling ------------------------------------------------------ #

    def quorum(self, rng: np.random.Generator) -> FrozenSet[int]:
        """Sample one quorum (symmetric systems)."""
        raise NotImplementedError

    def read_quorum(self, rng: np.random.Generator) -> FrozenSet[int]:
        """Sample a quorum for a read.  Defaults to :meth:`quorum`."""
        return self.quorum(rng)

    def write_quorum(self, rng: np.random.Generator) -> FrozenSet[int]:
        """Sample a quorum for a write.  Defaults to :meth:`quorum`."""
        return self.quorum(rng)

    # -- structure ------------------------------------------------------ #

    @property
    def is_strict(self) -> bool:
        """True when every read quorum intersects every write quorum."""
        raise NotImplementedError

    @property
    def quorum_size(self) -> int:
        """Size of the (smallest) quorum; used in complexity formulas."""
        raise NotImplementedError

    def enumerate_quorums(self) -> Optional[Iterator[FrozenSet[int]]]:
        """Enumerate all quorums, or None when infeasible.

        Used by brute-force availability cross-checks in the tests; systems
        with astronomically many quorums (probabilistic, majority at large
        n) return None.
        """
        return None

    # -- analytic properties -------------------------------------------- #

    def availability(self) -> int:
        """Minimum number of server crashes that disables every quorum.

        This is the paper's Section 4 notion (due to Peleg and Wool): the
        size of a minimum "hitting set" of crashes.  Subclasses return the
        known analytic value.
        """
        raise NotImplementedError

    def analytic_load(self) -> float:
        """The load (access probability of the busiest server) under the
        system's natural sampling strategy."""
        raise NotImplementedError

    def is_available(self, alive: frozenset) -> Optional[bool]:
        """Whether some quorum is fully contained in ``alive``.

        Returns None when the system has no efficient structural test;
        callers then fall back to enumeration or sampling.
        """
        return None

    def validate_quorum(self, quorum: FrozenSet[int]) -> None:
        """Raise if ``quorum`` is not a subset of the universe."""
        if not quorum:
            raise QuorumSystemError("empty quorum")
        # min/max are two C-level scans — cheaper than a generator-frame
        # all() per member, and this runs once per operation attempt.
        if min(quorum) < 0 or max(quorum) >= self.n:
            raise QuorumSystemError(
                f"quorum {sorted(quorum)} escapes universe of size {self.n}"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.n})"
