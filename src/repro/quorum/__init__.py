"""Quorum systems.

A quorum system over a universe of ``n`` replica servers is a collection of
subsets (quorums).  *Strict* systems guarantee pairwise intersection;
the *probabilistic* system of Malkhi, Reiter and Wright draws uniform random
k-subsets, which intersect only with high probability.

Implemented systems:

* :class:`ProbabilisticQuorumSystem` — uniform random k-subsets [19].
* :class:`MajorityQuorumSystem` — all ⌊n/2⌋+1-subsets; Ω(n) availability.
* :class:`GridQuorumSystem` — row ∪ column on a √n×√n grid (Cheung et al.).
* :class:`FppQuorumSystem` — lines of a finite projective plane (Maekawa).
* :class:`TreeQuorumSystem` — recursive tree quorums (Agrawal–El Abbadi).
* :class:`SingletonQuorumSystem` — a single coordinator.
* :class:`VotingQuorumSystem` — asymmetric read/write thresholds (Gifford).

:mod:`repro.quorum.analysis` computes load, availability and intersection
probability, analytically where known and by Monte Carlo otherwise.
"""

from repro.quorum.base import QuorumSystem, QuorumSystemError
from repro.quorum.probabilistic import ProbabilisticQuorumSystem
from repro.quorum.majority import MajorityQuorumSystem
from repro.quorum.grid import GridQuorumSystem
from repro.quorum.fpp import FppQuorumSystem, is_prime
from repro.quorum.tree import TreeQuorumSystem
from repro.quorum.singleton import SingletonQuorumSystem
from repro.quorum.voting import VotingQuorumSystem
from repro.quorum import analysis

__all__ = [
    "FppQuorumSystem",
    "GridQuorumSystem",
    "MajorityQuorumSystem",
    "ProbabilisticQuorumSystem",
    "QuorumSystem",
    "QuorumSystemError",
    "SingletonQuorumSystem",
    "TreeQuorumSystem",
    "VotingQuorumSystem",
    "analysis",
    "is_prime",
]
