"""Load, availability and intersection analysis of quorum systems.

Implements the quantities the paper compares in Section 4:

* **load** — the access probability of the busiest server under the
  system's sampling strategy (Naor–Wool).  We report both the analytic
  value (where a closed form is known) and a Monte Carlo estimate.
* **availability** — the minimum number of server crashes that disables
  every quorum (Peleg–Wool).  Analytic per system; a brute-force minimum
  hitting set cross-checks small systems.
* **intersection probability** — the probability two independently sampled
  quorums intersect; 1 for strict systems, 1 − C(n−k,k)/C(n,k) for the
  probabilistic system.
"""

import itertools
import math
from collections import Counter
from typing import Dict, List, Optional

import numpy as np

from repro.quorum.base import QuorumSystem


def empirical_load(
    system: QuorumSystem,
    rng: np.random.Generator,
    trials: int = 2000,
    read_fraction: float = 1.0,
) -> float:
    """Monte Carlo estimate of the busiest server's access probability.

    Samples ``trials`` accesses (reads with probability ``read_fraction``,
    writes otherwise) and returns max over servers of the fraction of
    accesses that touched the server.
    """
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    hits: Counter = Counter()
    for _ in range(trials):
        if rng.random() < read_fraction:
            quorum = system.read_quorum(rng)
        else:
            quorum = system.write_quorum(rng)
        for member in quorum:
            hits[member] += 1
    if not hits:
        return 0.0
    return max(hits.values()) / trials


def empirical_intersection_probability(
    system: QuorumSystem, rng: np.random.Generator, trials: int = 2000
) -> float:
    """Monte Carlo estimate of Pr[read quorum ∩ write quorum ≠ ∅]."""
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    intersecting = 0
    for _ in range(trials):
        read_q = system.read_quorum(rng)
        write_q = system.write_quorum(rng)
        if read_q & write_q:
            intersecting += 1
    return intersecting / trials


def brute_force_availability(system: QuorumSystem, max_size: int = 8) -> Optional[int]:
    """Exact minimum hitting-set size by exhaustive search.

    Returns None when the system cannot enumerate its quorums or when no
    hitting set of size <= max_size exists within the search budget.
    Intended for validating the analytic ``availability()`` methods on
    small instances.
    """
    quorum_iter = system.enumerate_quorums()
    if quorum_iter is None:
        return None
    quorums: List[frozenset] = list(quorum_iter)
    if not quorums:
        return None
    universe = sorted(set().union(*quorums))
    for size in range(1, min(max_size, len(universe)) + 1):
        for crash_set in itertools.combinations(universe, size):
            crashed = set(crash_set)
            if all(quorum & crashed for quorum in quorums):
                return size
    return None


def failure_probability(
    system: QuorumSystem,
    per_server_crash_probability: float,
    rng: np.random.Generator,
    trials: int = 2000,
) -> float:
    """Estimate Pr[every quorum is disabled] under i.i.d. server crashes.

    This is the Peleg–Wool failure probability F_p; a high-availability
    system keeps it near 0 for crash probabilities below 1/2.  For the
    probabilistic system a quorum is "available" when at least k servers
    survive (a fresh quorum can then be drawn from the survivors).
    """
    if not 0.0 <= per_server_crash_probability <= 1.0:
        raise ValueError(
            f"crash probability must be in [0,1], got {per_server_crash_probability}"
        )
    quorums = None
    use_structural = (
        system.is_available(frozenset(range(system.n))) is not None
    )
    if not use_structural:
        quorum_iter = system.enumerate_quorums()
        quorums = list(quorum_iter) if quorum_iter is not None else None
        if quorums is None and system.is_strict:
            # Last resort: approximate the quorum collection by a sample
            # (an upper estimate of the failure probability, since a live
            # quorum outside the sample is missed).
            quorums = list({system.quorum(rng) for _ in range(500)})
    failures = 0
    for _ in range(trials):
        alive = rng.random(system.n) >= per_server_crash_probability
        alive_set = frozenset(i for i in range(system.n) if alive[i])
        if use_structural:
            dead = not system.is_available(alive_set)
        elif quorums is not None:
            # Strict system: dead iff every quorum lost a member.
            dead = all(not quorum <= alive_set for quorum in quorums)
        else:
            # Threshold fallback: functions iff quorum_size servers are up.
            dead = len(alive_set) < system.quorum_size
        if dead:
            failures += 1
    return failures / trials


def intersection_size_pmf(n: int, k: int) -> Dict[int, float]:
    """Distribution of |Q1 ∩ Q2| for two independent uniform k-subsets.

    Hypergeometric: P(|Q1 ∩ Q2| = i) = C(k,i)·C(n-k,k-i) / C(n,k).
    """
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    total = math.comb(n, k)
    pmf = {}
    for i in range(max(0, 2 * k - n), k + 1):
        pmf[i] = math.comb(k, i) * math.comb(n - k, k - i) / total
    return pmf


def masking_intersection_probability(n: int, k: int, byzantine_bound: int) -> float:
    """Pr[|read quorum ∩ write quorum| >= 2b + 1] for uniform k-subsets.

    This is the freshness condition for *masking* quorums (Malkhi-Reiter-
    Wright): with at most b Byzantine servers, a reader accepting only
    (b+1)-vouched values obtains the latest honest write whenever its
    quorum shares at least 2b+1 servers with the write's quorum (b may be
    faulty, leaving b+1 honest vouchers).  Choosing k = c·√n with c
    large enough makes this probability approach 1.
    """
    if byzantine_bound < 0:
        raise ValueError(
            f"byzantine bound must be non-negative, got {byzantine_bound}"
        )
    threshold = 2 * byzantine_bound + 1
    pmf = intersection_size_pmf(n, k)
    return sum(p for size, p in pmf.items() if size >= threshold)


def minimum_masking_quorum_size(
    n: int, byzantine_bound: int, target_probability: float = 0.99
) -> Optional[int]:
    """The smallest k whose masking intersection probability meets the
    target, or None when even k = n falls short."""
    if not 0.0 < target_probability <= 1.0:
        raise ValueError(
            f"target probability must be in (0, 1], got {target_probability}"
        )
    for k in range(1, n + 1):
        if masking_intersection_probability(n, k, byzantine_bound) >= target_probability:
            return k
    return None


def load_availability_table(
    systems: Dict[str, QuorumSystem],
    rng: np.random.Generator,
    trials: int = 2000,
) -> List[Dict[str, object]]:
    """Summary rows for the E-LOADAVAIL experiment: one per system."""
    rows = []
    for name, system in sorted(systems.items()):
        rows.append(
            {
                "system": name,
                "n": system.n,
                "quorum_size": system.quorum_size,
                "strict": system.is_strict,
                "analytic_load": system.analytic_load(),
                "empirical_load": empirical_load(system, rng, trials),
                "availability": system.availability(),
            }
        )
    return rows
