"""Grid quorum system (Cheung, Ammar and Ahamad, 1990).

Servers are arranged in an r×c grid; a quorum is one full row together with
one full column.  Any two quorums intersect (each one's row crosses the
other's column), quorum size is r + c - 1 = Θ(√n) for a square grid —
giving the optimal-load strict system the paper cites in Section 6.4 —
but availability is only O(√n): killing one server per row disables every
row and hence every quorum.
"""

import math
from typing import FrozenSet, Iterator, Optional, Tuple

import numpy as np

from repro.quorum.base import QuorumSystem, QuorumSystemError


class GridQuorumSystem(QuorumSystem):
    """Row-plus-column quorums on an r×c grid of n = r·c servers."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise QuorumSystemError(f"grid must be at least 1x1, got {rows}x{cols}")
        super().__init__(rows * cols)
        self.rows = rows
        self.cols = cols

    @classmethod
    def square(cls, n: int) -> "GridQuorumSystem":
        """Build the most-square grid whose area is exactly n."""
        side = int(math.isqrt(n))
        for rows in range(side, 0, -1):
            if n % rows == 0:
                return cls(rows, n // rows)
        return cls(1, n)

    def _server(self, row: int, col: int) -> int:
        return row * self.cols + col

    def row_members(self, row: int) -> FrozenSet[int]:
        """All servers in ``row``."""
        return frozenset(self._server(row, c) for c in range(self.cols))

    def col_members(self, col: int) -> FrozenSet[int]:
        """All servers in ``col``."""
        return frozenset(self._server(r, col) for r in range(self.rows))

    def quorum_for(self, row: int, col: int) -> FrozenSet[int]:
        """The quorum made of ``row`` plus ``col``."""
        return self.row_members(row) | self.col_members(col)

    def quorum(self, rng: np.random.Generator) -> FrozenSet[int]:
        row = int(rng.integers(self.rows))
        col = int(rng.integers(self.cols))
        return self.quorum_for(row, col)

    @property
    def is_strict(self) -> bool:
        return True

    @property
    def quorum_size(self) -> int:
        return self.rows + self.cols - 1

    def enumerate_quorums(self) -> Optional[Iterator[FrozenSet[int]]]:
        return (
            self.quorum_for(row, col)
            for row in range(self.rows)
            for col in range(self.cols)
        )

    def availability(self) -> int:
        """min(rows, cols) crashes (one per row, or one per column).

        One crash per row kills every row; since every quorum contains a
        full row, all quorums die.  Symmetrically for columns.  No smaller
        set works: with fewer than min(rows, cols) crashes some row r and
        some column c are untouched, and quorum (r, c) survives.
        """
        return min(self.rows, self.cols)

    def is_available(self, alive: frozenset) -> bool:
        """A quorum survives iff some full row and some full column do."""
        row_alive = any(
            self.row_members(row) <= alive for row in range(self.rows)
        )
        col_alive = any(
            self.col_members(col) <= alive for col in range(self.cols)
        )
        return row_alive and col_alive

    def analytic_load(self) -> float:
        """Uniform (row, col) choice hits each server with probability
        1/rows + 1/cols - 1/(rows·cols) — about 2/√n on a square grid."""
        return 1.0 / self.rows + 1.0 / self.cols - 1.0 / (self.rows * self.cols)

    def coordinates(self, server: int) -> Tuple[int, int]:
        """Inverse of the server numbering: (row, col) of a server id."""
        if not 0 <= server < self.n:
            raise QuorumSystemError(f"server {server} out of range [0, {self.n})")
        return divmod(server, self.cols)

    def __repr__(self) -> str:
        return f"GridQuorumSystem({self.rows}x{self.cols})"
