"""Asymmetric read/write threshold quorums (Gifford's weighted voting,
with unit weights).

Read quorums are any r-subsets and write quorums any w-subsets with
r + w > n (every read quorum meets every write quorum) and 2w > n (any two
write quorums meet, so writes are totally ordered).  Skewing r small and w
large trades read cost against write cost — a useful strict baseline for
read-heavy iterative workloads, where Alg. 1 performs m reads per write.
"""

from typing import FrozenSet

import numpy as np

from repro.quorum.base import QuorumSystem, QuorumSystemError


class VotingQuorumSystem(QuorumSystem):
    """Threshold read/write quorums: |read| = r, |write| = w, r+w > n, 2w > n."""

    def __init__(self, n: int, read_size: int, write_size: int) -> None:
        super().__init__(n)
        if not 1 <= read_size <= n or not 1 <= write_size <= n:
            raise QuorumSystemError(
                f"quorum sizes must be in [1, {n}], got r={read_size}, w={write_size}"
            )
        if read_size + write_size <= n:
            raise QuorumSystemError(
                f"need r + w > n for read/write intersection, got "
                f"{read_size}+{write_size} <= {n}"
            )
        if 2 * write_size <= n:
            raise QuorumSystemError(
                f"need 2w > n for write/write intersection, got 2*{write_size} <= {n}"
            )
        self.read_size = read_size
        self.write_size = write_size

    def _sample(self, rng: np.random.Generator, size: int) -> FrozenSet[int]:
        members = rng.choice(self.n, size=size, replace=False)
        return frozenset(int(m) for m in members)

    def quorum(self, rng: np.random.Generator) -> FrozenSet[int]:
        return self.read_quorum(rng)

    def read_quorum(self, rng: np.random.Generator) -> FrozenSet[int]:
        return self._sample(rng, self.read_size)

    def write_quorum(self, rng: np.random.Generator) -> FrozenSet[int]:
        return self._sample(rng, self.write_size)

    @property
    def is_strict(self) -> bool:
        return True

    @property
    def quorum_size(self) -> int:
        return min(self.read_size, self.write_size)

    def availability(self) -> int:
        """The system dies when either reads or writes become impossible:
        n - max(r, w) + 1 crashes suffice (and are needed)."""
        return self.n - max(self.read_size, self.write_size) + 1

    def is_available(self, alive: frozenset) -> bool:
        """Reads and writes both possible: max(r, w) servers alive."""
        return len(alive) >= max(self.read_size, self.write_size)

    def analytic_load(self) -> float:
        """Assuming an equal mix of reads and writes, each server is hit
        with probability (r/n + w/n)/2; reads dominate Alg. 1's traffic so
        this is an upper estimate for that workload."""
        return (self.read_size + self.write_size) / (2.0 * self.n)

    def __repr__(self) -> str:
        return (
            f"VotingQuorumSystem(n={self.n}, r={self.read_size}, "
            f"w={self.write_size})"
        )
