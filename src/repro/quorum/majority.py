"""Majority quorum system.

Quorums are all subsets of size ⌊n/2⌋+1.  Any two majorities intersect, and
availability is the best possible for a strict system: ⌈n/2⌉ crashes are
needed to disable every quorum.  The price is load ≈ 1/2 (Section 4).
"""

import itertools
import math
from typing import FrozenSet, Iterator, Optional

import numpy as np

from repro.quorum.base import QuorumSystem


class MajorityQuorumSystem(QuorumSystem):
    """All (⌊n/2⌋+1)-subsets of n servers."""

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self.k = n // 2 + 1

    def quorum(self, rng: np.random.Generator) -> FrozenSet[int]:
        members = rng.choice(self.n, size=self.k, replace=False)
        return frozenset(int(m) for m in members)

    @property
    def is_strict(self) -> bool:
        return True

    @property
    def quorum_size(self) -> int:
        return self.k

    def enumerate_quorums(self) -> Optional[Iterator[FrozenSet[int]]]:
        if math.comb(self.n, self.k) > 200_000:
            return None
        return (
            frozenset(combo) for combo in itertools.combinations(range(self.n), self.k)
        )

    def availability(self) -> int:
        """⌈n/2⌉ crashes leave fewer than ⌊n/2⌋+1 servers alive."""
        return self.n - self.k + 1

    def is_available(self, alive: frozenset) -> bool:
        """Some majority is fully alive iff a majority of servers is."""
        return len(alive) >= self.k

    def analytic_load(self) -> float:
        """Uniform sampling hits each server with probability k/n ≈ 1/2."""
        return self.k / self.n
