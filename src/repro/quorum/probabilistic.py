"""The probabilistic quorum system of Malkhi, Reiter and Wright.

Each access chooses a uniform random k-subset of the n servers.  Two
independently chosen quorums fail to intersect with probability
``C(n-k, k) / C(n, k)``, which Proposition 3.2 of [19] bounds above by
``((n-k)/n)^k``; choosing ``k = c·√n`` makes non-intersection at most
``e^{-c²}``, independent of n.
"""

import math
from typing import FrozenSet

import numpy as np

from repro.quorum.base import QuorumSystem, QuorumSystemError


class ProbabilisticQuorumSystem(QuorumSystem):
    """Uniform random k-subsets of n servers."""

    # Native k-of-n sampler (repro._native quorum_sample), installed by
    # the deployment when the native kernel has fast-RNG support.  It
    # draws from the Generator's own bit stream with numpy's exact
    # choice(replace=False) algorithm, so switching it in or out never
    # changes a single draw — it is a class attribute (one flag for all
    # systems) because its output is backend-independent by contract.
    _native_sampler = None

    def __init__(self, n: int, k: int) -> None:
        super().__init__(n)
        if not 1 <= k <= n:
            raise QuorumSystemError(f"quorum size k={k} must be in [1, {n}]")
        self.k = k

    def quorum(self, rng: np.random.Generator) -> FrozenSet[int]:
        sampler = self._native_sampler
        if sampler is not None and self.k <= 4096:
            # Duplicate rejection in the C sampler is a linear scan —
            # ideal at the paper's k = Θ(√n), quadratic at huge k, hence
            # the cap (far above any configuration the experiments use).
            return sampler(rng, self.n, self.k)
        members = rng.choice(self.n, size=self.k, replace=False)
        # tolist() yields plain Python ints in one C call (a per-member
        # int() loop costs more than the draw itself at small k).
        return frozenset(members.tolist())

    @property
    def is_strict(self) -> bool:
        # All k-subsets pairwise intersect exactly when 2k > n.
        return 2 * self.k > self.n

    @property
    def quorum_size(self) -> int:
        return self.k

    def non_intersection_probability(self) -> float:
        """Exact Pr[two independent quorums are disjoint] = C(n-k,k)/C(n,k)."""
        if 2 * self.k > self.n:
            return 0.0
        return math.comb(self.n - self.k, self.k) / math.comb(self.n, self.k)

    def intersection_probability(self) -> float:
        """Exact Pr[two independent quorums intersect]."""
        return 1.0 - self.non_intersection_probability()

    def non_intersection_upper_bound(self) -> float:
        """Proposition 3.2 of [19]: C(n-k,k)/C(n,k) <= ((n-k)/n)^k."""
        return ((self.n - self.k) / self.n) ** self.k

    def availability(self) -> int:
        """Quorums are drawn from live servers, so the system functions as
        long as k servers are up: n - k + 1 crashes are needed — Θ(n) for
        k = Θ(√n), the headline availability result of [19]."""
        return self.n - self.k + 1

    def analytic_load(self) -> float:
        """Under uniform sampling each server is hit with probability k/n."""
        return self.k / self.n

    def is_available(self, alive: frozenset) -> bool:
        """Quorums are drawn from live servers: k of them must be up."""
        return len(alive) >= self.k

    @staticmethod
    def optimal_k(n: int, c: float = 1.0) -> int:
        """The paper's recommended quorum size k = ⌈c·√n⌉ (capped at n)."""
        if n < 1:
            raise QuorumSystemError(f"need n >= 1, got {n}")
        return min(n, max(1, math.ceil(c * math.sqrt(n))))

    def __repr__(self) -> str:
        return f"ProbabilisticQuorumSystem(n={self.n}, k={self.k})"
