"""Tree quorum system (Agrawal and El Abbadi, 1991).

Servers are the nodes of a complete binary tree.  A quorum for a subtree is
defined recursively: either the root together with a quorum of one child's
subtree, or quorums of *both* children's subtrees (used when the root is
avoided).  Any two quorums intersect; quorum sizes range from O(log n)
(a root-to-leaf path, when all choices take the root) to O(n).

Included as an additional strict baseline: it illustrates a different point
on the load/availability trade-off than majority, grid and FPP.
"""

from typing import FrozenSet, Iterator, List, Optional

import numpy as np

from repro.quorum.base import QuorumSystem, QuorumSystemError


class TreeQuorumSystem(QuorumSystem):
    """Recursive quorums over a complete binary tree of n = 2^d - 1 nodes."""

    def __init__(self, n: int, descend_probability: float = 0.75) -> None:
        if n < 1 or (n & (n + 1)) != 0:
            raise QuorumSystemError(
                f"tree quorum system needs n = 2^d - 1 nodes, got {n}"
            )
        if not 0.0 < descend_probability <= 1.0:
            raise QuorumSystemError(
                f"descend probability must be in (0, 1], got {descend_probability}"
            )
        super().__init__(n)
        self.descend_probability = descend_probability

    # Nodes are heap-indexed: root 0, children of v are 2v+1 and 2v+2.

    def _children(self, node: int) -> Optional[List[int]]:
        left, right = 2 * node + 1, 2 * node + 2
        if left >= self.n:
            return None
        return [left, right]

    def _sample(self, node: int, rng: np.random.Generator) -> FrozenSet[int]:
        children = self._children(node)
        if children is None:
            return frozenset([node])
        use_root = rng.random() < self.descend_probability
        if use_root:
            child = children[int(rng.integers(2))]
            return frozenset([node]) | self._sample(child, rng)
        return self._sample(children[0], rng) | self._sample(children[1], rng)

    def quorum(self, rng: np.random.Generator) -> FrozenSet[int]:
        return self._sample(0, rng)

    def _enumerate(self, node: int) -> List[FrozenSet[int]]:
        children = self._children(node)
        if children is None:
            return [frozenset([node])]
        left = self._enumerate(children[0])
        right = self._enumerate(children[1])
        quorums = [frozenset([node]) | q for q in left]
        quorums += [frozenset([node]) | q for q in right]
        quorums += [lq | rq for lq in left for rq in right]
        return quorums

    def enumerate_quorums(self) -> Optional[Iterator[FrozenSet[int]]]:
        # The quorum count satisfies C(d) = (C(d-1) + 1)^2 - 1, so depth 6
        # (n = 63) already has ~4.3 billion quorums; stop at depth 5.
        if self.n > 31:
            return None
        return iter(self._enumerate(0))

    @property
    def is_strict(self) -> bool:
        return True

    @property
    def quorum_size(self) -> int:
        # The smallest quorum is a root-to-leaf path of length d = log2(n+1).
        return (self.n + 1).bit_length() - 1

    def availability(self) -> int:
        """The minimum hitting set of the tree quorums.

        For a complete binary tree of depth d the cheapest kill is a
        root-to-leaf path — crash the root and then, recursively, one
        child's subtree quorums must also be killed on *both* sides... in
        fact killing the root forces killing both children's systems, so
        A(d) = 1 + ... ; the standard result is that availability equals
        the depth-d value A(d) = min over strategies, computed recursively
        here: A(leaf) = 1; A(node) = min(1 + A(child killing both), ...).

        A quorum either contains the root or is a pair of child quorums.
        Killing everything means: (kill root AND kill one child system is
        not enough — the other child pair survives)... precisely:
        hitting set H hits all quorums iff
        (root in H and (H hits left or H hits right)) or
        (H hits left and H hits right).
        Minimum = min(1 + m(d-1), 2·m(d-1)) where m(d) is the minimum for
        depth d; since m(1) = 1 this gives m(d) = d: the root-to-leaf path.
        """
        return (self.n + 1).bit_length() - 1

    def is_available(self, alive: frozenset) -> bool:
        """Recursive: a subtree has a live quorum iff (root alive and one
        child subtree does) or both child subtrees do; a live leaf always
        does."""
        def available(node: int) -> bool:
            children = self._children(node)
            if children is None:
                return node in alive
            left, right = (available(child) for child in children)
            if node in alive:
                return left or right
            return left and right
        return available(0)

    def analytic_load(self) -> float:
        """The root is on every root-containing quorum; with descend
        probability p the root is accessed with probability p itself (it is
        skipped only when the top-level choice splits), so load ≈ p."""
        return self.descend_probability

    def __repr__(self) -> str:
        return (
            f"TreeQuorumSystem(n={self.n}, "
            f"descend_probability={self.descend_probability})"
        )
