"""repro — probabilistic quorums applied to iterative algorithms.

A full reproduction of Lee & Welch, *Applications of Probabilistic Quorums
to Iterative Algorithms* (ICDCS 2001), as a production-quality library:

* :mod:`repro.sim` — deterministic discrete-event message-passing kernel;
* :mod:`repro.core` — register histories and the executable [R1]-[R5]
  random-register specification;
* :mod:`repro.quorum` — probabilistic and strict quorum systems with
  load/availability analysis;
* :mod:`repro.registers` — the (monotone) probabilistic quorum register
  and strict baselines over simulated replicas;
* :mod:`repro.iterative` — the Üresin-Dubois ACO framework and the
  paper's Alg. 1 runner;
* :mod:`repro.apps` — APSP, SSSP, transitive closure, arc consistency and
  Jacobi as ACOs;
* :mod:`repro.analysis` — the paper's closed-form bounds;
* :mod:`repro.experiments` — harnesses regenerating every table/figure.

Quickstart::

    from repro import ApspACO, Alg1Runner, ProbabilisticQuorumSystem, chain_graph

    aco = ApspACO(chain_graph(34))
    runner = Alg1Runner(aco, ProbabilisticQuorumSystem(34, 4), monotone=True)
    result = runner.run()
    assert result.converged
"""

from repro.apps import (
    ApspACO,
    ArcConsistencyACO,
    ConstraintProblem,
    Graph,
    JacobiACO,
    SsspACO,
    TransitiveClosureACO,
    chain_graph,
    complete_graph,
    grid_graph,
    random_graph,
    ring_graph,
)
from repro.iterative import ACO, Alg1Result, Alg1Runner
from repro.quorum import (
    FppQuorumSystem,
    GridQuorumSystem,
    MajorityQuorumSystem,
    ProbabilisticQuorumSystem,
    SingletonQuorumSystem,
    TreeQuorumSystem,
    VotingQuorumSystem,
)
from repro.registers import RegisterDeployment

__version__ = "1.0.0"

__all__ = [
    "ACO",
    "Alg1Result",
    "Alg1Runner",
    "ApspACO",
    "ArcConsistencyACO",
    "ConstraintProblem",
    "FppQuorumSystem",
    "Graph",
    "GridQuorumSystem",
    "JacobiACO",
    "MajorityQuorumSystem",
    "ProbabilisticQuorumSystem",
    "RegisterDeployment",
    "SingletonQuorumSystem",
    "SsspACO",
    "TransitiveClosureACO",
    "TreeQuorumSystem",
    "VotingQuorumSystem",
    "chain_graph",
    "complete_graph",
    "grid_graph",
    "random_graph",
    "ring_graph",
    "__version__",
]
