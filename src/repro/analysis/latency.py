"""Operation-latency analysis from register histories.

A quorum operation completes when its *slowest* quorum member has been
heard from, so operation latency is the maximum of k round-trip samples —
it grows with the quorum size even though load shrinks.  This is the
latency side of the paper's load story, extracted post-hoc from the
recorded histories (no instrumentation in the protocol code).
"""

import math
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.history import RegisterHistory


def operation_latencies(
    history: RegisterHistory,
) -> Tuple[List[float], List[float]]:
    """(read latencies, write latencies) of all completed operations."""
    reads = [
        r.response_time - r.invoke_time
        for r in history.reads
        if not r.pending
    ]
    writes = [
        w.response_time - w.invoke_time
        for w in history.writes
        if w.response_time is not None and w is not history.initial_write
    ]
    return reads, writes


def merged_latencies(
    histories: Iterable[RegisterHistory],
) -> Tuple[List[float], List[float]]:
    """Latencies pooled across several registers."""
    all_reads: List[float] = []
    all_writes: List[float] = []
    for history in histories:
        reads, writes = operation_latencies(history)
        all_reads.extend(reads)
        all_writes.extend(writes)
    return all_reads, all_writes


def percentile(samples: Sequence[float], q: float) -> float:
    """The q-th percentile (0 < q <= 100) by linear interpolation."""
    if not samples:
        raise ValueError("no samples")
    if not 0.0 < q <= 100.0:
        raise ValueError(f"percentile must be in (0, 100], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    value = ordered[low] * (1.0 - weight) + ordered[high] * weight
    # Interpolation of equal endpoints can drift one ulp outside the
    # sample range; clamp so the result is always a plausible latency.
    return min(max(value, ordered[0]), ordered[-1])


def latency_summary(samples: Sequence[float]) -> Dict[str, float]:
    """mean / p50 / p95 / p99 / max of a latency sample set."""
    if not samples:
        raise ValueError("no samples")
    return {
        "count": float(len(samples)),
        "mean": sum(samples) / len(samples),
        "p50": percentile(samples, 50),
        "p95": percentile(samples, 95),
        "p99": percentile(samples, 99),
        "max": max(samples),
    }


def expected_read_latency_synchronous(delay: float) -> float:
    """With constant delays a quorum read is exactly one round trip."""
    if delay <= 0:
        raise ValueError(f"delay must be positive, got {delay}")
    return 2.0 * delay


def expected_max_of_exponentials(mean: float, k: int) -> float:
    """E[max of k i.i.d. Exp(mean)] = mean · H_k (the harmonic number).

    The expected *one-way* worst leg of a k-member quorum access under
    the paper's asynchronous delay model; a full operation is the sum of
    two such phases (queries out, replies back) bounded below by the max
    over k of the two-leg sums.
    """
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean}")
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    return mean * sum(1.0 / i for i in range(1, k + 1))
