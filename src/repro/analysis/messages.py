"""Message-complexity formulas of Section 6.4.

Inspecting Alg. 1: per round each of the p processes reads all m registers
(2k messages per read) and the m registers are each written once (2k
messages per write), so a round costs 2pmk + 2mk = 2m(p+1)k messages.

Eqn 1:  M_prob(k) = 2 c_n m (p+1) k   (c_n = expected rounds/pseudocycle)
Eqn 2:  M_str(k)  = 2 m (p+1) k        (strict: 1 round per pseudocycle)

The two regime comparisons of Section 6.4 are implemented as functions
returning the rows the paper's prose walks through: in the
high-availability regime probabilistic quorums win asymptotically (k = √n
vs k = n/2); in the optimal-load regime they tie with grid/FPP strict
systems but keep Θ(n) availability.
"""

import math
from typing import Dict

from repro.analysis.theory import corollary7_rounds_per_pseudocycle_bound


def messages_per_round(p: int, m: int, k: int) -> int:
    """Total messages per round of Alg. 1: 2pmk + 2mk."""
    if min(p, m, k) < 1:
        raise ValueError(f"p, m, k must all be >= 1, got {p}, {m}, {k}")
    return 2 * p * m * k + 2 * m * k


def messages_per_pseudocycle_strict(k: int, m: int, p: int) -> int:
    """Eqn 2: M_str(k) = 2m(p+1)k — one round per pseudocycle."""
    return messages_per_round(p, m, k)


def messages_per_pseudocycle_probabilistic(
    k: int, m: int, p: int, n: int
) -> float:
    """Eqn 1: M_prob(k) = 2 c_n m (p+1) k, with c_n the Corollary 7 bound."""
    c_n = corollary7_rounds_per_pseudocycle_bound(n, k)
    return c_n * messages_per_round(p, m, k)


def high_availability_comparison(n: int, m: int, p: int) -> Dict[str, float]:
    """Section 6.4, first regime: both systems at Ω(n) availability.

    Probabilistic takes k = ⌈√n⌉ (availability n - k + 1 = Θ(n)); a strict
    system needs k = ⌊n/2⌋ + 1 (majority).  Returns the per-pseudocycle
    message counts (Eqn 3 vs the majority row) and their ratio — which the
    paper shows grows as Θ(√n).
    """
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    k_prob = max(1, math.ceil(math.sqrt(n)))
    k_major = n // 2 + 1
    prob = messages_per_pseudocycle_probabilistic(k_prob, m, p, n)
    strict = messages_per_pseudocycle_strict(k_major, m, p)
    return {
        "n": n,
        "k_probabilistic": k_prob,
        "k_majority": k_major,
        "M_prob": prob,
        "M_str_majority": strict,
        "strict_over_prob": strict / prob,
        "c_n": corollary7_rounds_per_pseudocycle_bound(n, k_prob),
    }


def optimal_load_comparison(n: int, m: int, p: int) -> Dict[str, float]:
    """Section 6.4, second regime: both systems at optimal Θ(1/√n) load.

    Both take k = Θ(√n); message complexities match up to the constant
    c_n ∈ (1, 2), but the strict system's availability collapses to O(√n)
    while the probabilistic system keeps Θ(n).
    """
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    k = max(1, math.ceil(math.sqrt(n)))
    prob = messages_per_pseudocycle_probabilistic(k, m, p, n)
    strict = messages_per_pseudocycle_strict(k, m, p)
    return {
        "n": n,
        "k": k,
        "M_prob": prob,
        "M_str_optimal_load": strict,
        "prob_over_strict": prob / strict,
        "availability_probabilistic": n - k + 1,
        "availability_strict_grid": max(1, math.isqrt(n)),
        "c_n": corollary7_rounds_per_pseudocycle_bound(n, k),
    }
