"""The paper's analytic results, as executable formulas.

Every experiment that plots a bound imports it from here, so the analytic
curves in the reproduced figures come from the same expressions the tests
verify against first principles.
"""

import math


def _validate_nk(n: int, k: int) -> None:
    if n < 1:
        raise ValueError(f"need n >= 1 servers, got {n}")
    if not 1 <= k <= n:
        raise ValueError(f"quorum size k={k} must be in [1, {n}]")


def non_intersection_probability(n: int, k: int) -> float:
    """Pr[two uniform k-subsets of n are disjoint] = C(n-k,k)/C(n,k)."""
    _validate_nk(n, k)
    if 2 * k > n:
        return 0.0
    return math.comb(n - k, k) / math.comb(n, k)


def non_intersection_upper_bound(n: int, k: int) -> float:
    """Proposition 3.2 of Malkhi et al.: C(n-k,k)/C(n,k) <= ((n-k)/n)^k."""
    _validate_nk(n, k)
    return ((n - k) / n) ** k


def q_exact(n: int, k: int) -> float:
    """Theorem 4's monotone success parameter q = 1 - C(n-k,k)/C(n,k)."""
    return 1.0 - non_intersection_probability(n, k)


def q_lower_bound(n: int, k: int) -> float:
    """q >= 1 - ((n-k)/n)^k, the bound behind Corollary 7."""
    return 1.0 - non_intersection_upper_bound(n, k)


def theorem1_survival_bound(n: int, k: int, ell: int) -> float:
    """Theorem 1: Pr[some replica of a write's quorum survives ell
    subsequent writes] <= k * ((n-k)/n)^ell (clamped to 1)."""
    _validate_nk(n, k)
    if ell < 0:
        raise ValueError(f"ell must be non-negative, got {ell}")
    return min(1.0, k * ((n - k) / n) ** ell)


def geometric_pmf_bound(q: float, r: int) -> float:
    """[R5]: Pr(Y = r) <= (1-q)^{r-1} * q."""
    if not 0 < q <= 1:
        raise ValueError(f"q must be in (0, 1], got {q}")
    if r < 1:
        raise ValueError(f"r must be at least 1, got {r}")
    return (1.0 - q) ** (r - 1) * q


def expected_rounds_upper_bound(q: float) -> float:
    """Theorem 5: expected rounds per pseudocycle <= 1/q."""
    if not 0 < q <= 1:
        raise ValueError(f"q must be in (0, 1], got {q}")
    return 1.0 / q


def corollary6_rounds_bound(pseudocycles: int, q: float) -> float:
    """Corollary 6: expected total rounds <= M / q."""
    if pseudocycles < 0:
        raise ValueError(f"M must be non-negative, got {pseudocycles}")
    return pseudocycles * expected_rounds_upper_bound(q)


def corollary7_rounds_per_pseudocycle_bound(n: int, k: int) -> float:
    """Corollary 7: expected rounds per pseudocycle for the monotone
    probabilistic quorum algorithm <= 1 / (1 - ((n-k)/n)^k)."""
    q = q_lower_bound(n, k)
    if q <= 0.0:
        # Only possible when k = 0 is excluded, so q > 0 always; guard anyway.
        raise ValueError(f"degenerate parameters n={n}, k={k} give q=0")
    return 1.0 / q


def naor_wool_load_lower_bound(n: int, k: int) -> float:
    """Naor-Wool: the load of a quorum system with smallest quorum k over n
    servers is at least max(1/k, k/n); minimised at k = Θ(√n)."""
    _validate_nk(n, k)
    return max(1.0 / k, k / n)
