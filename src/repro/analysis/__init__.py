"""Closed-form results from the paper: Theorem 1's survival bound, the
monotone parameter q of Theorem 4, the convergence bounds of Theorem 5 and
Corollaries 6-7, the Naor-Wool load bound, and the message-complexity
equations of Section 6.4.
"""

from repro.analysis.theory import (
    corollary6_rounds_bound,
    corollary7_rounds_per_pseudocycle_bound,
    expected_rounds_upper_bound,
    geometric_pmf_bound,
    naor_wool_load_lower_bound,
    non_intersection_probability,
    non_intersection_upper_bound,
    q_exact,
    q_lower_bound,
    theorem1_survival_bound,
)
from repro.analysis.messages import (
    high_availability_comparison,
    messages_per_pseudocycle_probabilistic,
    messages_per_pseudocycle_strict,
    messages_per_round,
    optimal_load_comparison,
)

__all__ = [
    "corollary6_rounds_bound",
    "corollary7_rounds_per_pseudocycle_bound",
    "expected_rounds_upper_bound",
    "geometric_pmf_bound",
    "high_availability_comparison",
    "messages_per_pseudocycle_probabilistic",
    "messages_per_pseudocycle_strict",
    "messages_per_round",
    "naor_wool_load_lower_bound",
    "non_intersection_probability",
    "non_intersection_upper_bound",
    "optimal_load_comparison",
    "q_exact",
    "q_lower_bound",
    "theorem1_survival_bound",
]
