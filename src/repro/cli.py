"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro.cli figure2 [--full] [--output DIR] [--jobs N]
    python -m repro.cli survival | freshness | messages | load | ablations
    python -m repro.cli pseudocycles | fault | latency | tuning | churn
    python -m repro.cli all [--full] [--output DIR] [--jobs N]
    python -m repro.cli chaos [--runs N] [--chaos-seed S] [--repro-out PATH]
    python -m repro.cli chaos --repro PATH        # replay a minimal repro
    python -m repro.cli serve [--rate R] [--arrivals KIND] [--duration T]

Each subcommand prints the reproduced table(s) and, with ``--output``,
also writes text and CSV copies.

``chaos`` runs a randomized adversarial campaign: every run executes
under fault injection, an adversary strategy and the online spec monitor;
a spec violation fails the campaign (exit 1) and writes a shrunken,
deterministic minimal-repro file replayable with ``--repro PATH`` (exit 0
when the violation reproduces, 2 when it does not).

``serve`` runs service mode: a sharded key-value front end over the
register deployment, driven by an open-loop arrival process (Poisson,
bursty or diurnal) with Zipf key popularity, admission control and
p50/p99/p999 latency SLO tracking.  It prints the SLO summary and, with
``--snapshot-out PATH``, writes the run's canonical metrics snapshot —
byte-identical across same-seed runs, which the CI smoke asserts.  The
``--loss-rate`` and ``--op-deadline`` fault knobs apply here too.

Simulation runs fan out over ``--jobs`` worker processes (default: the
CPU count, capped; also settable via the ``REPRO_JOBS`` environment
variable).  The worker pool is **persistent and warm**: it spins up on
the first sweep and is reused across every subsequent sweep of the
invocation (all of ``all``'s experiments share one pool), then shut down
explicitly on exit.  Results stream back as they complete and are
memoised incrementally in an on-disk run cache under
``benchmarks/output/.cache/`` — a worker crash mid-sweep keeps every
completed result and finishes the remainder serially with a warning.
``--no-cache`` bypasses the cache; ``--clear-cache`` wipes it before
running.

The fault-model subcommands (``fault``, ``churn``) additionally accept
``--loss-rate P`` (probabilistic message loss on every link) and
``--op-deadline T`` (per-operation timeout before a client rejects with
``OperationTimeout``); other subcommands ignore both.

Observability: ``--metrics-out PATH`` aggregates every simulation's
metrics registry (across worker processes and cache hits) and writes the
result as Prometheus text exposition — or JSON when PATH ends in
``.json``.  ``--trace-spans N`` prints the N slowest operation spans
(invoke → quorum rounds → retries → response/timeout); spans cannot
cross the worker-process boundary, so it forces ``--jobs 1`` and
``--no-cache`` like ``--profile`` does.
"""

import argparse
import dataclasses
import os
import sys
from typing import Callable, Dict, List, Optional

from repro.experiments.ablations import (
    AblationConfig,
    delay_ablation,
    monotone_ablation,
    topology_ablation,
)
from repro.exec.cache import RunCache
from repro.exec.engine import default_jobs, resolve_jobs
from repro.exec.pool import shutdown_pool
from repro.experiments.figure2 import Figure2Config, figure2_table, run_figure2
from repro.experiments.freshness import FreshnessConfig, freshness_table
from repro.experiments.load_availability import (
    LoadAvailabilityConfig,
    load_availability_experiment,
    tradeoff_sweep,
)
from repro.experiments.message_complexity import (
    MessageComplexityConfig,
    analytic_tables,
    measured_table,
)
from repro.experiments.churn import ChurnConfig, churn_table
from repro.experiments.fault_tolerance import (
    FaultToleranceConfig,
    degradation_table,
    fault_tolerance_table,
)
from repro.experiments.latency import LatencyConfig, latency_table
from repro.experiments.pseudocycles import (
    PseudocycleConfig,
    pseudocycle_table,
)
from repro.experiments.quorum_tuning import TuningConfig, tuning_table
from repro.experiments.results import ResultTable
from repro.experiments.survival import SurvivalConfig, survival_table
from repro.obs import runtime as obs_runtime
from repro.obs.core import Observability
from repro.obs.export import to_json, to_prometheus_text
from repro.obs.spans import SpanRecorder
from repro.sim import kernel


def _emit(tables: List[ResultTable], output: Optional[str], stem: str) -> None:
    for index, table in enumerate(tables):
        print(table.to_text())
        print()
        if output:
            suffix = f"_{index}" if len(tables) > 1 else ""
            base = os.path.join(output, f"{stem}{suffix}")
            table.save(base + ".txt", fmt="text")
            table.save(base + ".csv", fmt="csv")


def _cmd_figure2(full, output, jobs=None, cache=None, **overrides) -> None:
    config = Figure2Config() if full else Figure2Config.scaled_down()
    points = run_figure2(config, jobs=jobs, cache=cache)
    _emit([figure2_table(config, points)], output, "figure2")


def _cmd_survival(full, output, jobs=None, cache=None, **overrides) -> None:
    config = (
        SurvivalConfig(num_servers=34, quorum_size=6, max_lag=15,
                       trials=100_000)
        if full
        else SurvivalConfig.scaled_down()
    )
    _emit([survival_table(config, jobs=jobs, cache=cache)], output,
          "survival")


def _cmd_freshness(full, output, jobs=None, cache=None, **overrides) -> None:
    config = (
        FreshnessConfig(num_servers=34, quorum_size=4, trials=100_000)
        if full
        else FreshnessConfig.scaled_down()
    )
    _emit([freshness_table(config, jobs=jobs, cache=cache)], output,
          "freshness")


def _cmd_messages(full, output, jobs=None, cache=None, **overrides) -> None:
    n_values = [16, 64, 256, 1024] if full else [16, 64, 256]
    tables = analytic_tables(n_values, m=34, p=34)
    config = (
        MessageComplexityConfig()
        if full
        else MessageComplexityConfig.scaled_down()
    )
    tables.append(measured_table(config, jobs=jobs, cache=cache))
    _emit(tables, output, "messages")


def _cmd_load(full, output, jobs=None, cache=None, **overrides) -> None:
    # Analytic + in-process Monte Carlo only; no engine fan-out.
    config = (
        LoadAvailabilityConfig(num_servers=63, trials=20_000)
        if full
        else LoadAvailabilityConfig()
    )
    tables = [load_availability_experiment(config)]
    tables.append(tradeoff_sweep([16, 36, 64, 144] if full else [16, 36, 64]))
    _emit(tables, output, "load_availability")


def _cmd_ablations(full, output, jobs=None, cache=None, **overrides) -> None:
    config = (
        AblationConfig(num_vertices=34, num_servers=34, runs=5)
        if full
        else AblationConfig.scaled_down()
    )
    _emit(
        [
            monotone_ablation(config, jobs=jobs, cache=cache),
            delay_ablation(config, jobs=jobs, cache=cache),
            topology_ablation(config, jobs=jobs, cache=cache),
        ],
        output,
        "ablations",
    )


def _cmd_pseudocycles(full, output, jobs=None, cache=None, **overrides) -> None:
    config = (
        PseudocycleConfig(num_vertices=34, num_servers=34,
                          quorum_sizes=(1, 2, 3, 4, 6, 8, 12), runs=5)
        if full
        else PseudocycleConfig.scaled_down()
    )
    _emit([pseudocycle_table(config, jobs=jobs, cache=cache)], output,
          "pseudocycles")


def _fault_overrides(overrides: dict) -> dict:
    """Config overrides from the fault-model CLI flags (None = keep default)."""
    mapped = {
        "loss_rate": overrides.get("loss_rate"),
        "operation_deadline": overrides.get("op_deadline"),
    }
    return {key: value for key, value in mapped.items() if value is not None}


def _cmd_fault(full, output, jobs=None, cache=None, **overrides) -> None:
    config = (
        FaultToleranceConfig(num_vertices=16, num_servers=16,
                             crash_counts=(0, 2, 4, 8, 11))
        if full
        else FaultToleranceConfig.scaled_down()
    )
    config = dataclasses.replace(config, **_fault_overrides(overrides))
    _emit([fault_tolerance_table(config, jobs=jobs, cache=cache)], output,
          "fault_tolerance")
    _emit([degradation_table(config, jobs=jobs, cache=cache)], output,
          "fault_degradation")


def _cmd_latency(full, output, jobs=None, cache=None, **overrides) -> None:
    config = LatencyConfig() if full else LatencyConfig.scaled_down()
    _emit([latency_table(config, jobs=jobs, cache=cache)], output,
          "latency")


def _cmd_tuning(full, output, jobs=None, cache=None, **overrides) -> None:
    config = (
        TuningConfig(num_vertices=34, num_servers=64, runs=5)
        if full
        else TuningConfig.scaled_down()
    )
    _emit([tuning_table(config, jobs=jobs, cache=cache)], output,
          "quorum_tuning")


def _cmd_churn(full, output, jobs=None, cache=None, **overrides) -> None:
    config = ChurnConfig() if full else ChurnConfig.scaled_down()
    config = dataclasses.replace(config, **_fault_overrides(overrides))
    _emit([churn_table(config, jobs=jobs, cache=cache)], output, "churn")


COMMANDS: Dict[str, Callable[..., None]] = {
    "figure2": _cmd_figure2,
    "survival": _cmd_survival,
    "freshness": _cmd_freshness,
    "messages": _cmd_messages,
    "load": _cmd_load,
    "ablations": _cmd_ablations,
    "pseudocycles": _cmd_pseudocycles,
    "fault": _cmd_fault,
    "latency": _cmd_latency,
    "tuning": _cmd_tuning,
    "churn": _cmd_churn,
}


def _run_chaos(args, jobs: int, session) -> int:
    """The ``chaos`` subcommand: campaign mode or ``--repro`` replay mode.

    Kept out of COMMANDS (and of ``all``): chaos is a robustness harness
    with its own exit-code contract, not a paper artifact.
    """
    from repro.chaos import (
        CampaignConfig,
        replay_repro,
        run_campaign,
    )
    from repro.chaos.campaign import write_repro
    from repro.obs.collect import collect_chaos

    if args.repro is not None:
        reproduced, payload = replay_repro(args.repro)
        violation = payload.get("spec_violation")
        if reproduced:
            print(f"repro {args.repro}: violation reproduced")
            print(f"  condition: {violation.get('condition')}")
            print(f"  register:  {violation.get('register')}")
            print(f"  message:   {violation.get('message')}")
            for op in violation.get("ops", []):
                print(f"  op: {op}")
            return 0
        print(f"repro {args.repro}: violation did NOT reproduce")
        return 2

    broken = (
        {"kind": "regressing", "after": args.broken_after}
        if args.broken_after is not None
        else None
    )
    config = CampaignConfig(
        runs=args.runs,
        seed=args.chaos_seed,
        jobs=jobs,
        broken_client=broken,
    )
    print(
        f"chaos campaign: {config.runs} runs, seed {config.seed}, "
        f"{jobs} worker(s)"
    )
    result = run_campaign(config)
    if session is not None and session.metrics.enabled:
        collect_chaos(session.metrics, result)
    retries = sum(r["retries"] for r in result.records)
    timeouts = sum(r["timeouts"] for r in result.records)
    dropped = sum(r["messages_dropped"] for r in result.records)
    print(
        f"passed {result.passed}/{len(result.records)}; degradation: "
        f"{retries} retries, {timeouts} timeouts, {dropped} drops"
    )
    if not result.violations:
        return 0
    for index, violation in result.violations:
        print(
            f"run {index}: SpecViolation [{violation.get('condition')}] "
            f"{violation.get('message')}"
        )
    out_path = args.repro_out
    if out_path is None:
        out_dir = args.output or os.path.join("benchmarks", "output")
        out_path = os.path.join(
            out_dir, f"chaos_repro_seed{config.seed}.json"
        )
    if result.repro is not None:
        write_repro(result.repro, out_path)
        shrink = result.repro["shrink"]
        print(
            f"minimal repro written to {out_path} "
            f"({shrink['candidate_runs']} shrink runs; "
            f"replay: python -m repro.cli chaos --repro {out_path})"
        )
    return 1


def _run_serve(args, session) -> int:
    """The ``serve`` subcommand: one service-mode run, SLO summary out.

    Kept out of COMMANDS (and of ``all``) like ``chaos``: service mode is
    a systems harness over the reproduction, not a paper artifact.
    """
    from repro.service import ServiceConfig, run_service

    spec = {"kind": args.arrivals, "rate": args.rate}
    if args.arrivals == "bursty":
        if args.mean_burst is not None:
            spec["mean_burst"] = args.mean_burst
        if args.peakedness is not None:
            spec["peakedness"] = args.peakedness
    elif args.arrivals == "diurnal":
        if args.period is not None:
            spec["period"] = args.period
        if args.amplitude is not None:
            spec["amplitude"] = args.amplitude
    config = ServiceConfig(
        seed=args.seed,
        num_servers=args.servers,
        quorum_size=args.quorum_size,
        num_clients=args.clients,
        num_registers=args.registers,
        num_keys=args.keys,
        zipf_exponent=args.zipf,
        read_fraction=args.read_fraction,
        arrivals=spec,
        duration=args.duration,
        max_in_flight=args.max_in_flight,
        write_mode=args.write_mode,
        loss_rate=args.loss_rate if args.loss_rate is not None else 0.0,
        operation_deadline=(
            args.op_deadline if args.op_deadline is not None else 60.0
        ),
        max_attempts=args.max_attempts,
        membership=(
            None
            if args.churn is None
            else {
                "kind": "churn",
                "period": args.churn,
                "batch": args.churn_batch,
            }
        ),
    )
    print(
        f"serve: seed {config.seed}; {config.num_servers} servers "
        f"(quorum {config.quorum_size}), {config.num_clients} clients, "
        f"{config.num_registers} registers, {config.num_keys} keys "
        f"(zipf {config.zipf_exponent:g}); {args.arrivals} arrivals at "
        f"rate {config.arrivals['rate']:g} for {config.duration:g} time "
        f"units, write mode {config.write_mode}"
    )
    if config.membership is not None:
        print(
            f"serve: churn every {args.churn:g} time units, batch "
            f"{args.churn_batch} (view-based reconfiguration)"
        )
    result = run_service(config)
    print(result.slo_table())
    print(
        f"  simulated {result.sim_time:.1f} time units "
        f"({result.events} events) in {result.wall_seconds:.2f}s wall"
    )
    if result.hung_ops:
        print(
            f"serve: warning: {result.hung_ops} operation(s) hung with no "
            f"settlement path (two_phase mode under loss has no deadline)",
            file=sys.stderr,
        )
    if args.snapshot_out is not None:
        with open(args.snapshot_out, "wb") as fh:
            fh.write(result.snapshot_bytes)
        print(f"metrics snapshot written to {args.snapshot_out}")
    if session is not None and session.metrics.enabled:
        session.metrics.merge_snapshot(result.snapshot)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(COMMANDS) + ["all", "chaos", "serve"],
        help="which artifact to regenerate ('chaos' runs the randomized "
             "adversarial campaign instead; 'serve' runs the open-loop "
             "key-value service mode)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the paper's full parameters (slow)",
    )
    parser.add_argument(
        "--output",
        metavar="DIR",
        help="also save text and CSV copies into DIR",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=None,
        help="worker processes for simulation fan-out "
             "(default: CPU count capped at 8; env REPRO_JOBS)",
    )
    parser.add_argument(
        "--kernel",
        choices=["python", "native"],
        default=None,
        help="simulation kernel backend: the pure-python reference or the "
             "compiled native extension (default: env REPRO_KERNEL, else "
             "python; native falls back to python with a warning when the "
             "extension is not built — results are byte-identical either "
             "way)",
    )
    parser.add_argument(
        "--loss-rate",
        type=float,
        metavar="P",
        default=None,
        help="drop each message with probability P "
             "(fault/churn experiments only)",
    )
    parser.add_argument(
        "--op-deadline",
        type=float,
        metavar="T",
        default=None,
        help="per-operation timeout before rejecting with OperationTimeout "
             "(fault/churn experiments only)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="wrap the run in cProfile and print the top cumulative "
             "entries (forces --jobs 1 and --no-cache so the simulation "
             "kernel runs in-process and is actually measured)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="aggregate run metrics across all simulations (and worker "
             "processes) and write them to PATH in Prometheus text "
             "exposition format (JSON when PATH ends in .json)",
    )
    parser.add_argument(
        "--trace-spans",
        type=int,
        metavar="N",
        default=None,
        help="record per-operation spans and print the N slowest "
             "(forces --jobs 1 and --no-cache: spans cannot cross the "
             "worker-process boundary)",
    )
    parser.add_argument(
        "--runs",
        type=int,
        metavar="N",
        default=20,
        help="chaos only: number of randomized campaign runs (default 20)",
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        metavar="S",
        default=0,
        help="chaos only: campaign seed (same seed => byte-identical "
             "campaign, including any minimal repro file)",
    )
    parser.add_argument(
        "--repro",
        metavar="PATH",
        default=None,
        help="chaos only: replay a minimal-repro file instead of running "
             "a campaign (exit 0 when the violation reproduces, 2 when not)",
    )
    parser.add_argument(
        "--repro-out",
        metavar="PATH",
        default=None,
        help="chaos only: where to write the shrunken minimal repro on "
             "violation (default benchmarks/output/chaos_repro_seedS.json)",
    )
    parser.add_argument(
        "--broken-after",
        type=int,
        metavar="N",
        default=None,
        help="chaos only: inject a deliberately broken client whose reads "
             "regress after N correct ones (validates the violation "
             "pipeline end to end)",
    )
    serve = parser.add_argument_group(
        "serve only", "service-mode knobs (ignored by other subcommands)"
    )
    serve.add_argument(
        "--seed", type=int, metavar="S", default=0,
        help="root seed (same seed => byte-identical metrics snapshot)",
    )
    serve.add_argument(
        "--duration", type=float, metavar="T", default=500.0,
        help="arrival horizon in simulated time units (default 500)",
    )
    serve.add_argument(
        "--rate", type=float, metavar="R", default=2.0,
        help="mean arrival rate in ops per time unit (default 2)",
    )
    serve.add_argument(
        "--arrivals", choices=["poisson", "bursty", "diurnal"],
        default="poisson",
        help="arrival process shape (default poisson)",
    )
    serve.add_argument(
        "--mean-burst", type=float, metavar="B", default=None,
        help="bursty arrivals: mean ops per burst (default 8)",
    )
    serve.add_argument(
        "--peakedness", type=float, metavar="P", default=None,
        help="bursty arrivals: intra-burst rate multiplier (default 10)",
    )
    serve.add_argument(
        "--period", type=float, metavar="T", default=None,
        help="diurnal arrivals: cycle length in time units (default 200)",
    )
    serve.add_argument(
        "--amplitude", type=float, metavar="A", default=None,
        help="diurnal arrivals: relative swing in [0, 1) (default 0.8)",
    )
    serve.add_argument(
        "--clients", type=int, metavar="N", default=4,
        help="client subsystems serving the front end (default 4)",
    )
    serve.add_argument(
        "--servers", type=int, metavar="N", default=16,
        help="replica servers (default 16)",
    )
    serve.add_argument(
        "--quorum-size", type=int, metavar="K", default=5,
        help="probabilistic quorum size (default 5)",
    )
    serve.add_argument(
        "--registers", type=int, metavar="N", default=32,
        help="registers the keyspace shards onto (default 32)",
    )
    serve.add_argument(
        "--keys", type=int, metavar="N", default=1000,
        help="distinct keys in the keyspace (default 1000)",
    )
    serve.add_argument(
        "--zipf", type=float, metavar="S", default=1.1,
        help="Zipf popularity exponent, 0 = uniform (default 1.1)",
    )
    serve.add_argument(
        "--read-fraction", type=float, metavar="F", default=0.9,
        help="fraction of arrivals that are reads (default 0.9)",
    )
    serve.add_argument(
        "--max-in-flight", type=int, metavar="N", default=64,
        help="admission-control bound; arrivals beyond it are shed "
             "(default 64)",
    )
    serve.add_argument(
        "--write-mode", choices=["owner", "two_phase"], default="owner",
        help="write routing: shard-owner client with retry/deadline "
             "protection, or ABD two-phase multi-writer (default owner)",
    )
    serve.add_argument(
        "--churn", type=float, metavar="T", default=None,
        help="membership churn: every T time units a batch of fresh "
             "replicas joins and the oldest members retire (view-based "
             "reconfiguration; requires --write-mode owner)",
    )
    serve.add_argument(
        "--churn-batch", type=int, metavar="N", default=1,
        help="replicas replaced per churn cycle (default 1)",
    )
    serve.add_argument(
        "--max-attempts", type=int, metavar="N", default=None,
        help="give up on an operation after N dispatch attempts with a "
             "structured QuorumUnreachable failure (default: retry "
             "until the deadline)",
    )
    serve.add_argument(
        "--snapshot-out", metavar="PATH", default=None,
        help="write the run's canonical metrics snapshot (JSON bytes); "
             "byte-identical across same-seed runs",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk run cache",
    )
    parser.add_argument(
        "--clear-cache",
        action="store_true",
        help="wipe the run cache before running",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.kernel is not None:
        kernel.select_backend(args.kernel)
    # Resolve eagerly: a native request that falls back should warn up
    # front, not only when (if ever) the first scheduler is built — a
    # fully cache-served run never builds one.
    resolved = kernel.selected_backend()
    if args.kernel is not None:
        if args.kernel != resolved:
            # selected_backend() already printed why; state the outcome.
            print(
                f"repro: --kernel {args.kernel} is unavailable; running "
                f"with the pure-python kernel (results are identical)",
                file=sys.stderr,
            )
    if args.output:
        os.makedirs(args.output, exist_ok=True)
    try:
        jobs = resolve_jobs(args.jobs, default=default_jobs())
    except ValueError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    if args.trace_spans is not None and args.trace_spans < 1:
        print(
            f"repro: error: --trace-spans must be positive, "
            f"got {args.trace_spans}",
            file=sys.stderr,
        )
        return 2
    if args.profile or args.trace_spans is not None:
        # Profiling a worker-process fan-out (or a cache hit) would show
        # only IPC and pickling; run everything in this process, uncached.
        # Span recording has the same constraint: spans live on the
        # recorder in *this* process and cannot cross the pool boundary.
        jobs = 1
        cache = None
    else:
        cache = None if args.no_cache else RunCache()
        if args.clear_cache and cache is not None:
            cache.clear()
    if args.loss_rate is not None and not 0.0 <= args.loss_rate < 1.0:
        print(
            f"repro: error: --loss-rate must be in [0, 1), "
            f"got {args.loss_rate}",
            file=sys.stderr,
        )
        return 2
    names = sorted(COMMANDS) if args.experiment == "all" else [args.experiment]

    observe = args.metrics_out is not None or args.trace_spans is not None
    session = None
    if observe:
        session = Observability(
            spans=SpanRecorder() if args.trace_spans is not None else None,
        )
        obs_runtime.activate(session)

    exit_code = 0

    def run_selected() -> None:
        nonlocal exit_code
        if args.experiment == "chaos":
            exit_code = _run_chaos(args, jobs, session)
            return
        if args.experiment == "serve":
            exit_code = _run_serve(args, session)
            return
        for name in names:
            COMMANDS[name](
                args.full,
                args.output,
                jobs=jobs,
                cache=cache,
                loss_rate=args.loss_rate,
                op_deadline=args.op_deadline,
            )

    try:
        if args.profile:
            import cProfile
            import io
            import pstats

            profiler = cProfile.Profile()
            profiler.enable()
            run_selected()
            profiler.disable()
            buffer = io.StringIO()
            stats = pstats.Stats(profiler, stream=buffer)
            stats.sort_stats("cumulative").print_stats(30)
            report = buffer.getvalue()
            print(report)
            if args.output:
                profile_path = os.path.join(
                    args.output, f"profile_{args.experiment}.txt"
                )
                with open(profile_path, "w", encoding="utf-8") as fh:
                    fh.write(report)
                print(f"profile saved to {profile_path}")
        else:
            run_selected()
    finally:
        # Explicit warm-pool lifecycle exit: atexit would catch this too,
        # but a CLI invocation should not hold worker processes (or their
        # memory) past the last table it prints.
        shutdown_pool()
        if session is not None:
            obs_runtime.deactivate()
    if session is not None:
        if args.metrics_out is not None:
            snapshot = session.metrics.snapshot()
            if args.metrics_out.endswith(".json"):
                rendered = to_json(snapshot)
            else:
                rendered = to_prometheus_text(snapshot)
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(rendered)
            print(f"metrics written to {args.metrics_out}")
        if args.trace_spans is not None:
            print()
            print(session.spans.render_slowest(args.trace_spans))
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
