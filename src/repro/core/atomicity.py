"""Atomicity (linearizability) checking for register histories.

Section 8 of the paper asks how *stronger* registers (multi-writer,
atomic) relate to random registers.  We implement the classical stronger
baselines (see :mod:`repro.registers.atomic`), and this module provides
the checker that certifies them: a register history with unique write
timestamps is atomic iff

  [L1] timestamp order refines the real-time order of writes:
       if W1 responds before W2 is invoked then ts(W1) < ts(W2);
  [L2] a read never returns a value from the future: the write it reads
       from is invoked before the read responds (this is [R2]);
  [L3] a read never returns an overwritten value: no write with a larger
       timestamp completed before the read was invoked;
  [L4] reads are globally monotone: if read R1 responds before read R2 is
       invoked (any two processes), then ts(R1) <= ts(R2).

These are Lamport's atomicity conditions specialised to histories whose
writes carry unique totally ordered timestamps (as all implementations in
this library do), where they are necessary *and* sufficient: linearise
writes by timestamp and insert each read after the write it returns,
ordering reads of the same write by invocation time.
"""

from typing import List

from repro.core.history import RegisterHistory
from repro.core.spec import SpecViolation


def check_atomic(history: RegisterHistory) -> None:
    """Raise :class:`SpecViolation` unless the history is atomic.

    Pending operations are ignored (they may be linearised anywhere), so
    the check is on the completed sub-history.
    """
    writes = [
        w for w in history.writes if w.response_time is not None
    ]
    writes.sort(key=lambda w: w.timestamp)
    # [L1] timestamp order refines write real-time order.
    for earlier, later in zip(writes, writes[1:]):
        # earlier/later are in timestamp order; a real-time inversion means
        # the later-timestamped write finished before the earlier started.
        if later.response_time < earlier.invoke_time:
            raise SpecViolation(
                f"[L1] atomicity violated on {history.name}: write "
                f"ts={later.timestamp.seq} completed at {later.response_time} "
                f"before write ts={earlier.timestamp.seq} began at "
                f"{earlier.invoke_time}"
            )

    reads = [r for r in history.reads if not r.pending and r.timestamp is not None]
    for read in reads:
        source = history.write_for_timestamp(read.timestamp)
        # [L2] the value must come from a write begun before the read ends.
        if source is None or source.invoke_time >= read.response_time:
            raise SpecViolation(
                f"[L2] atomicity violated on {history.name}: {read!r} "
                "returned a value not yet written"
            )
        # [L3] no newer write completed before the read began.
        for write in writes:
            if (
                write.timestamp > read.timestamp
                and write.response_time is not None
                and write.response_time < read.invoke_time
            ):
                raise SpecViolation(
                    f"[L3] atomicity violated on {history.name}: {read!r} "
                    f"returned ts={read.timestamp.seq} although write "
                    f"ts={write.timestamp.seq} completed at "
                    f"{write.response_time}, before the read began at "
                    f"{read.invoke_time}"
                )

    # [L4] global read monotonicity over non-overlapping reads.
    ordered = sorted(reads, key=lambda r: (r.invoke_time, r.op_id))
    for i, first in enumerate(ordered):
        for second in ordered[i + 1:]:
            if second.invoke_time < first.response_time:
                continue  # overlapping reads may be linearised either way
            if second.timestamp < first.timestamp:
                raise SpecViolation(
                    f"[L4] atomicity violated on {history.name}: read "
                    f"{second!r} (after {first!r}) went back in time from "
                    f"ts={first.timestamp.seq} to ts={second.timestamp.seq}"
                )


def is_atomic(history: RegisterHistory) -> bool:
    """Boolean form of :func:`check_atomic`."""
    try:
        check_atomic(history)
    except SpecViolation:
        return False
    return True


def atomicity_violations(history: RegisterHistory) -> List[str]:
    """All violated conditions, by label — for diagnostics and tests.

    Runs each condition family independently instead of stopping at the
    first failure.
    """
    labels: List[str] = []
    try:
        check_atomic(history)
    except SpecViolation as exc:
        message = str(exc)
        for label in ("[L1]", "[L2]", "[L3]", "[L4]"):
            if label in message:
                labels.append(label)
    return labels
