"""Executable checkers for the random-register specification.

The paper defines a *random register* by conditions [R1]-[R3] and a
*monotone* random register by the additional [R4]-[R5] (Sections 3 and 6.1):

[R1] every operation invocation in every complete execution has a matching
     response;
[R2] every read reads from some write;
[R3] for every write, the probability it is read from infinitely often is 0
     (given infinitely many subsequent writes);
[R4] a process's reads never regress: a later read does not read from an
     earlier write than a previous read did;
[R5] the number of reads Y by a process until it sees a given write (or a
     later one) is stochastically dominated by a geometric distribution
     with some parameter q.

[R1], [R2] and [R4] are safety conditions checkable on any finite history.
[R3] and [R5] are probabilistic; for them we provide estimators over
(finite prefixes of) histories, which the statistical experiments E-THM1
and E-THM4 compare against the paper's analytic bounds.
"""

import math
from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.history import ReadRecord, RegisterHistory, WriteRecord


class SpecViolation(AssertionError):
    """Raised by a checker when a safety condition fails.

    Structured: beyond the human-readable message, a violation names the
    ``condition`` that failed ("R1", "R2", "R4", "liveness", ...), the
    ``register`` it failed on, and the offending operation records
    (``ops``), so chaos campaigns and the online monitor can serialise
    exactly what went wrong instead of parsing exception text.
    """

    def __init__(
        self,
        message: str,
        condition: str = "",
        register: str = "",
        ops: Sequence[Any] = (),
    ) -> None:
        super().__init__(message)
        self.condition = condition
        self.register = register
        self.ops = list(ops)

    def payload(self) -> Dict[str, Any]:
        """A JSON-able description (for repro files and worker results)."""
        return {
            "condition": self.condition,
            "register": self.register,
            "message": str(self),
            "ops": [repr(op) for op in self.ops],
        }


# --------------------------------------------------------------------- #
# Safety conditions
# --------------------------------------------------------------------- #


def check_r1_every_invocation_responded(history: RegisterHistory) -> None:
    """[R1]: in a complete execution every invocation has a response."""
    for op in history.operations():
        if op.pending:
            raise SpecViolation(
                f"[R1] violated on {history.name}: operation {op!r} never responded",
                condition="R1",
                register=history.name,
                ops=[op],
            )


def check_r2_reads_from_some_write(history: RegisterHistory) -> None:
    """[R2]: every completed read reads from some write.

    Checked against the paper's specification-level reads-from definition;
    the virtual initial write counts, as in the paper's model where
    registers start initialised.
    """
    for read in history.reads:
        if read.pending:
            continue
        if history.reads_from_spec(read) is None:
            raise SpecViolation(
                f"[R2] violated on {history.name}: {read!r} returned a value "
                "no write (begun before the read ended) ever wrote",
                condition="R2",
                register=history.name,
                ops=[read],
            )


def check_r4_monotone_reads(history: RegisterHistory) -> None:
    """[R4]: per process, successive reads never read from older writes."""
    processes = {read.process for read in history.reads}
    for process in processes:
        last_ts = None
        for read in history.reads_by_process(process):
            if read.pending or read.timestamp is None:
                continue
            if last_ts is not None and read.timestamp < last_ts:
                raise SpecViolation(
                    f"[R4] violated on {history.name}: process {process} read "
                    f"ts={read.timestamp.seq} after having read ts={last_ts.seq}",
                    condition="R4",
                    register=history.name,
                    ops=[read],
                )
            last_ts = read.timestamp
    # No violation found.


# --------------------------------------------------------------------- #
# Probabilistic conditions: estimators
# --------------------------------------------------------------------- #


def staleness_distribution(history: RegisterHistory) -> Counter:
    """Histogram of read staleness (how many completed writes each read missed).

    A register satisfying [R3] should show staleness mass concentrated near 0
    with a geometrically decaying tail; a broken implementation that pins an
    old value shows unbounded staleness.
    """
    counts: Counter = Counter()
    for read in history.reads:
        staleness = history.staleness(read)
        if staleness is not None:
            counts[staleness] += 1
    return counts


def write_survival_counts(
    history: RegisterHistory, max_ell: Optional[int] = None
) -> Dict[int, Tuple[int, int]]:
    """Empirical data for the Theorem 1 bound.

    For each lag ``ell`` returns ``(survivals, trials)`` where a *trial* is a
    (write W, read R) pair with exactly ``ell`` writes invoked between W and
    R's response, and a *survival* means R still read from W (i.e. W's value
    outlived ``ell`` subsequent writes for that reader).

    Theorem 1's proof bounds the survival probability by k((n-k)/n)^ell.
    """
    writes = sorted(history.writes, key=lambda w: w.timestamp)
    index_of = {w.timestamp: i for i, w in enumerate(writes)}
    results: Dict[int, Tuple[int, int]] = {}
    trials: Counter = Counter()
    for read in history.reads:
        if read.pending or read.timestamp is None:
            continue
        source = history.reads_from(read)
        if source is None:
            continue
        source_idx = index_of[source.timestamp]
        # Writes invoked after the source write and before the read responded:
        # the read's lag. A read at lag `later` means the source value
        # survived `later` intervening writes for this reader.
        later = sum(
            1
            for w in writes[source_idx + 1:]
            if w.invoke_time < read.response_time
        )
        if max_ell is not None and later > max_ell:
            later = max_ell
        trials[later] += 1
    # For lag ell, survival means the read's lag was >= ell, so the per-lag
    # survival count is the tail sum of the lag histogram.
    max_seen = max(trials) if trials else 0
    total_reads = sum(trials.values())
    cumulative = 0
    for ell in range(max_seen, -1, -1):
        cumulative += trials[ell]
        results[ell] = (cumulative, total_reads)
    return results


def freshness_wait_samples(history: RegisterHistory) -> List[int]:
    """Samples of the random variable Y from [R5].

    For each (write W, process i) pair, Y is the number of reads by i
    issued after W completes until one returns W or a later write.  Only
    pairs where the wait completed within the history are counted, so the
    estimate is slightly optimistic for heavily truncated histories.
    """
    samples: List[int] = []
    real_writes = [
        w
        for w in history.writes
        if w.response_time is not None and w is not history.initial_write
    ]
    processes = sorted({r.process for r in history.reads})
    for write in real_writes:
        for process in processes:
            later_reads = [
                r
                for r in history.reads_by_process(process)
                if not r.pending and r.invoke_time >= write.response_time
            ]
            count = 0
            for read in later_reads:
                count += 1
                if read.timestamp is not None and read.timestamp >= write.timestamp:
                    samples.append(count)
                    break
    return samples


def estimate_r5_geometric_parameter(samples: List[int]) -> float:
    """Maximum-likelihood estimate of q from Y samples (q_hat = 1 / mean(Y)).

    [R5] asserts Pr(Y = r) <= (1-q)^{r-1} q; if Y were exactly geometric the
    MLE is 1/mean.  Since [R5] is an upper bound the empirical q_hat should
    come out *at least* the analytic q of Theorem 4.
    """
    if not samples:
        raise ValueError("cannot estimate q from zero samples")
    mean = sum(samples) / len(samples)
    return 1.0 / mean


def geometric_tail_dominates(
    samples: List[int], q: float, slack: float = 0.0
) -> bool:
    """Check the [R5] bound empirically: Pr(Y >= r) <= (1-q)^{r-1} (+ slack).

    The geometric tail (1-q)^{r-1} follows from summing the [R5] bound.
    ``slack`` absorbs sampling noise in statistical tests.
    """
    if not 0 < q <= 1:
        raise ValueError(f"q must be in (0, 1], got {q}")
    if not samples:
        return True
    n = len(samples)
    max_r = max(samples)
    for r in range(1, max_r + 1):
        empirical_tail = sum(1 for y in samples if y >= r) / n
        bound = (1.0 - q) ** (r - 1)
        if empirical_tail > bound + slack:
            return False
    return True


def expected_wait_upper_bound(q: float) -> float:
    """E[Y] <= 1/q, the bound used in Theorem 5's proof."""
    if not 0 < q <= 1:
        raise ValueError(f"q must be in (0, 1], got {q}")
    return 1.0 / q


def staleness_tail_is_light(
    distribution: Counter, ratio: float = 0.5, start: int = 1
) -> bool:
    """Heuristic [R3] check: the staleness histogram tail keeps decaying.

    Verifies that the total mass at staleness >= s shrinks by at least
    ``ratio`` per doubling of s — consistent with the geometric decay the
    probabilistic quorum algorithm guarantees, and violated by an
    implementation that keeps returning one stale value forever.
    """
    total = sum(distribution.values())
    if total == 0:
        return True
    s = start
    previous_tail = None
    while s <= max(distribution):
        tail = sum(c for st, c in distribution.items() if st >= s) / total
        if previous_tail is not None and previous_tail > 0.05:
            if tail > previous_tail * (1.0 + 1e-9) or (
                previous_tail > 0.2 and tail > previous_tail * (1.0 - (1.0 - ratio) / 2)
                and tail > math.sqrt(1.0 / total)
            ):
                return False
        previous_tail = tail
        s *= 2
    return True
