"""Online specification monitoring: catch violations *during* the run.

The post-hoc checkers in :mod:`repro.core.spec` audit a finished history;
under fault injection and adversarial scheduling that is too late — a
violating run completes "successfully" and only a later audit (if anyone
runs one) notices.  :class:`OnlineSpecMonitor` checks incrementally, as
each operation completes:

* **[R1]/liveness** — every operation resolves or times out: at
  :meth:`finalize` the deployment must report zero hung operations, and
  no operation may retry more than ``max_attempts`` times (a retry storm
  is a liveness failure even if the op eventually settles);
* **[R2] (online)** — a completed read must return a (value, timestamp)
  some write actually began writing, and that write must have begun
  before the read responded ("no reads-from before the write begins");
* **[R4]/[R5] (monotone mode)** — per (register, process), a later read
  never returns an older timestamp than an earlier read did.

Every check is O(1) per completed operation (two dict probes and an
integer compare), so monitoring adds no asymptotic cost; clients guard
the call behind a prefetched boolean, so ``check_spec=False`` runs with
no monitor attached pay nothing at all — pinned by the golden trace in
``tests/test_kernel_determinism.py``.

Violations raise :class:`~repro.core.spec.SpecViolation` carrying the
offending operation records, which aborts the simulated run at the
violating event instead of silently completing.
"""

from typing import Any, Dict, Optional, Tuple

from repro.core.spec import SpecViolation
from repro.core.timestamps import Timestamp


class OnlineSpecMonitor:
    """Incremental [R1]/[R2]/[R4] + liveness checker for live runs."""

    enabled = True

    __slots__ = (
        "monotone",
        "max_attempts",
        "reads_checked",
        "writes_checked",
        "retries_seen",
        "timeouts_seen",
        "views_seen",
        "_last_read",
    )

    def __init__(
        self, monotone: bool = False, max_attempts: Optional[int] = 64
    ) -> None:
        if max_attempts is not None and max_attempts < 1:
            raise ValueError(
                f"max_attempts must be positive or None, got {max_attempts}"
            )
        self.monotone = monotone
        self.max_attempts = max_attempts
        self.reads_checked = 0
        self.writes_checked = 0
        self.retries_seen = 0
        self.timeouts_seen = 0
        self.views_seen = 0
        # (register, process) -> (timestamp, record) of the last completed
        # read: the [R4] state, one entry per reader per register.
        self._last_read: Dict[Tuple[str, int], Tuple[Timestamp, Any]] = {}

    # ------------------------------------------------------------------ #
    # Per-operation hooks (called by the register clients)
    # ------------------------------------------------------------------ #

    def on_read_complete(self, process: int, record: Any, history: Any) -> None:
        """Check a completed read: [R2] online, then [R4] when monotone."""
        self.reads_checked += 1
        timestamp = record.timestamp
        source = history.write_for_timestamp(timestamp)
        if source is None:
            raise SpecViolation(
                f"[R2] violated online on {history.name}: {record!r} returned "
                f"a (value, timestamp) no write ever began writing",
                condition="R2",
                register=history.name,
                ops=[record],
            )
        if source.invoke_time > record.response_time:
            raise SpecViolation(
                f"[R2] violated online on {history.name}: {record!r} read "
                f"from {source!r}, which begins only after the read responded",
                condition="R2",
                register=history.name,
                ops=[record, source],
            )
        if self.monotone:
            key = (history.name, process)
            previous = self._last_read.get(key)
            if previous is not None and timestamp < previous[0]:
                raise SpecViolation(
                    f"[R4] violated online on {history.name}: process "
                    f"{process} read ts={timestamp.seq} after having read "
                    f"ts={previous[0].seq}",
                    condition="R4",
                    register=history.name,
                    ops=[previous[1], record],
                )
            self._last_read[key] = (timestamp, record)

    def on_write_complete(self, process: int, record: Any, history: Any) -> None:
        """Count a completed write (the ack itself is the [R1] evidence)."""
        self.writes_checked += 1

    def on_retry(self, register: str, op_kind: str, attempts: int) -> None:
        """Bound retry storms: an op retrying forever is a liveness bug."""
        self.retries_seen += 1
        if self.max_attempts is not None and attempts > self.max_attempts:
            raise SpecViolation(
                f"liveness violated: {op_kind}({register}) retried "
                f"{attempts} times (bound: {self.max_attempts}) without "
                f"settling — unbounded retry storm",
                condition="liveness",
                register=register,
            )

    def on_timeout(self, register: str, op_kind: str) -> None:
        """A deadline rejection settles the op; count it for reporting."""
        self.timeouts_seen += 1

    def on_view_change(self, view_id: int, members: Any, now: float) -> None:
        """A membership view was installed (dynamic membership runs).

        Deliberately does **not** reset any checker state: [R2] resolves
        against the register history (view-independent by construction)
        and the [R4] per-(register, process) last-read table must survive
        reconfiguration — a read regressing *across* a view boundary is
        exactly the bug class this monitor exists to catch.
        """
        self.views_seen += 1

    # ------------------------------------------------------------------ #
    # End-of-run check
    # ------------------------------------------------------------------ #

    def finalize(self, deployment: Any) -> None:
        """[R1]/liveness at end of run: no operation may be left hung.

        ``deployment.hung_ops`` is deadline-aware: with a deadline armed it
        counts pending ops older than the deadline (which the deadline
        event should have rejected — so any count is a real bug); without
        one, every still-pending op counts, since nothing guarantees it
        ever settles.
        """
        hung = deployment.hung_ops
        if hung:
            raise SpecViolation(
                f"[R1]/liveness violated: {hung} operation(s) left with no "
                f"settlement path at end of run (pending="
                f"{deployment.pending_ops})",
                condition="liveness",
            )

    def __repr__(self) -> str:
        mode = "monotone" if self.monotone else "plain"
        return (
            f"OnlineSpecMonitor({mode}, reads={self.reads_checked}, "
            f"writes={self.writes_checked})"
        )
