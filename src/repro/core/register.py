"""Abstract register interface.

Every register client implementation in :mod:`repro.registers` exposes this
interface: asynchronous ``read`` and ``write`` returning futures that settle
when the operation's response arrives, per the invocation/response model of
Section 3.  The history recorder is shared so the spec checkers in
:mod:`repro.core.spec` can audit any implementation.
"""

from typing import Any

from repro.core.history import RegisterHistory
from repro.sim.futures import Future


class AbstractRegister:
    """A multi-reader single-writer shared register (client-side handle)."""

    def __init__(self, name: str, history: RegisterHistory) -> None:
        self.name = name
        self.history = history

    def read(self) -> Future:
        """Invoke a read; the returned future resolves with the value."""
        raise NotImplementedError

    def write(self, value: Any) -> Future:
        """Invoke a write; the returned future resolves on the Ack."""
        raise NotImplementedError
