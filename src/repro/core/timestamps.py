"""Timestamps for register values.

The probabilistic quorum algorithm associates a timestamp with each replica
value; a read returns the value with the largest timestamp in its quorum.
For the single-writer registers of the paper, the sequence number alone
totally orders writes; the writer id is carried so that the representation
extends to the multi-writer case discussed as future work in Section 8.

Comparisons are written out explicitly rather than derived with
``functools.total_ordering``: replica servers compare timestamps on every
WriteUpdate and clients on every quorum read, and the derived operators
cost an extra Python-level dispatch per comparison on that hot path.
"""


class Timestamp:
    """A (sequence, writer) pair, totally ordered lexicographically."""

    __slots__ = ("seq", "writer")

    ZERO: "Timestamp"

    def __init__(self, seq: int, writer: int = 0) -> None:
        self.seq = seq
        self.writer = writer

    def next(self, writer: int = None) -> "Timestamp":
        """The successor timestamp, optionally rebound to another writer."""
        return Timestamp(self.seq + 1, self.writer if writer is None else writer)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Timestamp):
            return NotImplemented
        return self.seq == other.seq and self.writer == other.writer

    def __ne__(self, other: object) -> bool:
        if not isinstance(other, Timestamp):
            return NotImplemented
        return self.seq != other.seq or self.writer != other.writer

    def __lt__(self, other: "Timestamp") -> bool:
        if not isinstance(other, Timestamp):
            return NotImplemented
        return (self.seq, self.writer) < (other.seq, other.writer)

    def __le__(self, other: "Timestamp") -> bool:
        if not isinstance(other, Timestamp):
            return NotImplemented
        return (self.seq, self.writer) <= (other.seq, other.writer)

    def __gt__(self, other: "Timestamp") -> bool:
        if not isinstance(other, Timestamp):
            return NotImplemented
        return (self.seq, self.writer) > (other.seq, other.writer)

    def __ge__(self, other: "Timestamp") -> bool:
        if not isinstance(other, Timestamp):
            return NotImplemented
        return (self.seq, self.writer) >= (other.seq, other.writer)

    def __hash__(self) -> int:
        return hash((self.seq, self.writer))

    def __repr__(self) -> str:
        return f"Timestamp({self.seq}, w{self.writer})"


Timestamp.ZERO = Timestamp(0, 0)
