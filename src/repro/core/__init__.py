"""Core register model: histories, the reads-from relation, and the
executable random-register specification ([R1]-[R5] of the paper).

The types here are implementation-independent, exactly as Section 3 of the
paper demands: any register implementation (message-passing or otherwise)
can record its operations into a :class:`~repro.core.history.RegisterHistory`
and have the specification conditions checked against it.
"""

from repro.core.timestamps import Timestamp
from repro.core.history import (
    HistoryError,
    OperationRecord,
    ReadRecord,
    RegisterHistory,
    WriteRecord,
)
from repro.core.spec import (
    SpecViolation,
    check_r1_every_invocation_responded,
    check_r2_reads_from_some_write,
    check_r4_monotone_reads,
    estimate_r5_geometric_parameter,
    freshness_wait_samples,
    staleness_distribution,
    write_survival_counts,
)
from repro.core.register import AbstractRegister
from repro.core.atomicity import atomicity_violations, check_atomic, is_atomic

__all__ = [
    "AbstractRegister",
    "HistoryError",
    "OperationRecord",
    "ReadRecord",
    "RegisterHistory",
    "SpecViolation",
    "Timestamp",
    "WriteRecord",
    "atomicity_violations",
    "check_atomic",
    "check_r1_every_invocation_responded",
    "check_r2_reads_from_some_write",
    "check_r4_monotone_reads",
    "estimate_r5_geometric_parameter",
    "freshness_wait_samples",
    "is_atomic",
    "staleness_distribution",
    "write_survival_counts",
]
