"""Operation histories and the reads-from relation.

A :class:`RegisterHistory` records every read and write on one register:
invocation time, response time, the value, and (for bookkeeping) the
timestamp the implementation attached to the value.  Because the paper's
registers are single-writer and every write gets a fresh timestamp, the
timestamp of the value a read returned identifies *exactly* which write it
read from — this is the implementation-level ground truth.

The paper's *specification-level* reads-from definition (Section 3) is also
implemented (:meth:`RegisterHistory.reads_from_spec`): a read R reads from
the latest write W such that W begins before R ends and W wrote the value R
returned.  As the paper's footnote notes, the two can disagree when values
repeat; the spec-level one is what conditions [R2]-[R4] are stated over.
"""

import itertools
from typing import Any, Dict, Iterator, List, Optional

from repro.core.timestamps import Timestamp


class HistoryError(RuntimeError):
    """Raised on malformed history usage (e.g. responding twice)."""


# Fallback id source for records constructed outside a RegisterHistory
# (tests build records directly).  Histories assign ids from their own
# per-instance counter: a module-level counter would leak across runs in
# one process, giving back-to-back in-process runs different op ids than
# fresh-process runs and breaking byte-stable repro files.
_unowned_op_counter = itertools.count(1_000_000_000)


class OperationRecord:
    """Common fields of a read or write record."""

    __slots__ = ("op_id", "process", "invoke_time", "response_time")

    def __init__(
        self, process: int, invoke_time: float, op_id: Optional[int] = None
    ) -> None:
        self.op_id: int = (
            op_id if op_id is not None else next(_unowned_op_counter)
        )
        self.process = process
        self.invoke_time = invoke_time
        self.response_time: Optional[float] = None

    @property
    def pending(self) -> bool:
        """True while the operation has not yet received its response."""
        return self.response_time is None

    def respond(self, time: float) -> None:
        """Record the operation's response time."""
        if self.response_time is not None:
            raise HistoryError(f"operation {self.op_id} responded twice")
        if time < self.invoke_time:
            raise HistoryError(
                f"response at t={time} precedes invocation at t={self.invoke_time}"
            )
        self.response_time = time


class WriteRecord(OperationRecord):
    """One write operation: value written and the timestamp it received."""

    __slots__ = ("value", "timestamp")

    def __init__(
        self,
        process: int,
        invoke_time: float,
        value: Any,
        timestamp: Timestamp,
        op_id: Optional[int] = None,
    ) -> None:
        super().__init__(process, invoke_time, op_id)
        self.value = value
        self.timestamp = timestamp

    def __repr__(self) -> str:
        return (
            f"Write(op={self.op_id}, p{self.process}, v={self.value!r}, "
            f"ts={self.timestamp.seq}, t=[{self.invoke_time:.4g},"
            f"{self.response_time if self.response_time is None else round(self.response_time, 4)}])"
        )


class ReadRecord(OperationRecord):
    """One read operation: the value returned and its timestamp."""

    __slots__ = ("value", "timestamp")

    def __init__(
        self, process: int, invoke_time: float, op_id: Optional[int] = None
    ) -> None:
        super().__init__(process, invoke_time, op_id)
        self.value: Any = None
        self.timestamp: Optional[Timestamp] = None

    def complete(self, time: float, value: Any, timestamp: Timestamp) -> None:
        """Record the read's response, returned value and value timestamp."""
        self.respond(time)
        self.value = value
        self.timestamp = timestamp

    def __repr__(self) -> str:
        ts = self.timestamp.seq if self.timestamp is not None else None
        return (
            f"Read(op={self.op_id}, p{self.process}, v={self.value!r}, ts={ts}, "
            f"t=[{self.invoke_time:.4g},"
            f"{self.response_time if self.response_time is None else round(self.response_time, 4)}])"
        )


class RegisterHistory:
    """The full operation history of one register.

    The register's initial value is modelled, as in the paper's algorithm,
    as a virtual write with timestamp 0 completing at time 0 before the
    execution starts.
    """

    def __init__(self, name: str = "X", initial_value: Any = None) -> None:
        self.name = name
        # Per-history op ids: id 0 is always the virtual initial write and
        # real operations count up from 1, so two runs in one process (or
        # in different processes) assign identical ids to identical
        # histories.
        self._op_counter = itertools.count()
        self.initial_write = WriteRecord(
            process=-1,
            invoke_time=0.0,
            value=initial_value,
            timestamp=Timestamp.ZERO,
            op_id=next(self._op_counter),
        )
        self.initial_write.respond(0.0)
        self.writes: List[WriteRecord] = [self.initial_write]
        self.reads: List[ReadRecord] = []
        self._writes_by_ts: Dict[Timestamp, WriteRecord] = {
            Timestamp.ZERO: self.initial_write
        }

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def begin_write(
        self, process: int, time: float, value: Any, timestamp: Timestamp
    ) -> WriteRecord:
        """Record a write invocation."""
        if timestamp in self._writes_by_ts:
            raise HistoryError(
                f"duplicate write timestamp {timestamp} on register {self.name}"
            )
        record = WriteRecord(
            process, time, value, timestamp, op_id=next(self._op_counter)
        )
        self.writes.append(record)
        self._writes_by_ts[timestamp] = record
        return record

    def begin_read(self, process: int, time: float) -> ReadRecord:
        """Record a read invocation."""
        record = ReadRecord(process, time, op_id=next(self._op_counter))
        self.reads.append(record)
        return record

    # ------------------------------------------------------------------ #
    # The reads-from relation
    # ------------------------------------------------------------------ #

    def write_for_timestamp(self, timestamp: Timestamp) -> Optional[WriteRecord]:
        """The write that produced ``timestamp`` (implementation ground truth)."""
        return self._writes_by_ts.get(timestamp)

    def reads_from(self, read: ReadRecord) -> Optional[WriteRecord]:
        """Implementation-level reads-from, via the value's timestamp."""
        if read.timestamp is None:
            return None
        return self._writes_by_ts.get(read.timestamp)

    def reads_from_spec(self, read: ReadRecord) -> Optional[WriteRecord]:
        """The paper's reads-from: the latest write that (1) begins before
        the read ends and (2) wrote the value the read returned."""
        if read.pending:
            return None
        candidates = [
            w
            for w in self.writes
            if w.invoke_time < read.response_time and w.value == read.value
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda w: (w.invoke_time, w.timestamp))

    def staleness(self, read: ReadRecord) -> Optional[int]:
        """How many writes *completed* before the read's response but are
        newer than the write the read returned.  0 means the read saw the
        most recent completed write."""
        source = self.reads_from(read)
        if source is None or read.pending:
            return None
        newer = [
            w
            for w in self.writes
            if w.timestamp > source.timestamp
            and w.response_time is not None
            and w.response_time <= read.response_time
        ]
        return len(newer)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def operations(self) -> Iterator[OperationRecord]:
        """All operations (reads and real writes) in invocation order."""
        real_writes = [w for w in self.writes if w is not self.initial_write]
        ops: List[OperationRecord] = list(real_writes) + list(self.reads)
        return iter(sorted(ops, key=lambda op: (op.invoke_time, op.op_id)))

    def reads_by_process(self, process: int) -> List[ReadRecord]:
        """This process's reads, in invocation order."""
        return sorted(
            (r for r in self.reads if r.process == process),
            key=lambda r: (r.invoke_time, r.op_id),
        )

    def latest_write_before(self, time: float) -> WriteRecord:
        """The completed write with the largest timestamp responding <= time."""
        done = [
            w
            for w in self.writes
            if w.response_time is not None and w.response_time <= time
        ]
        return max(done, key=lambda w: w.timestamp)

    def __repr__(self) -> str:
        return (
            f"RegisterHistory({self.name!r}, writes={len(self.writes) - 1}, "
            f"reads={len(self.reads)})"
        )


class _NullRecord:
    """Shared inert record returned by :class:`NullRegisterHistory`."""

    __slots__ = ()

    def respond(self, time: float) -> None:
        pass

    def complete(self, time: float, value: Any, timestamp: Timestamp) -> None:
        pass

    def __repr__(self) -> str:
        return "NullRecord()"


_NULL_RECORD = _NullRecord()


class NullRegisterHistory:
    """A drop-in history that records nothing.

    Sweeps that never audit their histories (``check_spec=False`` and no
    post-hoc trace analysis) otherwise pay one record allocation plus list
    append per operation and hold every record alive for the whole run.
    Deployments built with ``record_history=False`` use this instead; any
    attempt to *query* such a history fails loudly via the missing
    attribute rather than returning silently empty results.
    """

    __slots__ = ("name",)

    def __init__(self, name: str = "X", initial_value: Any = None) -> None:
        self.name = name

    def begin_write(
        self, process: int, time: float, value: Any, timestamp: Timestamp
    ) -> _NullRecord:
        return _NULL_RECORD

    def begin_read(self, process: int, time: float) -> _NullRecord:
        return _NULL_RECORD

    def __repr__(self) -> str:
        return f"NullRegisterHistory({self.name!r})"
