"""Futures for the simulation kernel.

A :class:`Future` is a single-assignment cell that coroutine processes can
suspend on.  Callbacks registered on a future run synchronously when it is
resolved, in registration order; this keeps delivery deterministic.
"""

from typing import Any, Callable, List, Optional


class FutureError(RuntimeError):
    """Raised on invalid future usage (double resolve, unresolved result)."""


class Future:
    """A single-assignment result cell.

    Futures may be resolved with a value or failed with an exception.
    Coroutines yield a future to suspend until it settles.
    """

    __slots__ = ("_value", "_exception", "_done", "_callbacks", "label")

    def __init__(self, label: str = "") -> None:
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._done = False
        self._callbacks: List[Callable[["Future"], None]] = []
        self.label = label

    @property
    def done(self) -> bool:
        """True once the future has been resolved or failed."""
        return self._done

    @property
    def failed(self) -> bool:
        """True if the future settled with an exception."""
        return self._done and self._exception is not None

    @property
    def exception(self) -> Optional[BaseException]:
        """The exception the future failed with, or None.

        Unlike :meth:`result` this never raises, so rejection paths
        (timeouts, cancelled operations) can be inspected without
        try/except plumbing.
        """
        return self._exception

    def result(self) -> Any:
        """Return the value, raising the stored exception if it failed."""
        if not self._done:
            raise FutureError(f"future {self.label!r} is not resolved yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    def resolve(self, value: Any = None) -> None:
        """Settle the future with ``value`` and run callbacks."""
        if self._done:
            raise FutureError(f"future {self.label!r} resolved twice")
        self._value = value
        self._done = True
        self._run_callbacks()

    def fail(self, exception: BaseException) -> None:
        """Settle the future with an exception and run callbacks."""
        if self._done:
            raise FutureError(f"future {self.label!r} resolved twice")
        self._exception = exception
        self._done = True
        self._run_callbacks()

    def add_callback(self, callback: Callable[["Future"], None]) -> None:
        """Register ``callback(self)``; runs immediately if already settled."""
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _run_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        if not self._done:
            state = "pending"
        elif self._exception is not None:
            state = f"failed({self._exception!r})"
        else:
            state = f"done({self._value!r})"
        return f"Future({self.label!r}, {state})"


def gather(futures: List[Future], label: str = "gather") -> Future:
    """Return a future resolving to the list of results of ``futures``.

    Fails with the first exception if any input future fails.
    An empty list resolves immediately to ``[]``.
    """
    combined = Future(label)
    remaining = len(futures)
    if remaining == 0:
        combined.resolve([])
        return combined

    def on_done(_: Future) -> None:
        nonlocal remaining
        if combined.done:
            return
        remaining -= 1
        for fut in futures:
            if fut.done and fut.failed:
                combined.fail(fut.exception)
                return
        if remaining == 0:
            combined.resolve([fut.result() for fut in futures])

    for fut in futures:
        fut.add_callback(on_done)
    return combined
