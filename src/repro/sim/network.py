"""Reliable asynchronous message passing.

Matches the model assumed by the probabilistic quorum algorithm (Section 4
of the paper): "every message sent is eventually received, and every message
received was previously sent but not yet delivered" — unless failure
injection is explicitly enabled, in which case crashed nodes drop traffic
(the fail-stop availability model of Section 4's analysis).

Delivery order between a pair of nodes follows sampled delays, so messages
may be reordered — the protocols above must tolerate that, and timestamps
make them do so.

A probabilistic message-loss mode (``loss_rate``) weakens the reliability
assumption: each message is independently destroyed with the given
probability, drawn from a dedicated RNG stream so enabling loss never
perturbs delay sampling.  Retrying clients must then tolerate losing any
individual query, reply, update or ack — the regime of the
Mostéfaoui–Raynal crash-prone register constructions.
"""

from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.sim.delays import DelayModel
from repro.sim.failures import FailureInjector
from repro.sim.metrics import MessageStats
from repro.sim.scheduler import Scheduler


class Node:
    """Base class for anything addressable on the network.

    Subclasses override :meth:`on_message`.  A node is registered under a
    unique integer id by :meth:`Network.add_node`.
    """

    def __init__(self) -> None:
        self.node_id: Optional[int] = None
        self.network: Optional["Network"] = None

    def on_message(self, src: int, message: Any) -> None:
        """Handle a delivered message.  Default: ignore."""

    def send(self, dst: int, message: Any) -> None:
        """Convenience wrapper around :meth:`Network.send`."""
        if self.network is None or self.node_id is None:
            raise RuntimeError("node is not attached to a network")
        self.network.send(self.node_id, dst, message)


class Network:
    """Point-to-point message delivery with a pluggable delay model."""

    def __init__(
        self,
        scheduler: Scheduler,
        delay_model: DelayModel,
        rng: np.random.Generator,
        failures: Optional[FailureInjector] = None,
        loss_rate: float = 0.0,
        loss_rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.scheduler = scheduler
        self.delay_model = delay_model
        self.rng = rng
        self.failures = failures or FailureInjector()
        self.stats = MessageStats()
        self.loss_rate = loss_rate
        # Loss draws come from their own stream so that turning loss on
        # (or off) leaves the delay sequence bit-identical.
        self._loss_rng = loss_rng if loss_rng is not None else rng
        self._nodes: Dict[int, Node] = {}
        self._next_id = 0
        self._taps: list = []

    def set_message_loss(
        self, loss_rate: float, rng: Optional[np.random.Generator] = None
    ) -> None:
        """Enable (or disable, with 0.0) probabilistic message loss."""
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.loss_rate = loss_rate
        if rng is not None:
            self._loss_rng = rng

    def add_node(self, node: Node, node_id: Optional[int] = None) -> int:
        """Register ``node`` and return its id.

        Ids are assigned sequentially unless an explicit id is given.
        """
        if node_id is None:
            node_id = self._next_id
        if node_id in self._nodes:
            raise ValueError(f"node id {node_id} already registered")
        self._next_id = max(self._next_id, node_id + 1)
        self._nodes[node_id] = node
        node.node_id = node_id
        node.network = self
        return node_id

    def node(self, node_id: int) -> Node:
        """Look up a node by id."""
        return self._nodes[node_id]

    @property
    def node_ids(self) -> list:
        """All registered node ids, sorted."""
        return sorted(self._nodes)

    def add_tap(self, tap: Callable[[int, int, Any], None]) -> None:
        """Register an observer called as ``tap(src, dst, message)`` on send."""
        self._taps.append(tap)

    def send(self, src: int, dst: int, message: Any) -> None:
        """Send ``message`` from ``src`` to ``dst`` with a sampled delay."""
        if dst not in self._nodes:
            raise KeyError(f"unknown destination node {dst}")
        kind = getattr(message, "kind", None) or type(message).__name__
        self.stats.record_send(src, dst, kind)
        for tap in self._taps:
            tap(src, dst, message)
        # One loss draw per send whenever loss is on, before any fault
        # check, so the loss stream advances identically however many
        # nodes happen to be crashed.
        lost = self.loss_rate > 0.0 and self._loss_rng.random() < self.loss_rate
        if not self.failures.can_deliver(src, dst):
            self.stats.record_drop(src, dst, kind, reason="fault")
            return
        if lost:
            self.stats.record_drop(src, dst, kind, reason="loss")
            return
        delay = self.delay_model.sample(self.rng, src, dst)
        if delay <= 0:
            raise ValueError(f"delay model produced non-positive delay {delay}")
        self.scheduler.schedule(delay, self._deliver, src, dst, message, kind)

    def _deliver(self, src: int, dst: int, message: Any, kind: str) -> None:
        # A node that crashed while the message was in flight drops it.
        if not self.failures.can_deliver(src, dst):
            self.stats.record_drop(src, dst, kind, reason="fault")
            return
        self.stats.record_delivery(src, dst, kind)
        self._nodes[dst].on_message(src, message)

    def broadcast(self, src: int, dsts: list, message: Any) -> None:
        """Send the same message to every destination in ``dsts``."""
        for dst in dsts:
            self.send(src, dst, message)

    def __repr__(self) -> str:
        return (
            f"Network({len(self._nodes)} nodes, delay={self.delay_model!r}, "
            f"{self.stats!r})"
        )
