"""Reliable asynchronous message passing.

Matches the model assumed by the probabilistic quorum algorithm (Section 4
of the paper): "every message sent is eventually received, and every message
received was previously sent but not yet delivered" — unless failure
injection is explicitly enabled, in which case crashed nodes drop traffic
(the fail-stop availability model of Section 4's analysis).

Delivery order between a pair of nodes follows sampled delays, so messages
may be reordered — the protocols above must tolerate that, and timestamps
make them do so.

A probabilistic message-loss mode (``loss_rate``) weakens the reliability
assumption: each message is independently destroyed with the given
probability, drawn from a dedicated RNG stream so enabling loss never
perturbs delay sampling.  Retrying clients must then tolerate losing any
individual query, reply, update or ack — the regime of the
Mostéfaoui–Raynal crash-prone register constructions.

Hot path: a simulated message costs one stats update, one loss draw (when
loss is on), one fault check, one delay draw and one scheduler push.
:meth:`Network.broadcast` amortises the delay (and loss) draws over the
whole destination list with :meth:`DelayModel.sample_batch`, so a k-member
quorum round pays one vectorized Generator call instead of k scalar ones —
with a stream-consumption order identical to k individual sends.
"""

from typing import Any, Callable, Dict, Optional, Sequence

import numpy as np

from repro.sim import kernel
from repro.sim.delays import DelayModel
from repro.sim.failures import FailureInjector
from repro.sim.rng import derive_seed
from repro.sim.scheduler import Scheduler


def _kind_of(message: Any) -> str:
    """The stats label of a message: its ``kind`` or its class name.

    Protocol messages precompute ``kind`` as a class attribute, so the
    common case is a single attribute load; arbitrary payloads (tests send
    strings) fall back to the type name.
    """
    try:
        kind = message.kind
    except AttributeError:
        return message.__class__.__name__
    return kind if kind else message.__class__.__name__


def _default_loss_rng(rng: np.random.Generator) -> np.random.Generator:
    """An independent loss stream derived from the delay stream's identity.

    The loss stream must never share state with the delay stream — loss
    draws advancing the delay stream would make ``loss_rate > 0`` perturb
    every delay in the run.  We derive a child seed from the delay
    stream's originating ``SeedSequence`` (entropy + spawn key) via
    :func:`derive_seed`, so the default is deterministic per deployment
    seed yet statistically independent of the delay draws.
    """
    seed_seq = getattr(rng.bit_generator, "seed_seq", None)
    entropy = getattr(seed_seq, "entropy", None)
    base = int(entropy) if isinstance(entropy, (int, np.integer)) else 0
    spawn_key = tuple(getattr(seed_seq, "spawn_key", ()) or ())
    return np.random.default_rng(
        derive_seed(base, "network-loss", *[int(k) for k in spawn_key])
    )


class Node:
    """Base class for anything addressable on the network.

    Subclasses override :meth:`on_message`.  A node is registered under a
    unique integer id by :meth:`Network.add_node`.
    """

    def __init__(self) -> None:
        self.node_id: Optional[int] = None
        self.network: Optional["Network"] = None

    def on_message(self, src: int, message: Any) -> None:
        """Handle a delivered message.  Default: ignore."""

    def send(self, dst: int, message: Any) -> None:
        """Convenience wrapper around :meth:`Network.send`."""
        if self.network is None or self.node_id is None:
            raise RuntimeError("node is not attached to a network")
        self.network.send(self.node_id, dst, message)


class Network:
    """Point-to-point message delivery with a pluggable delay model."""

    def __init__(
        self,
        scheduler: Scheduler,
        delay_model: DelayModel,
        rng: np.random.Generator,
        failures: Optional[FailureInjector] = None,
        loss_rate: float = 0.0,
        loss_rng: Optional[np.random.Generator] = None,
        detailed_stats: bool = True,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.scheduler = scheduler
        self.delay_model = delay_model
        self.rng = rng
        self.failures = failures or FailureInjector()
        self.stats = kernel.make_message_stats(detailed=detailed_stats)
        self.loss_rate = loss_rate
        # Loss draws come from their own stream so that turning loss on
        # (or off) leaves the delay sequence bit-identical.  The default
        # is an independent child stream, never the delay rng itself.
        self._loss_rng = loss_rng if loss_rng is not None else _default_loss_rng(rng)
        self._nodes: Dict[int, Node] = {}
        self._next_id = 0
        self._taps: list = []
        # Adversary hook (repro.adversary): consulted per message *after*
        # the loss draw and fault check, so attaching one never perturbs
        # the loss or delay streams of messages it passes through, and its
        # drop budget is spent only on otherwise-deliverable traffic.
        self._adversary: Optional[Any] = None
        # Native kernel backend: replace the _deliver bound method with
        # the C trampoline (same semantics, no interpreter frame per
        # delivery).  It is installed as an *instance attribute* so trace
        # taps that wrap ``network._deliver`` keep working unchanged.
        deliver_core = kernel.make_delivery_core(
            self.stats, self.failures, self._nodes
        )
        if deliver_core is not None:
            self._deliver = deliver_core
        # Same trick for the send hot path: a C callable shadowing the
        # bound method, re-reading the mutable knobs (loss, taps,
        # adversary) from this Network on every call.
        send_core = kernel.make_send_core(self)
        if send_core is not None:
            self.send = send_core
        # And for the quorum fan-out: the C broadcast covers the healthy
        # fast branch and calls the Python method below for every other
        # configuration (taps, faults, loss, adversary, exotic delays).
        broadcast_core = kernel.make_broadcast_core(self)
        if broadcast_core is not None:
            self.broadcast = broadcast_core

    def set_adversary(self, adversary: Optional[Any]) -> None:
        """Install (or with None remove) a message-level adversary.

        The adversary's ``intercept(src, dst, message, kind, now)`` is
        called for every otherwise-deliverable message and returns None to
        pass it through, the string ``"drop"`` to destroy it (recorded
        with drop reason ``"adversary"``), or a non-negative float of
        *extra* delay added on top of the sampled one.
        """
        self._adversary = adversary

    def set_message_loss(
        self, loss_rate: float, rng: Optional[np.random.Generator] = None
    ) -> None:
        """Enable (or disable, with 0.0) probabilistic message loss."""
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.loss_rate = loss_rate
        if rng is not None:
            self._loss_rng = rng

    def add_node(self, node: Node, node_id: Optional[int] = None) -> int:
        """Register ``node`` and return its id.

        Ids are assigned sequentially unless an explicit id is given.
        """
        if node_id is None:
            node_id = self._next_id
        if node_id in self._nodes:
            raise ValueError(f"node id {node_id} already registered")
        self._next_id = max(self._next_id, node_id + 1)
        self._nodes[node_id] = node
        node.node_id = node_id
        node.network = self
        return node_id

    def node(self, node_id: int) -> Node:
        """Look up a node by id."""
        return self._nodes[node_id]

    @property
    def node_ids(self) -> list:
        """All registered node ids, sorted."""
        return sorted(self._nodes)

    def add_tap(self, tap: Callable[[int, int, Any], None]) -> None:
        """Register an observer called as ``tap(src, dst, message)`` on send."""
        self._taps.append(tap)

    def send(self, src: int, dst: int, message: Any) -> None:
        """Send ``message`` from ``src`` to ``dst`` with a sampled delay."""
        if dst not in self._nodes:
            raise KeyError(f"unknown destination node {dst}")
        kind = _kind_of(message)
        self.stats.record_send(src, dst, kind)
        if self._taps:
            for tap in self._taps:
                tap(src, dst, message)
        # One loss draw per send whenever loss is on, before any fault
        # check, so the loss stream advances identically however many
        # nodes happen to be crashed.
        lost = self.loss_rate > 0.0 and self._loss_rng.random() < self.loss_rate
        failures = self.failures
        if failures.active and not failures.can_deliver(src, dst):
            self.stats.record_drop(src, dst, kind, reason="fault")
            return
        if lost:
            self.stats.record_drop(src, dst, kind, reason="loss")
            return
        extra = 0.0
        adversary = self._adversary
        if adversary is not None:
            action = adversary.intercept(
                src, dst, message, kind, self.scheduler.now
            )
            if action == "drop":
                self.stats.record_drop(src, dst, kind, reason="adversary")
                return
            if action is not None:
                extra = action
        delay = self.delay_model.sample(self.rng, src, dst)
        if delay <= 0:
            raise ValueError(f"delay model produced non-positive delay {delay}")
        # Deliveries are never cancelled (in-flight crashes are checked at
        # delivery time), so skip the EventHandle allocation entirely.
        self.scheduler.schedule_uncancellable(
            delay + extra, self._deliver, src, dst, message, kind
        )

    def _deliver(self, src: int, dst: int, message: Any, kind: str) -> None:
        # A node that crashed while the message was in flight drops it.
        failures = self.failures
        if failures.active and not failures.can_deliver(src, dst):
            self.stats.record_drop(src, dst, kind, reason="fault")
            return
        self.stats.record_delivery(src, dst, kind)
        self._nodes[dst].on_message(src, message)

    def broadcast(self, src: int, dsts: Sequence[int], message: Any) -> None:
        """Send the same message to every destination in ``dsts``.

        Batched hot path: one vectorized loss draw for the whole list and
        one :meth:`DelayModel.sample_batch` call for the surviving
        destinations, consuming both RNG streams in exactly the order a
        loop of :meth:`send` calls would (loss is drawn for every
        destination, delays only for deliverable, non-lost ones).
        """
        if not dsts:
            return
        if self._loss_rng is self.rng and self.loss_rate > 0.0:
            # Loss and delays share one stream (explicit caller choice):
            # draws interleave per destination, so batching would reorder
            # them.  Fall back to the serial path to preserve the stream.
            for dst in dsts:
                self.send(src, dst, message)
            return
        nodes = self._nodes
        for dst in dsts:
            if dst not in nodes:
                raise KeyError(f"unknown destination node {dst}")
        kind = _kind_of(message)
        stats = self.stats
        taps = self._taps
        failures = self.failures
        faults_active = failures.active
        loss_rate = self.loss_rate
        adversary = self._adversary
        extras: Dict[int, float] = {}
        if not taps and not faults_active and loss_rate == 0.0 and adversary is None:
            # Healthy, loss-free, untapped network — the overwhelmingly
            # common case: every destination is deliverable, so batch the
            # stats update too and skip the per-destination loop.
            stats.record_sends(src, len(dsts), kind)
            deliverable = list(dsts)
        else:
            loss_draws = (
                self._loss_rng.random(len(dsts)) if loss_rate > 0.0 else None
            )
            now = self.scheduler.now
            deliverable = []
            for index, dst in enumerate(dsts):
                stats.record_send(src, dst, kind)
                if taps:
                    for tap in taps:
                        tap(src, dst, message)
                if faults_active and not failures.can_deliver(src, dst):
                    stats.record_drop(src, dst, kind, reason="fault")
                    continue
                if loss_draws is not None and loss_draws[index] < loss_rate:
                    stats.record_drop(src, dst, kind, reason="loss")
                    continue
                if adversary is not None:
                    action = adversary.intercept(src, dst, message, kind, now)
                    if action == "drop":
                        stats.record_drop(src, dst, kind, reason="adversary")
                        continue
                    if action is not None and action > 0.0:
                        extras[len(deliverable)] = action
                deliverable.append(dst)
        if not deliverable:
            return
        delays = self.delay_model.sample_batch(self.rng, src, deliverable)
        deliver = self._deliver
        schedule_batch = getattr(
            self.scheduler, "schedule_deliveries", None
        )
        if schedule_batch is not None and not extras:
            # Native scheduler: one C call pushes the whole batch,
            # validating delays and consuming seq numbers exactly as the
            # loop below would.
            schedule_batch(delays, deliver, src, deliverable, message, kind)
            return
        schedule = self.scheduler.schedule_uncancellable
        for index, (dst, delay) in enumerate(zip(deliverable, delays)):
            if delay <= 0:
                raise ValueError(
                    f"delay model produced non-positive delay {delay}"
                )
            if extras:
                delay += extras.get(index, 0.0)
            schedule(delay, deliver, src, dst, message, kind)

    def __repr__(self) -> str:
        return (
            f"Network({len(self._nodes)} nodes, delay={self.delay_model!r}, "
            f"{self.stats!r})"
        )
