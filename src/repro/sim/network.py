"""Reliable asynchronous message passing.

Matches the model assumed by the probabilistic quorum algorithm (Section 4
of the paper): "every message sent is eventually received, and every message
received was previously sent but not yet delivered" — unless failure
injection is explicitly enabled, in which case crashed nodes drop traffic
(the fail-stop availability model of Section 4's analysis).

Delivery order between a pair of nodes follows sampled delays, so messages
may be reordered — the protocols above must tolerate that, and timestamps
make them do so.
"""

from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.sim.delays import DelayModel
from repro.sim.failures import FailureInjector
from repro.sim.metrics import MessageStats
from repro.sim.scheduler import Scheduler


class Node:
    """Base class for anything addressable on the network.

    Subclasses override :meth:`on_message`.  A node is registered under a
    unique integer id by :meth:`Network.add_node`.
    """

    def __init__(self) -> None:
        self.node_id: Optional[int] = None
        self.network: Optional["Network"] = None

    def on_message(self, src: int, message: Any) -> None:
        """Handle a delivered message.  Default: ignore."""

    def send(self, dst: int, message: Any) -> None:
        """Convenience wrapper around :meth:`Network.send`."""
        if self.network is None or self.node_id is None:
            raise RuntimeError("node is not attached to a network")
        self.network.send(self.node_id, dst, message)


class Network:
    """Point-to-point message delivery with a pluggable delay model."""

    def __init__(
        self,
        scheduler: Scheduler,
        delay_model: DelayModel,
        rng: np.random.Generator,
        failures: Optional[FailureInjector] = None,
    ) -> None:
        self.scheduler = scheduler
        self.delay_model = delay_model
        self.rng = rng
        self.failures = failures or FailureInjector()
        self.stats = MessageStats()
        self._nodes: Dict[int, Node] = {}
        self._next_id = 0
        self._taps: list = []

    def add_node(self, node: Node, node_id: Optional[int] = None) -> int:
        """Register ``node`` and return its id.

        Ids are assigned sequentially unless an explicit id is given.
        """
        if node_id is None:
            node_id = self._next_id
        if node_id in self._nodes:
            raise ValueError(f"node id {node_id} already registered")
        self._next_id = max(self._next_id, node_id + 1)
        self._nodes[node_id] = node
        node.node_id = node_id
        node.network = self
        return node_id

    def node(self, node_id: int) -> Node:
        """Look up a node by id."""
        return self._nodes[node_id]

    @property
    def node_ids(self) -> list:
        """All registered node ids, sorted."""
        return sorted(self._nodes)

    def add_tap(self, tap: Callable[[int, int, Any], None]) -> None:
        """Register an observer called as ``tap(src, dst, message)`` on send."""
        self._taps.append(tap)

    def send(self, src: int, dst: int, message: Any) -> None:
        """Send ``message`` from ``src`` to ``dst`` with a sampled delay."""
        if dst not in self._nodes:
            raise KeyError(f"unknown destination node {dst}")
        kind = getattr(message, "kind", None) or type(message).__name__
        self.stats.record_send(src, dst, kind)
        for tap in self._taps:
            tap(src, dst, message)
        if not self.failures.can_deliver(src, dst):
            self.stats.record_drop(src, dst)
            return
        delay = self.delay_model.sample(self.rng, src, dst)
        if delay <= 0:
            raise ValueError(f"delay model produced non-positive delay {delay}")
        self.scheduler.schedule(delay, self._deliver, src, dst, message)

    def _deliver(self, src: int, dst: int, message: Any) -> None:
        # A node that crashed while the message was in flight drops it.
        if not self.failures.can_deliver(src, dst):
            self.stats.record_drop(src, dst)
            return
        self.stats.record_delivery(src, dst)
        self._nodes[dst].on_message(src, message)

    def broadcast(self, src: int, dsts: list, message: Any) -> None:
        """Send the same message to every destination in ``dsts``."""
        for dst in dsts:
            self.send(src, dst, message)

    def __repr__(self) -> str:
        return (
            f"Network({len(self._nodes)} nodes, delay={self.delay_model!r}, "
            f"{self.stats!r})"
        )
