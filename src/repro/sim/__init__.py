"""Discrete-event simulation substrate.

This package provides the bottom layer of the reproduction: a deterministic
discrete-event scheduler, futures, generator-based coroutine processes, a
reliable asynchronous message-passing network with pluggable delay models,
seeded random-number streams, failure injection and metrics.

The layers above (quorum systems, register implementations, the iterative
framework) are built purely on the public API exported here.
"""

from repro.sim.scheduler import EventHandle, RepeatingHandle, Scheduler
from repro.sim.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    build_arrivals,
)
from repro.sim.futures import Future, FutureError, gather
from repro.sim.coroutines import Sleep, spawn
from repro.sim.delays import (
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    LogNormalDelay,
    PerLinkDelay,
    UniformDelay,
)
from repro.sim.network import Network, Node
from repro.sim.rng import RngRegistry
from repro.sim.metrics import MessageStats
from repro.sim.failures import FailureEvent, FailureInjector, FailureSchedule
from repro.sim.trace import TraceEvent, TraceLog

__all__ = [
    "ArrivalProcess",
    "BurstyArrivals",
    "ConstantDelay",
    "DiurnalArrivals",
    "PoissonArrivals",
    "DelayModel",
    "EventHandle",
    "ExponentialDelay",
    "FailureEvent",
    "FailureInjector",
    "FailureSchedule",
    "Future",
    "FutureError",
    "LogNormalDelay",
    "MessageStats",
    "Network",
    "Node",
    "PerLinkDelay",
    "RepeatingHandle",
    "RngRegistry",
    "Scheduler",
    "Sleep",
    "TraceEvent",
    "TraceLog",
    "UniformDelay",
    "build_arrivals",
    "gather",
    "spawn",
]
