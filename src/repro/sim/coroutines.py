"""Generator-based coroutine processes over the scheduler.

A process is a Python generator that yields either a :class:`~repro.sim.futures.Future`
(suspend until it settles) or a :class:`Sleep` (suspend for a duration).
The value sent back into the generator after yielding a future is the
future's result, so protocol code reads naturally::

    def client(register):
        value = yield register.read()
        yield Sleep(1.0)
        yield register.write(value + 1)

``spawn`` drives a generator on a scheduler and returns a future that
resolves with the generator's return value.
"""

from typing import Any, Generator, Optional

from repro.sim.futures import Future
from repro.sim.scheduler import Scheduler


class Sleep:
    """Yielded by a coroutine to suspend for ``duration`` simulated time."""

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"sleep duration must be non-negative, got {duration}")
        self.duration = duration

    def __repr__(self) -> str:
        return f"Sleep({self.duration})"


class CoroutineError(RuntimeError):
    """Raised when a coroutine yields an unsupported object."""


def spawn(
    scheduler: Scheduler,
    generator: Generator[Any, Any, Any],
    label: str = "",
) -> Future:
    """Run ``generator`` as a process on ``scheduler``.

    :returns: a future resolving to the generator's return value, or failing
        with any exception the generator raises.
    """
    done = Future(label or getattr(generator, "__name__", "coroutine"))

    def resume(value: Any = None, exception: Optional[BaseException] = None) -> None:
        try:
            if exception is not None:
                yielded = generator.throw(exception)
            else:
                yielded = generator.send(value)
        except StopIteration as stop:
            done.resolve(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via future
            done.fail(exc)
            return
        _wait_on(yielded)

    def _wait_on(yielded: Any) -> None:
        if isinstance(yielded, Future):
            def on_settle(fut: Future) -> None:
                if fut.failed:
                    # Defer to a fresh scheduler slot so callback chains stay flat.
                    scheduler.call_soon(resume, None, fut.exception)
                else:
                    scheduler.call_soon(resume, fut.result())
            yielded.add_callback(on_settle)
        elif isinstance(yielded, Sleep):
            scheduler.schedule(yielded.duration, resume)
        else:
            scheduler.call_soon(
                resume,
                None,
                CoroutineError(
                    f"coroutine {done.label!r} yielded unsupported {yielded!r}; "
                    "yield a Future or Sleep"
                ),
            )

    scheduler.call_soon(resume)
    return done
