"""Message and load accounting.

The experiments need three kinds of counters:

* total messages sent, to reproduce the Section 6.4 message-complexity
  comparison (Eqns 1-3),
* per-node delivery counts, to measure quorum-system *load* (the access
  frequency of the busiest replica server, Section 4), and
* drop accounting by kind, receiver and reason, so fault-injection
  experiments can report exactly what traffic a crash, partition or
  lossy link destroyed.

The recorders sit on the per-message hot path, so a ``detailed=False``
mode skips every per-kind/per-node ``Counter`` update and maintains only
the three scalar totals — for benchmarks and throughput-bound runs that
never read the breakdowns.

Reading a breakdown that was never collected raises
:class:`DetailNotCollected` instead of silently answering zero: a
``detailed=False`` deployment must never feed empty load or per-kind
numbers into the Section 6.4 / Section 4 tables as if they were measured.
"""

from collections import Counter
from typing import Dict, Optional, Tuple


class DetailNotCollected(RuntimeError):
    """A per-kind/per-node breakdown was read from scalar-totals stats.

    Raised by :class:`MessageStats` accessors when ``detailed=False``:
    the breakdown was never collected, so any answer would be a lie, not
    a zero.  Construct the stats (or the deployment, via
    ``detailed_stats=True``) in detailed mode to measure breakdowns.
    """


class MessageStats:
    """Counters for messages flowing through a :class:`~repro.sim.network.Network`."""

    __slots__ = (
        "detailed",
        "sent",
        "delivered",
        "dropped",
        "_by_sender",
        "_by_receiver",
        "_by_kind",
        "_delivered_by_kind",
        "_dropped_by_kind",
        "_dropped_by_receiver",
        "_dropped_by_reason",
        "_marks",
    )

    def __init__(self, detailed: bool = True) -> None:
        self.detailed = detailed
        self.sent: int = 0
        self.delivered: int = 0
        self.dropped: int = 0
        self._by_sender: Counter = Counter()
        self._by_receiver: Counter = Counter()
        self._by_kind: Counter = Counter()
        self._delivered_by_kind: Counter = Counter()
        self._dropped_by_kind: Counter = Counter()
        self._dropped_by_receiver: Counter = Counter()
        self._dropped_by_reason: Counter = Counter()
        self._marks: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Guarded breakdown accessors
    # ------------------------------------------------------------------ #

    def _breakdown(self, counter: Counter, name: str) -> Counter:
        if not self.detailed:
            raise DetailNotCollected(
                f"MessageStats.{name} was never collected: this instance "
                f"was built with detailed=False (scalar totals only). "
                f"Use detailed=True / RegisterDeployment(detailed_stats="
                f"True) to measure per-kind/per-node breakdowns."
            )
        return counter

    @property
    def by_sender(self) -> Counter:
        """Sends per source node (detailed mode only)."""
        return self._breakdown(self._by_sender, "by_sender")

    @property
    def by_receiver(self) -> Counter:
        """Deliveries per destination node (detailed mode only)."""
        return self._breakdown(self._by_receiver, "by_receiver")

    @property
    def by_kind(self) -> Counter:
        """Sends per message kind (detailed mode only)."""
        return self._breakdown(self._by_kind, "by_kind")

    @property
    def delivered_by_kind(self) -> Counter:
        """Deliveries per message kind (detailed mode only)."""
        return self._breakdown(self._delivered_by_kind, "delivered_by_kind")

    @property
    def dropped_by_kind(self) -> Counter:
        """Drops per message kind (detailed mode only)."""
        return self._breakdown(self._dropped_by_kind, "dropped_by_kind")

    @property
    def dropped_by_receiver(self) -> Counter:
        """Drops per would-be receiver (detailed mode only)."""
        return self._breakdown(
            self._dropped_by_receiver, "dropped_by_receiver"
        )

    @property
    def dropped_by_reason(self) -> Counter:
        """Drops per cause, "fault" or "loss" (detailed mode only)."""
        return self._breakdown(self._dropped_by_reason, "dropped_by_reason")

    # ------------------------------------------------------------------ #
    # Recording (hot path)
    # ------------------------------------------------------------------ #

    def record_send(self, src: int, dst: int, kind: Optional[str]) -> None:
        """Record one message leaving ``src`` for ``dst``."""
        self.sent += 1
        if self.detailed:
            self._by_sender[src] += 1
            if kind is not None:
                self._by_kind[kind] += 1

    def record_sends(self, src: int, count: int, kind: Optional[str]) -> None:
        """Record ``count`` messages leaving ``src`` in one update.

        Batch form of :meth:`record_send` for :meth:`Network.broadcast`'s
        fast path: one counter update per quorum round instead of one per
        member.  Equivalent to ``count`` individual calls.
        """
        self.sent += count
        if self.detailed:
            self._by_sender[src] += count
            if kind is not None:
                self._by_kind[kind] += count

    def record_delivery(
        self, src: int, dst: int, kind: Optional[str] = None
    ) -> None:
        """Record one message arriving at ``dst``."""
        self.delivered += 1
        if self.detailed:
            self._by_receiver[dst] += 1
            if kind is not None:
                self._delivered_by_kind[kind] += 1

    def record_drop(
        self,
        src: int,
        dst: int,
        kind: Optional[str] = None,
        reason: str = "fault",
    ) -> None:
        """Record a message lost to a crash, partition or lossy link.

        Drops are attributed to the would-be receiver and the message
        kind, so per-sender/per-kind accounting stays honest under fault
        injection (a bare total hides *what* was lost), and to a
        ``reason`` ("fault" for crash/partition, "loss" for probabilistic
        message loss).
        """
        self.dropped += 1
        if self.detailed:
            self._dropped_by_receiver[dst] += 1
            self._dropped_by_reason[reason] += 1
            if kind is not None:
                self._dropped_by_kind[kind] += 1

    # ------------------------------------------------------------------ #
    # Derived readings
    # ------------------------------------------------------------------ #

    def mark(self, name: str) -> None:
        """Remember the current sent-count under ``name`` (for deltas)."""
        self._marks[name] = self.sent

    def since_mark(self, name: str) -> int:
        """Messages sent since :meth:`mark` was called with ``name``."""
        return self.sent - self._marks.get(name, 0)

    def busiest_receiver(self) -> Tuple[Optional[int], int]:
        """Return (node id, delivery count) of the most-accessed node.

        Requires detailed mode; with ``detailed=False`` the per-receiver
        breakdown was never collected and this raises
        :class:`DetailNotCollected` rather than reporting ``(None, 0)``.
        """
        by_receiver = self._breakdown(self._by_receiver, "busiest_receiver")
        if not by_receiver:
            return None, 0
        node, count = by_receiver.most_common(1)[0]
        return node, count

    def receiver_load(self, node: int) -> float:
        """Fraction of all deliveries that went to ``node``.

        Requires detailed mode (see :meth:`busiest_receiver`).
        """
        by_receiver = self._breakdown(self._by_receiver, "receiver_load")
        if self.delivered == 0:
            return 0.0
        return by_receiver[node] / self.delivered

    def drop_rate(self) -> float:
        """Fraction of sent messages that were dropped."""
        if self.sent == 0:
            return 0.0
        return self.dropped / self.sent

    def reset(self) -> None:
        """Zero every counter — including the :meth:`mark` table.

        Marks record absolute sent-counts, so a stale mark against a
        zeroed ``sent`` would make :meth:`since_mark` go negative; the
        table is cleared along with everything else.  Fields are reset
        explicitly (not via ``__init__``) so subclasses adding state keep
        full control over their own reset behaviour.
        """
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self._by_sender.clear()
        self._by_receiver.clear()
        self._by_kind.clear()
        self._delivered_by_kind.clear()
        self._dropped_by_kind.clear()
        self._dropped_by_receiver.clear()
        self._dropped_by_reason.clear()
        self._marks.clear()

    def __repr__(self) -> str:
        return (
            f"MessageStats(sent={self.sent}, delivered={self.delivered}, "
            f"dropped={self.dropped})"
        )
