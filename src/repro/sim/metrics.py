"""Message and load accounting.

The experiments need three kinds of counters:

* total messages sent, to reproduce the Section 6.4 message-complexity
  comparison (Eqns 1-3),
* per-node delivery counts, to measure quorum-system *load* (the access
  frequency of the busiest replica server, Section 4), and
* drop accounting by kind, receiver and reason, so fault-injection
  experiments can report exactly what traffic a crash, partition or
  lossy link destroyed.

The recorders sit on the per-message hot path, so a ``detailed=False``
mode skips every per-kind/per-node ``Counter`` update and maintains only
the three scalar totals — for benchmarks and throughput-bound runs that
never read the breakdowns.
"""

from collections import Counter
from typing import Dict, Optional, Tuple


class MessageStats:
    """Counters for messages flowing through a :class:`~repro.sim.network.Network`."""

    __slots__ = (
        "detailed",
        "sent",
        "delivered",
        "dropped",
        "by_sender",
        "by_receiver",
        "by_kind",
        "delivered_by_kind",
        "dropped_by_kind",
        "dropped_by_receiver",
        "dropped_by_reason",
        "_marks",
    )

    def __init__(self, detailed: bool = True) -> None:
        self.detailed = detailed
        self.sent: int = 0
        self.delivered: int = 0
        self.dropped: int = 0
        self.by_sender: Counter = Counter()
        self.by_receiver: Counter = Counter()
        self.by_kind: Counter = Counter()
        self.delivered_by_kind: Counter = Counter()
        self.dropped_by_kind: Counter = Counter()
        self.dropped_by_receiver: Counter = Counter()
        self.dropped_by_reason: Counter = Counter()
        self._marks: Dict[str, int] = {}

    def record_send(self, src: int, dst: int, kind: Optional[str]) -> None:
        """Record one message leaving ``src`` for ``dst``."""
        self.sent += 1
        if self.detailed:
            self.by_sender[src] += 1
            if kind is not None:
                self.by_kind[kind] += 1

    def record_sends(self, src: int, count: int, kind: Optional[str]) -> None:
        """Record ``count`` messages leaving ``src`` in one update.

        Batch form of :meth:`record_send` for :meth:`Network.broadcast`'s
        fast path: one counter update per quorum round instead of one per
        member.  Equivalent to ``count`` individual calls.
        """
        self.sent += count
        if self.detailed:
            self.by_sender[src] += count
            if kind is not None:
                self.by_kind[kind] += count

    def record_delivery(
        self, src: int, dst: int, kind: Optional[str] = None
    ) -> None:
        """Record one message arriving at ``dst``."""
        self.delivered += 1
        if self.detailed:
            self.by_receiver[dst] += 1
            if kind is not None:
                self.delivered_by_kind[kind] += 1

    def record_drop(
        self,
        src: int,
        dst: int,
        kind: Optional[str] = None,
        reason: str = "fault",
    ) -> None:
        """Record a message lost to a crash, partition or lossy link.

        Drops are attributed to the would-be receiver and the message
        kind, so per-sender/per-kind accounting stays honest under fault
        injection (a bare total hides *what* was lost), and to a
        ``reason`` ("fault" for crash/partition, "loss" for probabilistic
        message loss).
        """
        self.dropped += 1
        if self.detailed:
            self.dropped_by_receiver[dst] += 1
            self.dropped_by_reason[reason] += 1
            if kind is not None:
                self.dropped_by_kind[kind] += 1

    def mark(self, name: str) -> None:
        """Remember the current sent-count under ``name`` (for deltas)."""
        self._marks[name] = self.sent

    def since_mark(self, name: str) -> int:
        """Messages sent since :meth:`mark` was called with ``name``."""
        return self.sent - self._marks.get(name, 0)

    def busiest_receiver(self) -> Tuple[Optional[int], int]:
        """Return (node id, delivery count) of the most-accessed node."""
        if not self.by_receiver:
            return None, 0
        node, count = self.by_receiver.most_common(1)[0]
        return node, count

    def receiver_load(self, node: int) -> float:
        """Fraction of all deliveries that went to ``node``."""
        if self.delivered == 0:
            return 0.0
        return self.by_receiver[node] / self.delivered

    def drop_rate(self) -> float:
        """Fraction of sent messages that were dropped."""
        if self.sent == 0:
            return 0.0
        return self.dropped / self.sent

    def reset(self) -> None:
        """Zero every counter.

        Fields are reset explicitly (not via ``__init__``) so subclasses
        adding state keep full control over their own reset behaviour.
        """
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.by_sender.clear()
        self.by_receiver.clear()
        self.by_kind.clear()
        self.delivered_by_kind.clear()
        self.dropped_by_kind.clear()
        self.dropped_by_receiver.clear()
        self.dropped_by_reason.clear()
        self._marks.clear()

    def __repr__(self) -> str:
        return (
            f"MessageStats(sent={self.sent}, delivered={self.delivered}, "
            f"dropped={self.dropped})"
        )
