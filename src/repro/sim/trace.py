"""Structured event tracing for simulations.

A :class:`TraceLog` taps a :class:`~repro.sim.network.Network` and records
every message send (and, via the shared scheduler clock, when it was
sent), with an optional cap on retained events.  Query helpers slice the
log by time window, node and message kind, and an ASCII timeline renderer
aids debugging of protocol interleavings — the practical tooling a
production simulator needs once a run misbehaves.

The cap is a **ring buffer**: at ``max_events`` the *oldest* events are
evicted so the log always holds the most recent tail of the run — the
part that explains a late misbehaviour — with ``dropped_events`` counting
evictions.  (The original implementation discarded the newest events,
keeping the boring warm-up and losing the interesting tail.)

For richer, per-operation views (invoke → quorum rounds → retries →
response) see the span log in :mod:`repro.obs.spans`, which supersedes
this flat tap for operation-level debugging; ``TraceLog`` remains the
message-level view.
"""

import math
from collections import deque
from typing import Any, Callable, Deque, List, Optional

from repro.sim.network import Network


class TraceEvent:
    """One traced message send."""

    __slots__ = ("time", "src", "dst", "kind", "payload")

    def __init__(self, time: float, src: int, dst: int, kind: str,
                 payload: Any) -> None:
        self.time = time
        self.src = src
        self.dst = dst
        self.kind = kind
        self.payload = payload

    def __repr__(self) -> str:
        return (
            f"TraceEvent(t={self.time:.4g}, {self.src}->{self.dst}, "
            f"{self.kind})"
        )


class TraceLog:
    """A bounded, queryable log of network events (newest kept at the cap)."""

    def __init__(self, network: Network, max_events: Optional[int] = None,
                 keep_payloads: bool = False) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be positive, got {max_events}")
        self.network = network
        self.max_events = max_events
        self.keep_payloads = keep_payloads
        self.events: Deque[TraceEvent] = deque(maxlen=max_events)
        self.dropped_events = 0
        network.add_tap(self._record)

    def _record(self, src: int, dst: int, message: Any) -> None:
        events = self.events
        if self.max_events is not None and len(events) == self.max_events:
            # The deque evicts the oldest event on append; count it.
            self.dropped_events += 1
        kind = getattr(message, "kind", None) or type(message).__name__
        payload = message if self.keep_payloads else None
        events.append(
            TraceEvent(self.network.scheduler.now, src, dst, kind, payload)
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def between(self, start: float, end: float) -> List[TraceEvent]:
        """Events with start <= time < end.

        An inverted window (``end < start``) is simply empty and returns
        ``[]``; :class:`ValueError` is reserved for bounds that cannot
        define a window at all (NaN).
        """
        if math.isnan(start) or math.isnan(end):
            raise ValueError(f"window bounds must not be NaN: [{start}, {end})")
        if end <= start:
            return []
        return [e for e in self.events if start <= e.time < end]

    def involving(self, node: int) -> List[TraceEvent]:
        """Events sent by or to ``node``."""
        return [e for e in self.events if node in (e.src, e.dst)]

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """Events whose message kind matches."""
        return [e for e in self.events if e.kind == kind]

    def matching(self, predicate: Callable[[TraceEvent], bool]) -> List[TraceEvent]:
        """Events satisfying an arbitrary predicate."""
        return [e for e in self.events if predicate(e)]

    def count_by_kind(self) -> dict:
        """Histogram of message kinds."""
        counts: dict = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #

    def render_timeline(
        self, limit: int = 50, start: float = 0.0,
        end: Optional[float] = None,
    ) -> str:
        """A compact textual timeline of (up to ``limit``) events.

        The window filter matches :meth:`between`: an inverted window is
        empty, and NaN bounds are rejected.
        """
        if limit < 1:
            raise ValueError(f"limit must be positive, got {limit}")
        if math.isnan(start) or (end is not None and math.isnan(end)):
            raise ValueError(
                f"window bounds must not be NaN: [{start}, {end})"
            )
        if end is None:
            window = [e for e in self.events if e.time >= start]
        else:
            window = [e for e in self.events if start <= e.time < end]
        lines = [f"timeline: {len(window)} events"
                 + (f" (showing first {limit})" if len(window) > limit else "")]
        for event in window[:limit]:
            lines.append(
                f"  t={event.time:9.4f}  n{event.src:<3} -> n{event.dst:<3}  "
                f"{event.kind}"
            )
        if self.dropped_events:
            lines.append(
                f"  ... {self.dropped_events} earlier events evicted "
                f"(cap {self.max_events})"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return (
            f"TraceLog({len(self.events)} events, "
            f"dropped={self.dropped_events})"
        )
