"""Deterministic discrete-event scheduler.

The scheduler maintains a priority queue of events ordered by simulated time,
with a monotone sequence number breaking ties so that events scheduled first
run first.  All nondeterminism in a simulation therefore comes from the
random-number streams, never from the event queue itself, which makes every
run exactly reproducible from its root seed.

Heap entries are plain ``(time, seq, handle)`` tuples rather than bare
:class:`EventHandle` objects: heap sift comparisons then use C-level tuple
ordering instead of calling ``EventHandle.__lt__`` per comparison, which is
the single hottest operation in a simulation (every message is one push and
one pop).  The ``seq`` tiebreaker guarantees the comparison never reaches
the third element, so handles themselves are never compared.
"""

import heapq
from typing import Any, Callable, List, Optional, Tuple

_heappush = heapq.heappush
_heappop = heapq.heappop


class SchedulerError(RuntimeError):
    """Raised on invalid scheduler usage (e.g. scheduling in the past)."""


class EventHandle:
    """A cancellable reference to a scheduled event.

    Cancellation is lazy: the heap entry stays in the queue but is skipped
    when popped.  This keeps :meth:`Scheduler.cancel` O(1).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_owner", "_dequeued")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable,
        args: tuple,
        owner: Optional["Scheduler"] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._owner = owner
        self._dequeued = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        # Keep the owner's live-event counter exact: a handle leaves the
        # live count exactly once — here, or when it is popped and run.
        if self._owner is not None and not self._dequeued:
            self._owner._live -= 1

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"EventHandle(t={self.time:.6g}, seq={self.seq}, {name}, {state})"


class RepeatingHandle:
    """A cancellable reference to a repeating event chain.

    Each firing schedules the next occurrence, so cancellation must go
    through this wrapper rather than any single :class:`EventHandle`.
    """

    __slots__ = ("_current", "cancelled")

    def __init__(self) -> None:
        self._current: Optional[EventHandle] = None
        self.cancelled = False

    def cancel(self) -> None:
        """Stop the chain: no further occurrences fire.  Idempotent."""
        self.cancelled = True
        if self._current is not None:
            self._current.cancel()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "active"
        return f"RepeatingHandle({state}, next={self._current!r})"


class Scheduler:
    """A discrete-event scheduler with simulated time.

    Example::

        sched = Scheduler()
        sched.schedule(1.5, print, "hello at t=1.5")
        sched.run()
    """

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, EventHandle]] = []
        self._now: float = 0.0
        self._seq: int = 0
        self._events_processed: int = 0
        self._stopped: bool = False
        self._live: int = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of non-cancelled events still queued.

        Maintained as a live counter (incremented on schedule, decremented
        on first cancel or on execution), so reading it is O(1) instead of
        an O(n) scan of the queue — it is polled on hot paths.
        """
        return self._live

    def _push(self, time: float, callback: Callable, args: tuple) -> EventHandle:
        """Validated fast path shared by every schedule entry point."""
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, callback, args, owner=self)
        self._live += 1
        _heappush(self._queue, (time, seq, handle))
        return handle

    def schedule(self, delay: float, callback: Callable, *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SchedulerError(f"cannot schedule into the past (delay={delay})")
        return self._push(self._now + delay, callback, args)

    def schedule_uncancellable(
        self, delay: float, callback: Callable, *args: Any
    ) -> None:
        """Schedule an event that can never be cancelled; returns no handle.

        Hot-path variant for fire-and-forget events (message deliveries:
        the bulk of all events in a simulation).  The heap entry is a bare
        ``(time, seq, callback, args)`` tuple — no :class:`EventHandle`
        allocation, no cancellation bookkeeping.  Ordering is identical to
        :meth:`schedule`: the shared ``seq`` counter breaks ties, so heap
        comparisons never look past the second element even when handle
        and handle-free entries share the queue.
        """
        if delay < 0:
            raise SchedulerError(f"cannot schedule into the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        _heappush(self._queue, (self._now + delay, seq, callback, args))

    def schedule_at(self, time: float, callback: Callable, *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SchedulerError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        return self._push(time, callback, args)

    def call_soon(self, callback: Callable, *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at the current time (after queued events).

        ``now`` can never be in the past, so this skips the time validation
        of :meth:`schedule_at` entirely.
        """
        return self._push(self._now, callback, args)

    def schedule_repeating(
        self,
        interval: float,
        callback: Callable,
        *args: Any,
        first_delay: Optional[float] = None,
        until: Optional[float] = None,
    ) -> RepeatingHandle:
        """Run ``callback(*args)`` every ``interval`` time units until cancelled.

        The first occurrence fires after ``first_delay`` (default: one
        ``interval``).  With ``until`` set, the chain stops by itself once
        the next occurrence would fire past that simulated time — without
        it, repeating events keep the queue non-empty forever, so runs
        driving them must bound themselves with ``until`` / ``max_events``
        / ``stop_when``.

        Occurrence times are computed as ``base + i * interval`` (not by
        repeatedly adding ``interval``), and an occurrence that overshoots
        the horizon by at most ``interval * 1e-9`` — float representation
        drift, e.g. ``0.2 + 2 * 0.2 > 0.6`` — is snapped to fire exactly
        at ``t == until``.  An event landing on the horizon therefore
        fires exactly once, deterministically, on both kernel backends;
        before this rule such occurrences were silently dropped.
        """
        if interval <= 0:
            raise SchedulerError(
                f"repeating interval must be positive, got {interval}"
            )
        handle = RepeatingHandle()
        delay = interval if first_delay is None else first_delay
        base = self._now + delay
        tolerance = interval * 1e-9
        count = 0

        def occurrence(index: int) -> Optional[float]:
            """Time of occurrence ``index``, None once past the horizon."""
            time = base + index * interval
            if until is not None and time > until:
                return until if time - until <= tolerance else None
            return time

        def fire() -> None:
            nonlocal count
            if handle.cancelled:
                return
            count += 1
            next_time = occurrence(count)
            if next_time is not None:
                handle._current = self.schedule_at(next_time, fire)
            else:
                handle.cancelled = True
            callback(*args)

        first_time = occurrence(0)
        if first_time is None:
            handle.cancelled = True
            return handle
        if first_time != base:
            handle._current = self.schedule_at(first_time, fire)
        else:
            handle._current = self.schedule(delay, fire)
        return handle

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        queue = self._queue
        while queue:
            entry = _heappop(queue)
            if len(entry) == 4:
                time, _seq, callback, args = entry
                self._live -= 1
                self._now = time
                self._events_processed += 1
                callback(*args)
                return True
            time, _seq, handle = entry
            handle._dequeued = True
            if handle.cancelled:
                continue
            self._live -= 1
            self._now = time
            self._events_processed += 1
            handle.callback(*handle.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Run events until the queue drains or a limit is reached.

        :param until: stop once simulated time would exceed this value.
        :param max_events: stop after this many events (guards runaway sims).
        :param stop_when: predicate checked after every event.
        :returns: the simulated time at which the run stopped.
        """
        self._stopped = False
        executed = 0
        queue = self._queue
        unbounded = until is None and max_events is None and stop_when is None
        if unbounded:
            # Fast drain loop: no limit checks, one pop per event, the
            # event body inlined (run() is the hot loop of every
            # simulation; a step() call per event is measurable).
            while queue:
                if self._stopped:
                    break
                entry = _heappop(queue)
                if len(entry) == 4:
                    time, _seq, callback, args = entry
                else:
                    time, _seq, handle = entry
                    handle._dequeued = True
                    if handle.cancelled:
                        continue
                    callback = handle.callback
                    args = handle.args
                self._live -= 1
                self._now = time
                self._events_processed += 1
                callback(*args)
            return self._now
        while queue:
            if self._stopped:
                break
            head = queue[0]
            if len(head) == 4:
                head_time, _seq, callback, args = head
            else:
                head_time, _seq, handle = head
                if handle.cancelled:
                    handle._dequeued = True
                    _heappop(queue)
                    continue
                callback = handle.callback
                args = handle.args
            if until is not None and head_time > until:
                self._now = until
                break
            if max_events is not None and executed >= max_events:
                break
            _heappop(queue)
            if len(head) == 3:
                head[2]._dequeued = True
            self._live -= 1
            self._now = head_time
            self._events_processed += 1
            callback(*args)
            executed += 1
            if stop_when is not None and stop_when():
                break
        return self._now
