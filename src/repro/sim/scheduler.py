"""Deterministic discrete-event scheduler.

The scheduler maintains a priority queue of events ordered by simulated time,
with a monotone sequence number breaking ties so that events scheduled first
run first.  All nondeterminism in a simulation therefore comes from the
random-number streams, never from the event queue itself, which makes every
run exactly reproducible from its root seed.
"""

import heapq
from typing import Any, Callable, List, Optional


class SchedulerError(RuntimeError):
    """Raised on invalid scheduler usage (e.g. scheduling in the past)."""


class EventHandle:
    """A cancellable reference to a scheduled event.

    Cancellation is lazy: the heap entry stays in the queue but is skipped
    when popped.  This keeps :meth:`Scheduler.cancel` O(1).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_owner", "_dequeued")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable,
        args: tuple,
        owner: Optional["Scheduler"] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._owner = owner
        self._dequeued = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        # Keep the owner's live-event counter exact: a handle leaves the
        # live count exactly once — here, or when it is popped and run.
        if self._owner is not None and not self._dequeued:
            self._owner._live -= 1

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"EventHandle(t={self.time:.6g}, seq={self.seq}, {name}, {state})"


class RepeatingHandle:
    """A cancellable reference to a repeating event chain.

    Each firing schedules the next occurrence, so cancellation must go
    through this wrapper rather than any single :class:`EventHandle`.
    """

    __slots__ = ("_current", "cancelled")

    def __init__(self) -> None:
        self._current: Optional[EventHandle] = None
        self.cancelled = False

    def cancel(self) -> None:
        """Stop the chain: no further occurrences fire.  Idempotent."""
        self.cancelled = True
        if self._current is not None:
            self._current.cancel()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "active"
        return f"RepeatingHandle({state}, next={self._current!r})"


class Scheduler:
    """A discrete-event scheduler with simulated time.

    Example::

        sched = Scheduler()
        sched.schedule(1.5, print, "hello at t=1.5")
        sched.run()
    """

    def __init__(self) -> None:
        self._queue: List[EventHandle] = []
        self._now: float = 0.0
        self._seq: int = 0
        self._events_processed: int = 0
        self._stopped: bool = False
        self._live: int = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of non-cancelled events still queued.

        Maintained as a live counter (incremented on schedule, decremented
        on first cancel or on execution), so reading it is O(1) instead of
        an O(n) scan of the queue — it is polled on hot paths.
        """
        return self._live

    def schedule(self, delay: float, callback: Callable, *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SchedulerError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable, *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SchedulerError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        handle = EventHandle(time, self._seq, callback, args, owner=self)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._queue, handle)
        return handle

    def call_soon(self, callback: Callable, *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at the current time (after queued events)."""
        return self.schedule_at(self._now, callback, *args)

    def schedule_repeating(
        self,
        interval: float,
        callback: Callable,
        *args: Any,
        first_delay: Optional[float] = None,
    ) -> RepeatingHandle:
        """Run ``callback(*args)`` every ``interval`` time units until cancelled.

        The first occurrence fires after ``first_delay`` (default: one
        ``interval``).  Repeating events keep the queue non-empty forever,
        so runs driving them must bound themselves with ``until`` /
        ``max_events`` / ``stop_when``.
        """
        if interval <= 0:
            raise SchedulerError(
                f"repeating interval must be positive, got {interval}"
            )
        handle = RepeatingHandle()

        def fire() -> None:
            if handle.cancelled:
                return
            handle._current = self.schedule(interval, fire)
            callback(*args)

        delay = interval if first_delay is None else first_delay
        handle._current = self.schedule(delay, fire)
        return handle

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        while self._queue:
            handle = heapq.heappop(self._queue)
            if handle.cancelled:
                handle._dequeued = True
                continue
            handle._dequeued = True
            self._live -= 1
            self._now = handle.time
            self._events_processed += 1
            handle.callback(*handle.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Run events until the queue drains or a limit is reached.

        :param until: stop once simulated time would exceed this value.
        :param max_events: stop after this many events (guards runaway sims).
        :param stop_when: predicate checked after every event.
        :returns: the simulated time at which the run stopped.
        """
        self._stopped = False
        executed = 0
        while self._queue:
            if self._stopped:
                break
            head = self._queue[0]
            if head.cancelled:
                head._dequeued = True
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                self._now = until
                break
            if max_events is not None and executed >= max_events:
                break
            if not self.step():
                break
            executed += 1
            if stop_when is not None and stop_when():
                break
        return self._now
