"""Crash, partition and failure-timeline injection.

The paper analyses availability in the face of replica *server* crashes
(Section 4).  The injector lets experiments crash servers (messages to and
from a crashed node are silently dropped, matching the fail-stop model) and
partition the network into non-communicating groups.

:class:`FailureSchedule` scripts those primitives onto the simulated
clock: a timeline of timed crash/recover/partition/heal events (one-shot
or repeating) that experiments install on a scheduler, so churn and
fault-tolerance runs can exercise *ongoing* failures instead of a static
crash set fixed before the run.
"""

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.sim.scheduler import Scheduler


class FailureInjector:
    """Tracks crashed nodes and network partitions for a simulation."""

    def __init__(self) -> None:
        self._crashed: Set[int] = set()
        self._partition: Optional[list] = None  # list of frozensets or None
        # Plain attribute mirroring any_failures, maintained by every
        # mutator: the network reads it once per message, and a C-level
        # attribute load there is cheaper than a property call.  In the
        # common all-healthy case the per-message fault check is then a
        # single attribute read.
        self.active: bool = False
        # Lifetime event counters (chaos campaigns report these as the
        # fault "dose" a run actually received; repeating schedule entries
        # make the static timeline length an undercount).
        self.crashes_injected = 0
        self.recoveries = 0
        self.partitions_installed = 0
        self.heals = 0

    def _refresh_active(self) -> None:
        self.active = bool(self._crashed) or self._partition is not None

    @property
    def crashed(self) -> Set[int]:
        """The set of currently crashed node ids."""
        return set(self._crashed)

    @property
    def any_crashed(self) -> bool:
        """True while at least one node is down (O(1), hot-path safe)."""
        return bool(self._crashed)

    @property
    def any_failures(self) -> bool:
        """True while any crash or partition is active (O(1))."""
        return self.active

    def crash(self, node_id: int) -> None:
        """Crash a node; idempotent."""
        if node_id not in self._crashed:
            self.crashes_injected += 1
        self._crashed.add(node_id)
        self.active = True

    def crash_many(self, node_ids: Iterable[int]) -> None:
        """Crash several nodes at once."""
        before = len(self._crashed)
        self._crashed.update(node_ids)
        self.crashes_injected += len(self._crashed) - before
        self._refresh_active()

    def recover(self, node_id: int) -> None:
        """Recover a crashed node; no-op if it was up."""
        if node_id in self._crashed:
            self.recoveries += 1
        self._crashed.discard(node_id)
        self._refresh_active()

    def recover_many(self, node_ids: Iterable[int]) -> None:
        """Recover several nodes at once."""
        before = len(self._crashed)
        self._crashed.difference_update(node_ids)
        self.recoveries += before - len(self._crashed)
        self._refresh_active()

    def recover_all(self) -> None:
        """Bring every node back up."""
        self.recoveries += len(self._crashed)
        self._crashed.clear()
        self._refresh_active()

    def partition(self, groups: Iterable[Iterable[int]]) -> None:
        """Split the network: messages cross group boundaries get dropped.

        Nodes absent from every group remain able to talk to everyone.
        """
        self._partition = [frozenset(group) for group in groups]
        self.partitions_installed += 1
        self.active = True

    def heal_partition(self) -> None:
        """Remove any active partition."""
        if self._partition is not None:
            self.heals += 1
        self._partition = None
        self._refresh_active()

    def is_crashed(self, node_id: int) -> bool:
        """True if the node is currently crashed."""
        return node_id in self._crashed

    def can_deliver(self, src: int, dst: int) -> bool:
        """Whether a message from ``src`` can currently reach ``dst``.

        This sits on the per-message hot path, so the partition check is a
        single pass over the groups: delivery is allowed unless both
        endpoints belong to partition groups yet share none.
        """
        if src in self._crashed or dst in self._crashed:
            return False
        if self._partition is not None:
            src_grouped = dst_grouped = False
            for group in self._partition:
                src_in = src in group
                dst_in = dst in group
                if src_in and dst_in:
                    return True
                src_grouped = src_grouped or src_in
                dst_grouped = dst_grouped or dst_in
            if src_grouped and dst_grouped:
                return False
        return True

    def __repr__(self) -> str:
        part = f", partition={self._partition}" if self._partition else ""
        return f"FailureInjector(crashed={sorted(self._crashed)}{part})"


class ScheduleError(ValueError):
    """Raised on a malformed failure-schedule event."""


#: Actions a FailureEvent may perform, mapped to the injector calls.
_ACTIONS = ("crash", "recover", "recover_all", "partition", "heal")


@dataclass(frozen=True)
class FailureEvent:
    """One scripted failure-timeline entry.

    ``action`` is one of ``crash``, ``recover``, ``recover_all``,
    ``partition`` and ``heal``.  ``nodes`` names the affected nodes for
    crash/recover; ``groups`` the partition groups for ``partition``.
    A positive ``every`` makes the event repeat with that period, starting
    at ``time``.
    """

    time: float
    action: str
    nodes: Tuple[int, ...] = ()
    groups: Tuple[Tuple[int, ...], ...] = ()
    every: float = 0.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ScheduleError(f"event time must be non-negative: {self}")
        if self.action not in _ACTIONS:
            raise ScheduleError(
                f"unknown action {self.action!r}; known: {_ACTIONS}"
            )
        if self.every < 0:
            raise ScheduleError(f"repeat period must be non-negative: {self}")

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "FailureEvent":
        """Build an event from its plain-data (JSON-able) spec dict."""
        try:
            time = spec["time"]
            action = spec["action"]
        except (TypeError, KeyError):
            raise ScheduleError(
                f"event spec needs 'time' and 'action': {spec!r}"
            ) from None
        return cls(
            time=float(time),
            action=action,
            nodes=tuple(spec.get("nodes", ())),
            groups=tuple(tuple(g) for g in spec.get("groups", ())),
            every=float(spec.get("every", 0.0)),
        )


class FailureSchedule:
    """A scripted timeline of crash/recover/partition/heal events.

    Build one with the fluent helpers (:meth:`crash`, :meth:`recover`,
    :meth:`partition`, :meth:`heal`, :meth:`churn`) or from plain-data
    specs (:meth:`from_specs`), then :meth:`install` it on a scheduler.
    ``resolve`` maps scripted node labels (e.g. server *indices*) to
    network node ids at install time, so schedules stay deployment-
    independent data until then.
    """

    def __init__(self, events: Iterable[FailureEvent] = ()) -> None:
        self.events: List[FailureEvent] = sorted(
            events, key=lambda event: event.time
        )

    # -- builders ------------------------------------------------------ #

    def add(self, event: FailureEvent) -> "FailureSchedule":
        """Insert one event, keeping the timeline time-sorted."""
        self.events.append(event)
        self.events.sort(key=lambda entry: entry.time)
        return self

    def crash(
        self, time: float, nodes: Iterable[int], every: float = 0.0
    ) -> "FailureSchedule":
        """Crash ``nodes`` at ``time`` (repeating every ``every`` if > 0)."""
        return self.add(
            FailureEvent(time, "crash", nodes=tuple(nodes), every=every)
        )

    def recover(
        self, time: float, nodes: Iterable[int], every: float = 0.0
    ) -> "FailureSchedule":
        """Recover ``nodes`` at ``time``."""
        return self.add(
            FailureEvent(time, "recover", nodes=tuple(nodes), every=every)
        )

    def recover_all(self, time: float) -> "FailureSchedule":
        """Recover every crashed node at ``time``."""
        return self.add(FailureEvent(time, "recover_all"))

    def partition(
        self, time: float, groups: Iterable[Iterable[int]]
    ) -> "FailureSchedule":
        """Install a partition at ``time``."""
        return self.add(
            FailureEvent(
                time, "partition", groups=tuple(tuple(g) for g in groups)
            )
        )

    def heal(self, time: float) -> "FailureSchedule":
        """Heal any partition at ``time``."""
        return self.add(FailureEvent(time, "heal"))

    def outage(
        self, time: float, nodes: Iterable[int], duration: float
    ) -> "FailureSchedule":
        """Crash ``nodes`` at ``time`` and recover them ``duration`` later."""
        nodes = tuple(nodes)
        self.crash(time, nodes)
        return self.recover(time + duration, nodes)

    @classmethod
    def churn(
        cls,
        num_nodes: int,
        period: float,
        batch: int,
        outage: float,
        horizon: float,
        start: Optional[float] = None,
    ) -> "FailureSchedule":
        """A rotating-window churn timeline up to ``horizon``.

        Every ``period``, the next window of ``batch`` node indices
        (mod ``num_nodes``) goes down for ``outage`` time units — the
        E-EXT-CHURN failure process, expressed as scripted data.
        """
        if period <= 0:
            return cls()
        schedule = cls()
        cycle = 0
        time = period if start is None else start
        while time <= horizon:
            first = (cycle * batch) % num_nodes
            window = tuple(
                (first + offset) % num_nodes for offset in range(batch)
            )
            schedule.outage(time, window, outage)
            cycle += 1
            time += period
        return schedule

    @classmethod
    def from_specs(
        cls, specs: Sequence[Dict[str, Any]]
    ) -> "FailureSchedule":
        """Build a schedule from a list of plain-data event dicts."""
        return cls(FailureEvent.from_spec(spec) for spec in specs)

    def to_specs(self) -> List[Dict[str, Any]]:
        """The JSON-able form of this timeline (inverse of from_specs)."""
        specs = []
        for event in self.events:
            spec: Dict[str, Any] = {"time": event.time, "action": event.action}
            if event.nodes:
                spec["nodes"] = list(event.nodes)
            if event.groups:
                spec["groups"] = [list(g) for g in event.groups]
            if event.every:
                spec["every"] = event.every
            specs.append(spec)
        return specs

    # -- installation -------------------------------------------------- #

    def install(
        self,
        scheduler: Scheduler,
        injector: FailureInjector,
        resolve: Optional[Callable[[int], int]] = None,
    ) -> List[Any]:
        """Schedule every event; returns the cancellable handles.

        ``resolve`` maps each scripted node label to an injector node id
        (e.g. replica index -> network node id); identity by default.
        """
        mapper = resolve if resolve is not None else (lambda node: node)
        handles: List[Any] = []
        for event in self.events:
            apply_event = self._applier(event, injector, mapper)
            if event.every > 0:
                handles.append(
                    scheduler.schedule_repeating(
                        event.every, apply_event, first_delay=event.time
                    )
                )
            else:
                handles.append(scheduler.schedule_at(event.time, apply_event))
        return handles

    @staticmethod
    def _applier(
        event: FailureEvent,
        injector: FailureInjector,
        mapper: Callable[[int], int],
    ) -> Callable[[], None]:
        if event.action == "crash":
            nodes = [mapper(node) for node in event.nodes]
            return lambda: injector.crash_many(nodes)
        if event.action == "recover":
            nodes = [mapper(node) for node in event.nodes]
            return lambda: injector.recover_many(nodes)
        if event.action == "recover_all":
            return injector.recover_all
        if event.action == "partition":
            groups = [
                frozenset(mapper(node) for node in group)
                for group in event.groups
            ]
            return lambda: injector.partition(groups)
        return injector.heal_partition  # "heal"

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        if not self.events:
            return "FailureSchedule(empty)"
        return (
            f"FailureSchedule({len(self.events)} events, "
            f"t={self.events[0].time:g}..{self.events[-1].time:g})"
        )
