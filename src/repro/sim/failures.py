"""Crash and partition injection.

The paper analyses availability in the face of replica *server* crashes
(Section 4).  The injector lets experiments crash servers (messages to and
from a crashed node are silently dropped, matching the fail-stop model) and
partition the network into non-communicating groups.
"""

from typing import Iterable, Optional, Set


class FailureInjector:
    """Tracks crashed nodes and network partitions for a simulation."""

    def __init__(self) -> None:
        self._crashed: Set[int] = set()
        self._partition: Optional[list] = None  # list of frozensets or None

    @property
    def crashed(self) -> Set[int]:
        """The set of currently crashed node ids."""
        return set(self._crashed)

    def crash(self, node_id: int) -> None:
        """Crash a node; idempotent."""
        self._crashed.add(node_id)

    def crash_many(self, node_ids: Iterable[int]) -> None:
        """Crash several nodes at once."""
        self._crashed.update(node_ids)

    def recover(self, node_id: int) -> None:
        """Recover a crashed node; no-op if it was up."""
        self._crashed.discard(node_id)

    def recover_all(self) -> None:
        """Bring every node back up."""
        self._crashed.clear()

    def partition(self, groups: Iterable[Iterable[int]]) -> None:
        """Split the network: messages cross group boundaries get dropped.

        Nodes absent from every group remain able to talk to everyone.
        """
        self._partition = [frozenset(group) for group in groups]

    def heal_partition(self) -> None:
        """Remove any active partition."""
        self._partition = None

    def is_crashed(self, node_id: int) -> bool:
        """True if the node is currently crashed."""
        return node_id in self._crashed

    def can_deliver(self, src: int, dst: int) -> bool:
        """Whether a message from ``src`` can currently reach ``dst``."""
        if src in self._crashed or dst in self._crashed:
            return False
        if self._partition is not None:
            src_groups = [g for g in self._partition if src in g]
            dst_groups = [g for g in self._partition if dst in g]
            if src_groups and dst_groups:
                return any(src in g and dst in g for g in self._partition)
        return True

    def __repr__(self) -> str:
        part = f", partition={self._partition}" if self._partition else ""
        return f"FailureInjector(crashed={sorted(self._crashed)}{part})"
