"""Deterministic random-number streams.

Every source of randomness in a simulation (quorum selection per client,
message delays, failure injection, adversary choices) draws from its own
named stream derived from a single root seed.  Two simulations with the same
root seed and the same sequence of draws per stream are bit-for-bit
identical, regardless of the interleaving of draws *across* streams.

This mirrors the paper's model in Section 3, where the adversary controls
triggers but "cannot influence what random number is received in the next
step": the random tuple is fixed up front, independently of scheduling.
"""

import hashlib
import zlib
from typing import Dict

import numpy as np


def _stable_key(name: str) -> int:
    """A stable 32-bit key for a stream name (Python's hash() is salted)."""
    return zlib.crc32(name.encode("utf-8"))


def derive_seed(base: int, *components) -> int:
    """Derive an independent 63-bit seed from a base seed and components.

    Replaces ad-hoc ``base + prime_1*a + prime_2*b`` seed arithmetic, which
    collides whenever two component combinations land on the same linear
    sum.  Here the base and every component are fed through a keyed hash
    (BLAKE2b), so distinct component tuples give statistically independent
    seeds and the mapping is stable across processes and Python versions
    (``hash()`` is salted; this is not).

    Components may be ints, bools, floats, strings, bytes, or None.  The
    component's type participates in the hash, so ``derive_seed(s, 1)``,
    ``derive_seed(s, True)`` and ``derive_seed(s, "1")`` all differ.
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(repr(int(base)).encode("utf-8"))
    for component in components:
        if not isinstance(component, (int, bool, float, str, bytes, type(None))):
            raise TypeError(
                f"unhashable seed component type: {type(component).__name__}"
            )
        digest.update(b"\x1f")
        digest.update(type(component).__name__.encode("utf-8"))
        digest.update(b":")
        raw = component if isinstance(component, bytes) else repr(component).encode("utf-8")
        digest.update(raw)
    return int.from_bytes(digest.digest(), "big") >> 1


class RngRegistry:
    """A registry of independent named random streams under one root seed."""

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream for ``name``."""
        if name not in self._streams:
            seq = np.random.SeedSequence(
                entropy=self._seed, spawn_key=(_stable_key(name),)
            )
            self._streams[name] = np.random.default_rng(seq)
        return self._streams[name]

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry whose streams are independent of this one."""
        child = RngRegistry((self._seed * 1_000_003 + _stable_key(name)) % (2**63))
        return child

    def __repr__(self) -> str:
        return f"RngRegistry(seed={self._seed}, streams={sorted(self._streams)})"
