"""Kernel backend selection: pure-python reference vs compiled native.

The simulation hot path (event heap, drain loop, delivery bookkeeping)
exists twice: the always-available pure-python reference in
:mod:`repro.sim.scheduler` / :mod:`repro.sim.metrics`, and an optional C
extension under :mod:`repro._native`.  Both produce **byte-identical**
traces — RNG draws stay in Python on both paths, and the native heap
preserves the exact ``(time, seq)`` total order — so the backend is a
pure speed knob, never a semantics knob.

Selection, in priority order:

1. an explicit ``backend=`` argument to the factories below,
2. a process-wide override installed by :func:`select_backend`
   (the CLI's ``--kernel`` flag lands here),
3. the ``REPRO_KERNEL`` environment variable,
4. default: ``python``.

Requesting ``native`` when the extension is not built falls back to
pure python with a one-line warning on stderr (once per process) — a
toolchain-less machine must keep working.
"""

import os
import sys
from typing import Optional

from repro.sim.metrics import MessageStats
from repro.sim.scheduler import Scheduler

KERNEL_ENV = "REPRO_KERNEL"
BACKENDS = ("python", "native")

_override: Optional[str] = None
_warned_fallback = False


def _normalize(backend: str) -> str:
    name = backend.strip().lower()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {backend!r}; expected one of {BACKENDS}"
        )
    return name


def native_available() -> bool:
    """True iff the compiled kernel extension imports."""
    from repro._native import load_kernel

    return load_kernel() is not None


def native_import_error() -> Optional[str]:
    """Why the native kernel is unavailable (None when it loaded)."""
    from repro._native import import_error

    return import_error()


def select_backend(backend: Optional[str]) -> None:
    """Install a process-wide backend override (None clears it)."""
    global _override
    _override = None if backend is None else _normalize(backend)


def sync_worker_backend(backend: str) -> bool:
    """Align a (warm pool) worker with the parent's requested backend.

    Pool workers select their backend once, at pool creation; because the
    pool now outlives individual sweeps, a later ``--kernel`` /
    :func:`select_backend` change in the parent would otherwise leave warm
    workers silently running the old backend.  Every dispatched chunk
    carries the parent's :func:`requested_backend` and calls this before
    executing; the override is a single global write and the backend is
    consulted lazily per simulation, so re-syncing costs nothing when
    nothing changed.  Returns True when the worker actually switched.

    (Results are byte-identical across backends either way — this keeps
    the *speed* choice honest, it can never change a number.)
    """
    if requested_backend() == _normalize(backend):
        return False
    select_backend(backend)
    return True


def requested_backend() -> str:
    """The backend asked for, before availability is considered."""
    if _override is not None:
        return _override
    env = os.environ.get(KERNEL_ENV)
    if env:
        return _normalize(env)
    return "python"


def selected_backend() -> str:
    """The backend that will actually be used.

    Resolves ``native`` down to ``python`` (warning once) when the
    extension is not importable.
    """
    requested = requested_backend()
    if requested == "native" and not native_available():
        global _warned_fallback
        if not _warned_fallback:
            _warned_fallback = True
            print(
                "repro: native kernel unavailable "
                f"({native_import_error()}); falling back to pure-python "
                "backend",
                file=sys.stderr,
            )
        return "python"
    return requested


def make_scheduler(backend: Optional[str] = None):
    """Build a scheduler on the selected (or given) backend."""
    resolved = selected_backend() if backend is None else _resolve(backend)
    if resolved == "native":
        from repro._native.wrapper import NativeScheduler

        return NativeScheduler()
    return Scheduler()


def make_message_stats(detailed: bool = True, backend: Optional[str] = None):
    """Build message stats on the selected (or given) backend.

    Detailed (per-kind/per-node) collection is a pure-python feature on
    both backends — the native scalar counters only replace the
    ``detailed=False`` totals path, which is the only mode the hot
    benchmarks and large sweeps run in.
    """
    resolved = selected_backend() if backend is None else _resolve(backend)
    if resolved == "native" and not detailed:
        from repro._native.wrapper import NativeMessageStats

        return NativeMessageStats(detailed=False)
    return MessageStats(detailed=detailed)


def make_delivery_core(stats, failures, nodes):
    """Build the native delivery trampoline, or None on pure python.

    The trampoline is a C callable with ``Network._deliver``'s exact
    semantics; :class:`~repro.sim.network.Network` installs it as its
    ``_deliver`` instance attribute so existing trace taps that wrap
    ``network._deliver`` keep working on both backends.
    """
    if selected_backend() != "native":
        return None
    from repro._native import load_kernel

    return load_kernel().DeliveryCore(stats, failures, nodes)


def make_send_core(network):
    """Build the native send fast path, or None on pure python.

    A C callable with ``Network.send``'s exact semantics (stats, taps,
    loss draw, fault check, adversary, delay sample, heap push), only
    built when the network's scheduler is itself native so the delivery
    event can be pushed straight into the C heap.  Installed as the
    network's ``send`` instance attribute.
    """
    if selected_backend() != "native":
        return None
    from repro._native import load_kernel

    module = load_kernel()
    if not isinstance(network.scheduler, module.SchedulerCore):
        return None
    return module.SendCore(network)


def make_broadcast_core(network):
    """Build the native broadcast fast path, or None.

    A C callable covering the healthy fast branch of
    ``Network.broadcast`` (no taps, no active faults, no loss, no
    adversary, a built-in delay model): membership checks, one batched
    stats bump, then a native delay draw and inlined heap push per
    destination.  Any other configuration falls back, per call, to the
    original Python method.  Installed as the network's ``broadcast``
    instance attribute, like ``send``/``_deliver``.
    """
    if selected_backend() != "native":
        return None
    from repro._native import load_kernel

    module = load_kernel()
    if not isinstance(network.scheduler, module.SchedulerCore):
        return None
    return module.BroadcastCore(network)


def native_quorum_sampler():
    """The native ``choice(n, size=k, replace=False)`` sampler, or None.

    Only available when the extension was linked against numpy's C
    random library (``HAVE_FAST_RNG``).  The sampler draws from the
    Generator's own bit stream with numpy's exact algorithm, so its
    output — and the Generator state it leaves behind — is
    bit-identical to ``rng.choice``; backends can therefore be mixed
    freely without perturbing any trace.
    """
    if selected_backend() != "native":
        return None
    from repro._native import load_kernel

    module = load_kernel()
    if not getattr(module, "HAVE_FAST_RNG", 0):
        return None
    return module.quorum_sample


def make_server_core(server):
    """Build the native server-protocol fast path, or None.

    A C transcription of ``ReplicaServer.on_message`` (replica probe,
    timestamp compare, install-or-ignore, reply send), installed as the
    server's ``on_message`` instance attribute.  Gated on the *exact*
    ``ReplicaServer`` type — subclasses (Byzantine replicas, chaos
    mutants) override the handler and must keep their Python semantics —
    and on a native scheduler, so replies push straight into the C heap.
    The core re-checks the mutable hooks (adversary, detailed stats) per
    delivery and falls back to the Python handler when any is active.
    """
    if selected_backend() != "native":
        return None
    from repro._native import load_kernel
    from repro.registers.server import ReplicaServer

    module = load_kernel()
    if type(server) is not ReplicaServer:
        return None
    if not isinstance(server.network.scheduler, module.SchedulerCore):
        return None
    return module.ServerCore(server)


def make_client_core(client):
    """Build the native client reply-aggregation fast path, or None.

    A C transcription of ``QuorumRegisterClient.on_message`` plus the
    ``_finish``/``_teardown`` completion path, installed as the client's
    ``on_message`` instance attribute.  Exact-type gated like
    :func:`make_server_core`; per-delivery fallback conditions are the
    adversary, detailed stats, an op-level span and the online spec
    monitor.  The live latency histogram is observed natively.  Quorum
    sampling and retry jitter stay in Python, so the RNG draw order is
    untouched.
    """
    if selected_backend() != "native":
        return None
    from repro._native import load_kernel
    from repro.registers.client import QuorumRegisterClient

    module = load_kernel()
    if type(client) is not QuorumRegisterClient:
        return None
    if not isinstance(client.network.scheduler, module.SchedulerCore):
        return None
    return module.ClientCore(client)


def _resolve(backend: str) -> str:
    resolved = _normalize(backend)
    if resolved == "native" and not native_available():
        raise RuntimeError(
            f"native kernel backend requested explicitly but unavailable: "
            f"{native_import_error()}"
        )
    return resolved


def kernel_info() -> dict:
    """Diagnostics: requested/selected backends and native status."""
    return {
        "requested": requested_backend(),
        "selected": selected_backend(),
        "native_available": native_available(),
        "native_import_error": native_import_error(),
        "env": os.environ.get(KERNEL_ENV),
    }


class use_backend:
    """Context manager forcing a backend (tests compare both in-process).

    .. code-block:: python

        with use_backend("native"):
            deployment = RegisterDeployment.build(...)
    """

    def __init__(self, backend: Optional[str]) -> None:
        self._backend = backend
        self._previous: Optional[str] = None

    def __enter__(self):
        self._previous = _override
        select_backend(self._backend)
        return self

    def __exit__(self, *exc_info) -> None:
        global _override
        _override = self._previous
        return None
