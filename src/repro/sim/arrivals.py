"""Open-loop arrival processes for service-mode traffic.

A closed-loop workload (every runner in this repo before service mode)
issues its next operation only after the previous one settles, so the
system can never be pushed past saturation — offered load adapts to
observed latency.  An *open-loop* process generates arrivals from an
external clock regardless of completions, the regime a production
service actually faces; queueing delay and load shedding then become
measurable instead of being silently absorbed by the workload.

Three processes cover the classic traffic shapes:

* :class:`PoissonArrivals` — memoryless arrivals at a constant rate,
* :class:`BurstyArrivals` — geometric-size bursts of tightly spaced
  arrivals separated by long gaps, with the long-run mean rate held
  exactly at the configured value,
* :class:`DiurnalArrivals` — a non-homogeneous Poisson process whose
  rate swings sinusoidally over a configurable period (a compressed
  day/night cycle), sampled by Lewis–Shedler thinning.

Every draw comes from the caller-supplied Generator, so a seeded stream
makes the whole arrival timeline deterministic.  ``spec()``/
:func:`build_arrivals` round-trip each process through plain data for
the task/cache layer.
"""

import math
from typing import Any, Dict

import numpy as np


class ArrivalProcess:
    """Base class: draws the time until the next arrival."""

    def next_interarrival(self, rng: np.random.Generator, now: float) -> float:
        """A strictly positive gap until the next arrival after ``now``."""
        raise NotImplementedError

    @property
    def mean_rate(self) -> float:
        """Long-run arrivals per simulated time unit."""
        raise NotImplementedError

    def spec(self) -> Dict[str, Any]:
        """A plain-data description reconstructable by :func:`build_arrivals`."""
        raise NotImplementedError


#: Gap floor: a zero-length inter-arrival would schedule two arrivals at
#: the same instant, making event order depend on queue insertion only.
_FLOOR = 1e-9


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: exponential inter-arrival times at ``rate``."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        self._rate = rate
        self._scale = 1.0 / rate

    def next_interarrival(self, rng: np.random.Generator, now: float) -> float:
        return max(_FLOOR, rng.exponential(self._scale))

    @property
    def mean_rate(self) -> float:
        return self._rate

    def spec(self) -> Dict[str, Any]:
        return {"kind": "poisson", "rate": self._rate}

    def __repr__(self) -> str:
        return f"PoissonArrivals(rate={self._rate})"


class BurstyArrivals(ArrivalProcess):
    """Bursts of tightly spaced arrivals separated by idle gaps.

    Burst sizes are geometric with mean ``mean_burst``; within a burst,
    arrivals are Poisson at ``peakedness`` times the configured rate.
    The idle gap before each burst is sized so the long-run mean rate is
    exactly ``rate`` — raising ``peakedness`` squeezes the same traffic
    into sharper spikes without changing the offered load, which is what
    makes the comparison against :class:`PoissonArrivals` honest.
    """

    def __init__(
        self, rate: float, mean_burst: float = 8.0, peakedness: float = 10.0
    ) -> None:
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        if mean_burst < 1.0:
            raise ValueError(f"mean burst size must be >= 1, got {mean_burst}")
        if peakedness <= 1.0:
            raise ValueError(f"peakedness must be > 1, got {peakedness}")
        self._rate = rate
        self._mean_burst = mean_burst
        self._peakedness = peakedness
        self._intra_scale = 1.0 / (peakedness * rate)
        # Per burst of mean size m: one gap + (m - 1) intra-burst waits.
        # Solving m / (gap + (m - 1) * intra) = rate for the gap's mean:
        self._gap_mean = mean_burst / rate - (mean_burst - 1.0) * self._intra_scale
        self._remaining = 0

    def next_interarrival(self, rng: np.random.Generator, now: float) -> float:
        if self._remaining > 0:
            self._remaining -= 1
            return max(_FLOOR, rng.exponential(self._intra_scale))
        # New burst: draw its size, then wait out the idle gap to its
        # first arrival.
        self._remaining = int(rng.geometric(1.0 / self._mean_burst))
        self._remaining -= 1
        return max(_FLOOR, rng.exponential(self._gap_mean))

    @property
    def mean_rate(self) -> float:
        return self._rate

    def spec(self) -> Dict[str, Any]:
        return {
            "kind": "bursty",
            "rate": self._rate,
            "mean_burst": self._mean_burst,
            "peakedness": self._peakedness,
        }

    def __repr__(self) -> str:
        return (
            f"BurstyArrivals(rate={self._rate}, mean_burst={self._mean_burst}, "
            f"peakedness={self._peakedness})"
        )


class DiurnalArrivals(ArrivalProcess):
    """A sinusoidal day/night cycle: rate(t) = rate·(1 + a·sin(2πt/T)).

    Sampled by Lewis–Shedler thinning against the peak rate, which is
    exact for a non-homogeneous Poisson process (no stepwise
    approximation) and consumes the RNG stream deterministically: one
    exponential plus one uniform per candidate arrival.
    """

    def __init__(
        self, rate: float, period: float = 200.0, amplitude: float = 0.8
    ) -> None:
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
        self._rate = rate
        self._period = period
        self._amplitude = amplitude
        self._peak = rate * (1.0 + amplitude)
        self._peak_scale = 1.0 / self._peak
        self._omega = 2.0 * math.pi / period

    def rate_at(self, time: float) -> float:
        """The instantaneous arrival rate at simulated time ``time``."""
        return self._rate * (
            1.0 + self._amplitude * math.sin(self._omega * time)
        )

    def next_interarrival(self, rng: np.random.Generator, now: float) -> float:
        time = now
        while True:
            time += rng.exponential(self._peak_scale)
            if rng.random() * self._peak <= self.rate_at(time):
                return max(_FLOOR, time - now)

    @property
    def mean_rate(self) -> float:
        # The sinusoid integrates to zero over a period.
        return self._rate

    def spec(self) -> Dict[str, Any]:
        return {
            "kind": "diurnal",
            "rate": self._rate,
            "period": self._period,
            "amplitude": self._amplitude,
        }

    def __repr__(self) -> str:
        return (
            f"DiurnalArrivals(rate={self._rate}, period={self._period}, "
            f"amplitude={self._amplitude})"
        )


_ARRIVAL_KINDS = {
    "poisson": PoissonArrivals,
    "bursty": BurstyArrivals,
    "diurnal": DiurnalArrivals,
}


def build_arrivals(spec: Dict[str, Any]) -> ArrivalProcess:
    """Instantiate an arrival process from its plain-data ``spec()``.

    The same factory idiom as ``repro.adversary.build_adversary``: specs
    travel through the picklable task layer and the run cache, processes
    do not.
    """
    if not isinstance(spec, dict) or "kind" not in spec:
        raise ValueError(f"arrival spec needs a 'kind' key, got {spec!r}")
    kwargs = {key: value for key, value in spec.items() if key != "kind"}
    try:
        factory = _ARRIVAL_KINDS[spec["kind"]]
    except KeyError:
        raise ValueError(
            f"unknown arrival kind {spec['kind']!r} "
            f"(have {sorted(_ARRIVAL_KINDS)})"
        ) from None
    return factory(**kwargs)
