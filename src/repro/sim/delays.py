"""Message-delay models.

Section 7 of the paper uses two delay regimes: constant delays (the
synchronous case) and exponentially distributed delays (the asynchronous
case).  We implement both plus uniform, shifted-lognormal and per-link
models for the ablation study E-ABL-DELAY.
"""

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np


class DelayModel:
    """Base class: draws a one-way message delay for a (src, dst) pair."""

    def sample(self, rng: np.random.Generator, src: int, dst: int) -> float:
        """Return a strictly positive delay for a message from src to dst."""
        raise NotImplementedError

    def sample_batch(
        self, rng: np.random.Generator, src: int, dsts: Sequence[int]
    ) -> List[float]:
        """Delays for a batch of messages from ``src``, one per destination.

        Contract: consumes the RNG stream exactly as ``len(dsts)``
        successive :meth:`sample` calls would, and returns the same values
        in the same order — numpy's ``size=n`` draws produce the identical
        variates as n scalar draws from the same Generator state, so the
        vectorized overrides below keep seeded runs bit-for-bit identical
        while paying for one Generator call per quorum round instead of
        one per message.  Subclasses without a vectorized form inherit
        this scalar loop, which is correct by construction.
        """
        return [self.sample(rng, src, dst) for dst in dsts]

    @property
    def mean(self) -> float:
        """The mean one-way delay (used for round-length heuristics)."""
        raise NotImplementedError

    @property
    def is_synchronous(self) -> bool:
        """True when every delay is identical (the paper's synchronous case)."""
        return False


class ConstantDelay(DelayModel):
    """All messages take exactly ``delay`` time units (synchronous model)."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay <= 0:
            raise ValueError(f"delay must be positive, got {delay}")
        self._delay = delay

    def sample(self, rng: np.random.Generator, src: int, dst: int) -> float:
        return self._delay

    def sample_batch(
        self, rng: np.random.Generator, src: int, dsts: Sequence[int]
    ) -> List[float]:
        return [self._delay] * len(dsts)

    @property
    def mean(self) -> float:
        return self._delay

    @property
    def is_synchronous(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"ConstantDelay({self._delay})"


class ExponentialDelay(DelayModel):
    """Exponentially distributed delays (the paper's asynchronous model).

    A small positive floor avoids zero-length delays, which would let a
    message arrive at the instant it was sent.
    """

    def __init__(self, mean: float = 1.0, floor: float = 1e-9) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        self._mean = mean
        self._floor = floor

    def sample(self, rng: np.random.Generator, src: int, dst: int) -> float:
        return max(self._floor, rng.exponential(self._mean))

    def sample_batch(
        self, rng: np.random.Generator, src: int, dsts: Sequence[int]
    ) -> List[float]:
        draws = rng.exponential(self._mean, size=len(dsts))
        # tolist() converts to plain floats: the scheduler compares these
        # inside heap tuples, where np.float64 comparisons are slower.
        return np.maximum(self._floor, draws).tolist()

    @property
    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"ExponentialDelay(mean={self._mean})"


class UniformDelay(DelayModel):
    """Delays uniform on [low, high]."""

    def __init__(self, low: float = 0.5, high: float = 1.5) -> None:
        if not 0 < low <= high:
            raise ValueError(f"need 0 < low <= high, got low={low}, high={high}")
        self._low = low
        self._high = high

    def sample(self, rng: np.random.Generator, src: int, dst: int) -> float:
        return rng.uniform(self._low, self._high)

    def sample_batch(
        self, rng: np.random.Generator, src: int, dsts: Sequence[int]
    ) -> List[float]:
        return rng.uniform(self._low, self._high, size=len(dsts)).tolist()

    @property
    def mean(self) -> float:
        return (self._low + self._high) / 2.0

    def __repr__(self) -> str:
        return f"UniformDelay({self._low}, {self._high})"


class LogNormalDelay(DelayModel):
    """Heavy-tailed delays: lognormal with the requested mean.

    Used by the ablation E-ABL-DELAY to stress the paper's claim that the
    round structure averages out delay variation.
    """

    def __init__(self, mean: float = 1.0, sigma: float = 1.0) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self._mean = mean
        self._sigma = sigma
        # Choose mu so that the lognormal mean exp(mu + sigma^2/2) equals mean.
        self._mu = math.log(mean) - sigma * sigma / 2.0

    def sample(self, rng: np.random.Generator, src: int, dst: int) -> float:
        return rng.lognormal(self._mu, self._sigma)

    def sample_batch(
        self, rng: np.random.Generator, src: int, dsts: Sequence[int]
    ) -> List[float]:
        return rng.lognormal(self._mu, self._sigma, size=len(dsts)).tolist()

    @property
    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"LogNormalDelay(mean={self._mean}, sigma={self._sigma})"


class PerLinkDelay(DelayModel):
    """A fixed base delay per (src, dst) link plus an optional jitter model.

    Models heterogeneous topologies (e.g. one distant replica).  Links not
    listed fall back to ``default``.
    """

    def __init__(
        self,
        link_delays: Dict[Tuple[int, int], float],
        default: float = 1.0,
        jitter: DelayModel = None,
    ) -> None:
        for link, value in link_delays.items():
            if value <= 0:
                raise ValueError(f"delay for link {link} must be positive, got {value}")
        if default <= 0:
            raise ValueError(f"default delay must be positive, got {default}")
        self._links = dict(link_delays)
        self._default = default
        self._jitter = jitter

    def sample(self, rng: np.random.Generator, src: int, dst: int) -> float:
        base = self._links.get((src, dst), self._default)
        if self._jitter is not None:
            base += self._jitter.sample(rng, src, dst)
        return base

    def sample_batch(
        self, rng: np.random.Generator, src: int, dsts: Sequence[int]
    ) -> List[float]:
        links = self._links
        default = self._default
        bases = [links.get((src, dst), default) for dst in dsts]
        if self._jitter is None:
            return bases
        jitters = self._jitter.sample_batch(rng, src, dsts)
        return [base + jitter for base, jitter in zip(bases, jitters)]

    @property
    def mean(self) -> float:
        values = list(self._links.values()) or [self._default]
        base = sum(values) / len(values)
        if self._jitter is not None:
            base += self._jitter.mean
        return base

    def __repr__(self) -> str:
        return f"PerLinkDelay({len(self._links)} links, default={self._default})"
