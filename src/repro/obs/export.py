"""Exporters: registry snapshots to Prometheus text exposition and JSON.

Both exporters consume the plain-data snapshot format of
:meth:`repro.obs.registry.MetricsRegistry.snapshot`, so they work equally
on a live registry (``to_prometheus_text(registry.snapshot())``) and on a
snapshot shipped back from a worker process.

The Prometheus renderer follows the text exposition format (version
0.0.4): ``# HELP``/``# TYPE`` headers, escaped help strings and label
values, cumulative ``_bucket`` series with an explicit ``le="+Inf"``, and
``_sum``/``_count`` companions for histograms.  ``validate_prometheus_text``
is a small structural parser used by the CI smoke step and the tests to
prove the output actually parses.
"""

import json
import math
import re
from typing import Any, Dict, List, Sequence, Tuple


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_block(
    labelnames: Sequence[str], values: Sequence[str],
    extra: Sequence[Tuple[str, str]] = (),
) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, values)
    ]
    pairs.extend(f'{name}="{value}"' for name, value in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def to_prometheus_text(snapshot: Dict[str, Any]) -> str:
    """Render a registry snapshot in Prometheus text exposition format."""
    lines: List[str] = []
    for instrument in snapshot.get("instruments", ()):
        name = instrument["name"]
        kind = instrument["kind"]
        labelnames = instrument.get("labelnames", ())
        help_text = instrument.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for values, datum in instrument["series"]:
            if kind == "histogram":
                cumulative = 0
                bounds = [_format_value(b) for b in datum["buckets"]] + ["+Inf"]
                for bound, count in zip(bounds, datum["counts"]):
                    cumulative += count
                    block = _label_block(
                        labelnames, values, extra=[("le", bound)]
                    )
                    lines.append(f"{name}_bucket{block} {cumulative}")
                block = _label_block(labelnames, values)
                lines.append(f"{name}_sum{block} {_format_value(datum['sum'])}")
                lines.append(f"{name}_count{block} {datum['count']}")
                # Explicit overflow count: the +Inf bucket's mass without
                # cumulative arithmetic, so alerting on "observations the
                # bucket layout cannot resolve" is a single series.  The
                # fallback keeps pre-overflow snapshots renderable.
                overflow = datum.get("overflow", datum["counts"][-1])
                lines.append(f"{name}_overflow{block} {overflow}")
            else:
                block = _label_block(labelnames, values)
                lines.append(f"{name}{block} {_format_value(datum)}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_json(snapshot: Dict[str, Any], indent: int = 2) -> str:
    """Render a registry snapshot as stable (sorted-key) JSON."""
    return json.dumps(snapshot, indent=indent, sort_keys=True) + "\n"


# --------------------------------------------------------------------- #
# Validation (CI smoke / tests)
# --------------------------------------------------------------------- #

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE_RE = re.compile(
    rf"^(?P<name>{_METRIC_NAME})"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')
_VALID_TYPES = frozenset({"counter", "gauge", "histogram", "summary", "untyped"})


class PrometheusFormatError(ValueError):
    """Raised when exposition text fails structural validation."""


def _parse_value(text: str) -> float:
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)  # raises ValueError on garbage


def validate_prometheus_text(text: str) -> Dict[str, Dict[str, Any]]:
    """Structurally parse exposition text; raise on any malformed line.

    Returns ``{metric name: {"type": ..., "samples": [(labels, value)]}}``
    so callers can assert on content as well as well-formedness.
    Histogram ``_bucket``/``_sum``/``_count`` samples are grouped under
    their base metric name.
    """
    metrics: Dict[str, Dict[str, Any]] = {}
    declared: Dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 3 or not re.fullmatch(_METRIC_NAME, parts[2]):
                raise PrometheusFormatError(
                    f"line {lineno}: malformed comment {line!r}"
                )
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in _VALID_TYPES:
                    raise PrometheusFormatError(
                        f"line {lineno}: bad TYPE declaration {line!r}"
                    )
                declared[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise PrometheusFormatError(
                f"line {lineno}: unparseable sample {line!r}"
            )
        labels: Dict[str, str] = {}
        label_text = match.group("labels")
        if label_text:
            body = label_text[1:-1]
            if body:
                for pair in body.split(","):
                    if not _LABEL_RE.match(pair):
                        raise PrometheusFormatError(
                            f"line {lineno}: malformed label {pair!r}"
                        )
                    key, _, value = pair.partition("=")
                    labels[key] = value[1:-1]
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            raise PrometheusFormatError(
                f"line {lineno}: bad sample value {match.group('value')!r}"
            ) from None
        name = match.group("name")
        base = name
        for suffix in ("_bucket", "_sum", "_count", "_overflow"):
            trimmed = name[: -len(suffix)] if name.endswith(suffix) else None
            if trimmed and declared.get(trimmed) == "histogram":
                base = trimmed
                break
        entry = metrics.setdefault(
            base, {"type": declared.get(base, "untyped"), "samples": []}
        )
        entry["samples"].append((labels, value))
    return metrics
