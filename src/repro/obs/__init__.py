"""Unified observability: metrics registry, operation spans, exporters.

Layers (bottom-up):

* :mod:`repro.obs.registry` — Counter/Gauge/Histogram instruments with
  labels, snapshot/merge semantics and a no-op null variant,
* :mod:`repro.obs.spans` — per-operation span tracing (invoke → quorum
  rounds → retries → response/timeout) with a bounded ring of spans,
* :mod:`repro.obs.export` — Prometheus text exposition and JSON renderers
  (plus the validator the CI smoke uses),
* :mod:`repro.obs.collect` — post-run collection of the simulator's
  existing counters into a registry (the hot path is never instrumented),
* :mod:`repro.obs.runtime` — the process-global session the CLI activates
  and the run engine merges worker snapshots into,
* :mod:`repro.obs.core` — the :class:`Observability` bundle that wires
  through ``RegisterDeployment`` → clients → ``Alg1Runner``.
"""

from repro.obs.core import DISABLED, Observability
from repro.obs.export import (
    to_json,
    to_prometheus_text,
    validate_prometheus_text,
)
from repro.obs.quantiles import (
    DEFAULT_QUANTILES,
    P2Quantile,
    StreamingQuantiles,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Family,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from repro.obs.spans import (
    NULL_RECORDER,
    NullSpanRecorder,
    Span,
    SpanEvent,
    SpanRecorder,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_QUANTILES",
    "DISABLED",
    "Counter",
    "Family",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NULL_REGISTRY",
    "NullRegistry",
    "NullSpanRecorder",
    "Observability",
    "P2Quantile",
    "Span",
    "SpanEvent",
    "SpanRecorder",
    "StreamingQuantiles",
    "to_json",
    "to_prometheus_text",
    "validate_prometheus_text",
]
