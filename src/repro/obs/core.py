"""The Observability bundle: one handle for metrics + spans.

Wiring code (deployment, clients, runner, workers) takes a single
``observability`` object instead of separate registry/recorder arguments;
:data:`DISABLED` is the shared all-off instance every constructor defaults
to, so an un-instrumented run pays nothing but a few attribute loads.
"""

from typing import Optional

from repro.obs.registry import MetricsRegistry, NULL_REGISTRY, NullRegistry
from repro.obs.spans import NULL_RECORDER, NullSpanRecorder, SpanRecorder


class Observability:
    """Bundles a metrics registry and a span recorder.

    ``Observability()`` gives a live registry with span recording off —
    the common "export metrics" configuration; pass a
    :class:`~repro.obs.spans.SpanRecorder` to also trace operations.
    """

    __slots__ = ("metrics", "spans")

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        spans: Optional[SpanRecorder] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans = spans if spans is not None else NULL_RECORDER

    @property
    def enabled(self) -> bool:
        """True when either facet records anything."""
        return self.metrics.enabled or self.spans.enabled

    def __repr__(self) -> str:
        return f"Observability(metrics={self.metrics!r}, spans={self.spans!r})"


class _Disabled(Observability):
    """The all-off singleton's type (null registry, null recorder)."""

    __slots__ = ()

    def __init__(self) -> None:
        # Bypass the parent default of a *live* registry.
        object.__setattr__(self, "metrics", NULL_REGISTRY)
        object.__setattr__(self, "spans", NULL_RECORDER)


#: Shared disabled instance: the default for every wiring point.
DISABLED = _Disabled()

__all__ = [
    "DISABLED",
    "Observability",
    "NullRegistry",
    "NullSpanRecorder",
]
