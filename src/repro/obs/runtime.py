"""Process-global observability session.

The run engine (:func:`repro.exec.engine.run_many`) and the experiment
modules between it and the CLI are generic over result types; threading an
:class:`~repro.obs.Observability` argument through every experiment
function would couple all of them to the metrics layer.  Instead the CLI
*activates* an observability session for the duration of a run, and the
engine merges any worker metric snapshots it sees into the active session.

Worker *processes* never inherit the session (it is per-process state);
their metrics travel back inside result payloads and are merged by the
parent.  Span recorders cannot cross the process boundary at all, which is
why ``--trace-spans`` forces in-process execution.
"""

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.core import Observability

_active: Optional[Observability] = None


def activate(obs: Observability) -> Optional[Observability]:
    """Make ``obs`` the process's active session; returns the previous one."""
    global _active
    previous = _active
    _active = obs
    return previous


def deactivate() -> None:
    """Clear the active session."""
    global _active
    _active = None


def active() -> Optional[Observability]:
    """The active session, or None when observability is off."""
    return _active


@contextmanager
def session(obs: Observability) -> Iterator[Observability]:
    """Activate ``obs`` for the duration of a ``with`` block."""
    previous = activate(obs)
    try:
        yield obs
    finally:
        global _active
        _active = previous
