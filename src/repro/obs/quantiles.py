"""Streaming quantile estimation: the P² algorithm.

Fixed-bucket histograms answer "which bucket does the p99 fall in" — good
enough for coarse latency tables, but an SLO tracker wants a point
estimate that sharpens as traffic flows, without storing observations.
The P² algorithm (Jain & Chlamtac, CACM 1985) maintains five *markers*
per tracked quantile — the minimum, the maximum, the quantile itself and
two intermediate points — and nudges their heights by piecewise-parabolic
interpolation as observations arrive.  O(1) memory and time per
observation, deterministic (pure float arithmetic in observation order,
no randomness, no wall clock), and typically within a fraction of a
percent of the exact sample quantile for unimodal streams.

:class:`P2Quantile` tracks one quantile; :class:`StreamingQuantiles`
bundles the service-mode SLO set (p50/p99/p999 by default) behind a
single ``observe``.  Both reject non-finite observations with
:class:`~repro.obs.registry.MetricsError`, mirroring
:class:`~repro.obs.registry.Histogram`.
"""

import math
from typing import Dict, Sequence, Tuple

from repro.obs.registry import MetricsError

#: The service-mode SLO quantile set.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.99, 0.999)


class P2Quantile:
    """One streaming quantile estimate via the P² marker algorithm.

    The first five observations are held exactly (and the estimate is the
    exact sample quantile over them); from the sixth on, the five markers
    take over and memory stays constant.
    """

    __slots__ = ("q", "count", "_heights", "_positions", "_desired", "_rates")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise MetricsError(f"tracked quantile must be in (0, 1), got {q}")
        self.q = q
        self.count = 0
        self._heights: list = []
        # Marker positions are 1-based observation ranks, per the paper.
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._rates = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)

    def observe(self, value: float) -> None:
        """Fold one observation into the marker state."""
        if not math.isfinite(value):
            raise MetricsError(
                f"quantile observation must be finite, got {value}"
            )
        self.count += 1
        heights = self._heights
        if self.count <= 5:
            heights.append(value)
            heights.sort()
            return

        # Locate the cell k whose interval [h_k, h_{k+1}) holds the value,
        # stretching the extreme markers when it falls outside them.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1

        positions = self._positions
        desired = self._desired
        for index in range(cell + 1, 5):
            positions[index] += 1.0
        for index, rate in enumerate(self._rates):
            desired[index] += rate

        # Adjust the three interior markers toward their desired positions.
        for index in (1, 2, 3):
            drift = desired[index] - positions[index]
            right_gap = positions[index + 1] - positions[index]
            left_gap = positions[index - 1] - positions[index]
            if (drift >= 1.0 and right_gap > 1.0) or (
                drift <= -1.0 and left_gap < -1.0
            ):
                step = 1.0 if drift >= 1.0 else -1.0
                candidate = self._parabolic(index, step)
                if not heights[index - 1] < candidate < heights[index + 1]:
                    candidate = self._linear(index, step)
                heights[index] = candidate
                positions[index] += step

    def _parabolic(self, index: int, step: float) -> float:
        heights = self._heights
        positions = self._positions
        p_prev, p_here, p_next = (
            positions[index - 1], positions[index], positions[index + 1]
        )
        h_prev, h_here, h_next = (
            heights[index - 1], heights[index], heights[index + 1]
        )
        return h_here + step / (p_next - p_prev) * (
            (p_here - p_prev + step) * (h_next - h_here) / (p_next - p_here)
            + (p_next - p_here - step) * (h_here - h_prev) / (p_here - p_prev)
        )

    def _linear(self, index: int, step: float) -> float:
        heights = self._heights
        positions = self._positions
        other = index + int(step)
        return heights[index] + step * (heights[other] - heights[index]) / (
            positions[other] - positions[index]
        )

    @property
    def value(self) -> float:
        """The current estimate (``nan`` before any observation)."""
        count = self.count
        if count == 0:
            return math.nan
        heights = self._heights
        if count <= 5:
            # Exact sample quantile (linear interpolation, matching
            # numpy.quantile's default) over the buffered observations.
            rank = self.q * (count - 1)
            low = int(rank)
            if low >= count - 1:
                return heights[-1]
            fraction = rank - low
            return heights[low] + (heights[low + 1] - heights[low]) * fraction
        return heights[2]

    def __repr__(self) -> str:
        return f"P2Quantile(q={self.q}, n={self.count}, value={self.value:.6g})"


class StreamingQuantiles:
    """A bundle of P² estimators sharing one observation stream."""

    __slots__ = ("_estimators",)

    def __init__(
        self, quantiles: Sequence[float] = DEFAULT_QUANTILES
    ) -> None:
        if not quantiles:
            raise MetricsError("need at least one tracked quantile")
        if len(set(quantiles)) != len(quantiles):
            raise MetricsError(f"duplicate tracked quantiles: {quantiles}")
        self._estimators = {q: P2Quantile(q) for q in sorted(quantiles)}

    def observe(self, value: float) -> None:
        for estimator in self._estimators.values():
            estimator.observe(value)

    @property
    def count(self) -> int:
        for estimator in self._estimators.values():
            return estimator.count
        return 0

    @property
    def quantiles(self) -> Tuple[float, ...]:
        return tuple(self._estimators)

    def value(self, q: float) -> float:
        estimator = self._estimators.get(q)
        if estimator is None:
            raise MetricsError(
                f"quantile {q} is not tracked (have {self.quantiles})"
            )
        return estimator.value

    def values(self) -> Dict[float, float]:
        """All current estimates, keyed by quantile, in ascending order."""
        return {q: est.value for q, est in self._estimators.items()}

    def __repr__(self) -> str:
        rendered = ", ".join(
            f"p{q * 100:g}={est.value:.6g}"
            for q, est in self._estimators.items()
        )
        return f"StreamingQuantiles({rendered}, n={self.count})"
