"""Post-run collection: existing simulation counters → registry instruments.

The simulation kernel already counts everything the paper measures —
``MessageStats`` on the network, ``events_processed``/``pending`` on the
scheduler, per-server and per-client counters on the register layer.
These collectors read those counters *after* a run and populate a
:class:`~repro.obs.registry.MetricsRegistry`, which keeps the per-message
hot path free of any metrics call: enabling observability costs one pass
over already-maintained integers.

Everything here is duck-typed on the objects' public counters, so this
module imports nothing from the simulation stack and can never create an
import cycle.
"""

from typing import Any


def collect_network(metrics: Any, network: Any) -> None:
    """Message totals (and, when collected, per-kind/per-node breakdowns).

    Sends/deliveries/drops come from the existing
    :class:`~repro.sim.metrics.MessageStats` hooks; the detailed
    breakdowns are read only when the stats object actually collected
    them (``detailed=True``), so a scalar-totals deployment exports
    totals without tripping the detail guard.
    """
    stats = network.stats
    metrics.counter(
        "repro_messages_sent_total", "Messages sent on the simulated network."
    ).inc(stats.sent)
    metrics.counter(
        "repro_messages_delivered_total", "Messages delivered to a node."
    ).inc(stats.delivered)
    metrics.counter(
        "repro_messages_dropped_total",
        "Messages destroyed by crashes, partitions or lossy links.",
    ).inc(stats.dropped)
    if not stats.detailed:
        return
    sent_by_kind = metrics.counter(
        "repro_messages_sent_by_kind_total",
        "Messages sent, by protocol message kind.",
        labelnames=("kind",),
    )
    for kind, count in sorted(stats.by_kind.items()):
        sent_by_kind.labels(kind).inc(count)
    delivered_by_kind = metrics.counter(
        "repro_messages_delivered_by_kind_total",
        "Messages delivered, by protocol message kind.",
        labelnames=("kind",),
    )
    for kind, count in sorted(stats.delivered_by_kind.items()):
        delivered_by_kind.labels(kind).inc(count)
    dropped_by_kind = metrics.counter(
        "repro_messages_dropped_by_kind_total",
        "Messages dropped, by protocol message kind.",
        labelnames=("kind",),
    )
    for kind, count in sorted(stats.dropped_by_kind.items()):
        dropped_by_kind.labels(kind).inc(count)
    dropped_by_reason = metrics.counter(
        "repro_messages_dropped_by_reason_total",
        "Messages dropped, by cause (fault = crash/partition, loss = lossy link).",
        labelnames=("reason",),
    )
    for reason, count in sorted(stats.dropped_by_reason.items()):
        dropped_by_reason.labels(reason).inc(count)
    deliveries_by_node = metrics.counter(
        "repro_deliveries_by_node_total",
        "Deliveries per node id — the quorum-load measure of Section 4.",
        labelnames=("node",),
    )
    for node, count in sorted(stats.by_receiver.items()):
        deliveries_by_node.labels(node).inc(count)


def collect_scheduler(metrics: Any, scheduler: Any) -> None:
    """Event throughput and end-of-run queue state."""
    metrics.counter(
        "repro_scheduler_events_total",
        "Events executed by the discrete-event scheduler.",
    ).inc(scheduler.events_processed)
    metrics.gauge(
        "repro_scheduler_queue_depth",
        "Non-cancelled events still queued at collection time.",
    ).set(scheduler.pending)
    metrics.gauge(
        "repro_sim_time", "Simulated clock at collection time."
    ).set(scheduler.now)


def collect_deployment(metrics: Any, deployment: Any) -> None:
    """Everything a :class:`RegisterDeployment` counts, in one pass.

    Network and scheduler totals, per-server replica counters (indexed by
    server *position*, stable across runs), and client-side operation /
    fault-tolerance aggregates.
    """
    collect_network(metrics, deployment.network)
    collect_scheduler(metrics, deployment.scheduler)

    reads_served = metrics.counter(
        "repro_server_reads_served_total",
        "ReadQuery messages answered, per replica server.",
        labelnames=("server",),
    )
    writes_applied = metrics.counter(
        "repro_server_writes_applied_total",
        "WriteUpdate messages that installed a newer value, per server.",
        labelnames=("server",),
    )
    stale_updates = metrics.counter(
        "repro_server_stale_updates_total",
        "WriteUpdate messages ignored as stale (reordering), per server.",
        labelnames=("server",),
    )
    unknown_messages = metrics.counter(
        "repro_server_unknown_messages_total",
        "Messages of unknown kind silently dropped, per server.",
        labelnames=("server",),
    )
    for index, server in enumerate(deployment.servers):
        counters = server.metric_counters()
        reads_served.labels(index).inc(counters["reads_served"])
        writes_applied.labels(index).inc(counters["writes_applied"])
        stale_updates.labels(index).inc(counters["stale_updates_ignored"])
        unknown_messages.labels(index).inc(
            counters.get("unknown_messages_ignored", 0)
        )

    ops = metrics.counter(
        "repro_ops_invoked_total",
        "Register operations invoked across all clients, by kind.",
        labelnames=("kind",),
    )
    ops.labels("read").inc(sum(c.reads_performed for c in deployment.clients))
    ops.labels("write").inc(
        sum(c.writes_performed for c in deployment.clients)
    )
    metrics.counter(
        "repro_ops_completed_total", "Operations that settled successfully."
    ).inc(sum(c.ops_completed for c in deployment.clients))
    metrics.counter(
        "repro_op_retries_total",
        "Quorum resamples by the retry/backoff layer.",
    ).inc(deployment.total_retries)
    metrics.counter(
        "repro_op_timeouts_total",
        "Operations rejected with OperationTimeout.",
    ).inc(deployment.total_timeouts)
    metrics.counter(
        "repro_ops_under_failure_total",
        "Operations completed while a crash or partition was active.",
    ).inc(deployment.total_ops_under_failure)
    metrics.counter(
        "repro_monotone_cache_hits_total",
        "Reads answered from the Section 6.2 monotone cache.",
    ).inc(sum(c.cache_hits for c in deployment.clients))
    metrics.gauge(
        "repro_ops_pending", "Operations still in flight at collection time."
    ).set(deployment.pending_ops)

    # Dynamic membership families exist only when a view manager is
    # installed, so metric exports of static deployments keep their
    # exact pre-membership shape (pooled/serial byte-equality included).
    membership = getattr(deployment, "membership", None)
    if membership is not None:
        events = metrics.counter(
            "repro_membership_events_total",
            "View-manager activity (installs, joins, transfers), by kind.",
            labelnames=("kind",),
        )
        for kind, count in sorted(membership.metric_counters().items()):
            events.labels(kind).inc(count)
        metrics.counter(
            "repro_membership_stale_nacks_total",
            "StaleViewNack replies received across all clients.",
        ).inc(deployment.total_stale_nacks)
        metrics.counter(
            "repro_membership_view_refreshes_total",
            "Client view refreshes (nack-, reply- or retry-triggered).",
        ).inc(deployment.total_view_refreshes)
        metrics.counter(
            "repro_ops_unreachable_total",
            "Operations abandoned with QuorumUnreachable.",
        ).inc(deployment.total_unreachable)
        metrics.gauge(
            "repro_membership_view_id",
            "Current view id at collection time.",
        ).set(membership.current_view.view_id)


def collect_chaos(metrics: Any, result: Any) -> None:
    """Campaign-level accounting for a chaos run (repro.chaos.campaign).

    Duck-typed on :class:`~repro.chaos.campaign.CampaignResult`: per-run
    pass/fail totals plus aggregate degradation (retries, timeouts,
    message drops) and the fault dose actually injected, so a chaos
    campaign exports through the same ``--metrics-out`` pipeline as every
    other experiment.
    """
    metrics.counter(
        "repro_chaos_runs_total", "Chaos campaign runs executed."
    ).inc(len(result.records))
    metrics.counter(
        "repro_chaos_violations_total",
        "Chaos runs that raised a SpecViolation.",
    ).inc(len(result.violations))
    degradation = metrics.counter(
        "repro_chaos_degradation_total",
        "Aggregate degradation observed across the campaign, by kind.",
        labelnames=("kind",),
    )
    for kind in ("retries", "timeouts", "messages_dropped", "hung_ops"):
        degradation.labels(kind).inc(
            sum(int(record.get(kind, 0)) for record in result.records)
        )
    dose = metrics.counter(
        "repro_chaos_faults_injected_total",
        "Faults actually injected across the campaign, by kind.",
        labelnames=("kind",),
    )
    totals: dict = {}
    for record in result.records:
        for kind, count in (record.get("faults_injected") or {}).items():
            totals[kind] = totals.get(kind, 0) + int(count)
    for kind in sorted(totals):
        dose.labels(kind).inc(totals[kind])


def collect_alg1(metrics: Any, runner: Any, result: Any) -> None:
    """Alg. 1 run-level accounting on top of the deployment collection."""
    collect_deployment(metrics, runner.deployment)
    metrics.counter(
        "repro_alg1_runs_total", "Alg. 1 executions collected."
    ).inc(1)
    metrics.counter(
        "repro_alg1_runs_converged_total",
        "Alg. 1 executions that reached the fixed point.",
    ).inc(1 if result.converged else 0)
    metrics.counter(
        "repro_alg1_rounds_total",
        "Completed rounds (every process finished an iteration) — the "
        "pseudocycle-progress measure compared against Corollary 7.",
    ).inc(result.rounds_completed)
    metrics.counter(
        "repro_alg1_iterations_total",
        "Process loop iterations across all processes.",
    ).inc(result.total_iterations)
    metrics.counter(
        "repro_alg1_regressions_total",
        "Convergence-monitor regressions (non-monotone observable state).",
    ).inc(result.regressions)
