"""Span-based operation tracing.

Where :class:`~repro.sim.trace.TraceLog` records individual message sends,
a span records one *operation's* whole lifecycle: invoke, the quorum
rounds it sent, every reply, each retry/backoff resample, and the final
response (or timeout).  That is the unit the paper reasons about — a read
or write against a probabilistic quorum — and the unit an operator of the
ROADMAP's production-scale deployment would page on.

Spans carry simulated-time stamps only; recording them never touches an
RNG stream or schedules an event, so a traced run is event-for-event
identical to an untraced one (pinned by tests/test_kernel_determinism.py).

The recorder keeps a bounded ring of *finished* spans — newest kept,
evictions counted — mirroring the fixed ``TraceLog`` cap semantics, and
offers the queries a debugging session actually needs: slowest-N, by
kind, by status, arbitrary predicates.
"""

from collections import deque
from typing import Any, Callable, Dict, List, Optional


class SpanEvent:
    """One timestamped happening inside a span (a retry, a reply, ...)."""

    __slots__ = ("time", "name", "attrs")

    def __init__(self, time: float, name: str, attrs: Optional[Dict[str, Any]]):
        self.time = time
        self.name = name
        self.attrs = attrs

    def __repr__(self) -> str:
        extra = f" {self.attrs}" if self.attrs else ""
        return f"SpanEvent(t={self.time:.4g}, {self.name}{extra})"


class Span:
    """One operation from invocation to settlement."""

    __slots__ = ("kind", "start", "end", "status", "attrs", "events")

    def __init__(self, kind: str, start: float, attrs: Dict[str, Any]):
        self.kind = kind
        self.start = start
        self.end: Optional[float] = None
        self.status: Optional[str] = None
        self.attrs = attrs
        self.events: List[SpanEvent] = []

    def event(self, time: float, name: str, **attrs: Any) -> None:
        """Append a child event at simulated time ``time``."""
        self.events.append(SpanEvent(time, name, attrs or None))

    @property
    def duration(self) -> Optional[float]:
        """Span length in simulated time; None while still open."""
        return None if self.end is None else self.end - self.start

    def __repr__(self) -> str:
        state = self.status or "open"
        dur = f", dur={self.duration:.4g}" if self.end is not None else ""
        return f"Span({self.kind}, {state}, t={self.start:.4g}{dur}, " \
               f"{len(self.events)} events)"


class _NullSpan:
    """Shared no-op span handed out by a disabled recorder."""

    __slots__ = ()

    def event(self, time: float, name: str, **attrs: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class SpanRecorder:
    """A bounded log of finished operation spans.

    ``max_spans`` bounds retained *finished* spans as a ring buffer: the
    newest spans are kept (the interesting tail of a long run), evictions
    increment ``dropped_spans``.
    """

    enabled = True

    def __init__(self, max_spans: int = 10_000) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be positive, got {max_spans}")
        self.max_spans = max_spans
        self.spans: deque = deque(maxlen=max_spans)
        self.dropped_spans = 0
        self.started = 0
        self.finished = 0

    def start(self, kind: str, time: float, **attrs: Any) -> Span:
        """Open a span for one operation; finish it with :meth:`finish`."""
        self.started += 1
        return Span(kind, time, attrs)

    def finish(self, span: Span, time: float, status: str = "ok") -> None:
        """Close ``span`` and retain it (evicting the oldest at the cap)."""
        span.end = time
        span.status = status
        self.finished += 1
        if len(self.spans) == self.max_spans:
            self.dropped_spans += 1
        self.spans.append(span)

    # Queries ------------------------------------------------------------ #

    def slowest(self, n: int) -> List[Span]:
        """The ``n`` longest finished spans, slowest first.

        Ties break on start time then kind, so the ordering is fully
        deterministic for seeded runs.
        """
        return sorted(
            self.spans, key=lambda s: (-s.duration, s.start, s.kind)
        )[:n]

    def of_kind(self, kind: str) -> List[Span]:
        """Finished spans of one operation kind ("read" / "write")."""
        return [span for span in self.spans if span.kind == kind]

    def with_status(self, status: str) -> List[Span]:
        """Finished spans that settled with ``status`` ("ok" / "timeout")."""
        return [span for span in self.spans if span.status == status]

    def matching(self, predicate: Callable[[Span], bool]) -> List[Span]:
        """Finished spans satisfying an arbitrary predicate."""
        return [span for span in self.spans if predicate(span)]

    def durations(self, kind: Optional[str] = None) -> List[float]:
        """Durations of finished spans, optionally for one kind."""
        return [
            span.duration for span in self.spans
            if kind is None or span.kind == kind
        ]

    # Rendering ---------------------------------------------------------- #

    def render_slowest(self, n: int = 10) -> str:
        """A compact table of the slowest ``n`` spans with their events."""
        spans = self.slowest(n)
        lines = [
            f"slowest {len(spans)} of {self.finished} spans"
            + (f" ({self.dropped_spans} evicted beyond cap)"
               if self.dropped_spans else "")
        ]
        for span in spans:
            attrs = " ".join(
                f"{key}={value}" for key, value in sorted(span.attrs.items())
            )
            lines.append(
                f"  {span.duration:9.4f}  {span.kind:<6} {span.status:<8} "
                f"t={span.start:.4f}  {attrs}"
            )
            for event in span.events:
                extra = (
                    " " + " ".join(
                        f"{k}={v}" for k, v in sorted(event.attrs.items())
                    )
                    if event.attrs else ""
                )
                lines.append(f"      t={event.time:9.4f}  {event.name}{extra}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        return (
            f"SpanRecorder({len(self.spans)} spans, "
            f"dropped={self.dropped_spans})"
        )


class NullSpanRecorder:
    """The disabled recorder: hands out a shared no-op span."""

    enabled = False
    dropped_spans = 0
    started = 0
    finished = 0

    def start(self, kind: str, time: float, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def finish(self, span: Any, time: float, status: str = "ok") -> None:
        pass

    def slowest(self, n: int) -> List[Span]:
        return []

    def of_kind(self, kind: str) -> List[Span]:
        return []

    def with_status(self, status: str) -> List[Span]:
        return []

    def matching(self, predicate: Callable[[Span], bool]) -> List[Span]:
        return []

    def durations(self, kind: Optional[str] = None) -> List[float]:
        return []

    def render_slowest(self, n: int = 10) -> str:
        return "span recording disabled"

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullSpanRecorder()"


NULL_RECORDER = NullSpanRecorder()
