"""Shared-memory metrics transport: mmap-backed per-task snapshot slots.

The parallel engine used to ship every worker's metrics snapshot home
inside the pickled result payload and fold the snapshots together after
the whole sweep finished.  This module replaces that transport with an
mmap-backed shared-memory arena (``multiprocessing.shared_memory``, the
mpmetrics approach): the parent allocates one fixed-size slot per
pending task, workers serialise their registry snapshot straight into
their task's slot, and the parent reads slots back as each chunk of
results streams in — no snapshot ever crosses the result queue's pickle
path.

Why per-task slots instead of one shared set of atomic counters
(mpmetrics proper)?  Determinism.  The engine's contract is that pooled
metrics output is **byte-identical** to serial output, and histogram
sums are floats: float addition is commutative but not associative, so
any accumulator updated in completion order can round differently from
the serial task-order sum.  Giving each task its own single-writer slot
and folding slots **in task order** keeps the guarantee exact while
still eliminating the per-task pickle cost.  Integer-only metrics would
not need this; the float histogram sums force it.

Each slot is guarded by a seqlock (odd sequence = write in progress;
the sequence must read the same, and even, on both sides of a read for
the payload to be accepted).  The engine itself only reads a slot after
the worker's future has resolved — a happens-after edge — so the
seqlock is belt-and-braces there, but it makes *live* reads safe too
(progress monitors, the stress tests in ``tests/test_obs_shm.py``) and
it is what the torn-read property tests exercise.

Slot layout (all little-endian)::

    [0:8)    sequence   uint64  seqlock; 0 = never written
    [8:16)   length     uint64  payload byte length
    [16:..)  payload    bytes   canonical snapshot JSON (UTF-8)

A payload larger than the slot is rejected (``write`` returns False)
and the caller falls back to the in-payload pickle path, so undersized
slots degrade to the old behaviour instead of failing.
"""

import struct
from multiprocessing import shared_memory
from typing import Optional

_HEADER = struct.Struct("<8sQQQ")  # magic, num_slots, slot_bytes, reserved
_WORD = struct.Struct("<Q")  # sequence and length are separate 8-byte words
_MAGIC = b"REPROSHM"

#: Per-slot overhead in bytes (sequence word + length word).  They are
#: written and read as *separate* 8-byte operations on purpose: a single
#: 16-byte copy can tear at an 8-byte boundary, pairing a new sequence
#: with a stale length.
SLOT_OVERHEAD = 2 * _WORD.size

#: Sizing policy for the engine: generous enough for a typical alg1
#: snapshot (~2-4 KiB of canonical JSON) with headroom for labelled
#: families, capped so a many-thousand-task sweep cannot balloon the
#: arena past ~64 MiB (oversized snapshots just fall back inline).
DEFAULT_SLOT_BYTES = 16384
MAX_ARENA_BYTES = 64 * 1024 * 1024


def slot_bytes_for(num_slots: int) -> int:
    """The engine's slot size for a sweep of ``num_slots`` tasks."""
    if num_slots <= 0:
        return DEFAULT_SLOT_BYTES
    budget = MAX_ARENA_BYTES // num_slots
    return max(1024, min(DEFAULT_SLOT_BYTES, budget))


class SnapshotArena:
    """A named shared-memory block of fixed-size, single-writer slots.

    The creating process owns the segment (``owner=True``) and must
    eventually call :meth:`unlink`; attaching processes only
    :meth:`close`.  One slot has exactly one writer at a time (the
    worker executing that task), which is what makes the lock-free
    seqlock protocol sufficient.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, num_slots: int,
        slot_bytes: int, owner: bool,
    ) -> None:
        self._shm = shm
        self.num_slots = num_slots
        self.slot_bytes = slot_bytes
        self.owner = owner
        self.capacity = slot_bytes - SLOT_OVERHEAD

    # Lifecycle --------------------------------------------------------- #

    @classmethod
    def create(
        cls, num_slots: int, slot_bytes: Optional[int] = None
    ) -> "SnapshotArena":
        """Allocate a fresh arena sized for ``num_slots`` tasks."""
        if num_slots < 1:
            raise ValueError(f"need at least one slot, got {num_slots}")
        per_slot = slot_bytes if slot_bytes is not None else slot_bytes_for(num_slots)
        if per_slot <= SLOT_OVERHEAD:
            raise ValueError(
                f"slot_bytes must exceed the {SLOT_OVERHEAD}-byte slot "
                f"header, got {per_slot}"
            )
        size = _HEADER.size + num_slots * per_slot
        # POSIX shared memory is zero-filled on creation, so every slot
        # starts at sequence 0 ("never written") without an explicit wipe.
        shm = shared_memory.SharedMemory(create=True, size=size)
        _HEADER.pack_into(shm.buf, 0, _MAGIC, num_slots, per_slot, 0)
        return cls(shm, num_slots, per_slot, owner=True)

    @classmethod
    def attach(cls, name: str) -> "SnapshotArena":
        """Attach to an arena created by another process, by name."""
        # Note on the resource tracker: pool workers (fork and spawn
        # alike) share the parent's tracker process, so the attach-time
        # registration this performs is an idempotent no-op — the parent
        # already registered the name at create() — and the parent's
        # unlink() remains the single point of destruction.  Do NOT
        # unregister here: that would strip the parent's registration
        # from the shared tracker.
        shm = shared_memory.SharedMemory(name=name)
        magic, num_slots, slot_bytes, _ = _HEADER.unpack_from(shm.buf, 0)
        if magic != _MAGIC:
            shm.close()
            raise ValueError(f"shared memory {name!r} is not a SnapshotArena")
        return cls(shm, num_slots, slot_bytes, owner=False)

    @property
    def name(self) -> str:
        """The attachable segment name."""
        return self._shm.name

    def close(self) -> None:
        """Release this process's mapping (the segment itself survives)."""
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner only); callable after close()."""
        self._shm.unlink()

    # Slot I/O ---------------------------------------------------------- #

    def _offset(self, slot: int) -> int:
        if not 0 <= slot < self.num_slots:
            raise IndexError(
                f"slot {slot} out of range [0, {self.num_slots})"
            )
        return _HEADER.size + slot * self.slot_bytes

    def write(self, slot: int, data: bytes) -> bool:
        """Publish ``data`` into ``slot``; False when it does not fit.

        Seqlock publication: bump the sequence to odd, copy payload and
        length, then bump to even.  Every mutation of length/payload
        happens strictly inside the odd window, so a reader that sees the
        same even sequence on both sides of its copy saw a consistent
        frame.  Single writer per slot, so no CAS is needed.
        """
        if len(data) > self.capacity:
            return False
        base = self._offset(slot)
        buf = self._shm.buf
        seq = _WORD.unpack_from(buf, base)[0]
        _WORD.pack_into(buf, base, seq + 1)
        start = base + SLOT_OVERHEAD
        buf[start:start + len(data)] = data
        _WORD.pack_into(buf, base + _WORD.size, len(data))
        _WORD.pack_into(buf, base, seq + 2)
        return True

    def read(self, slot: int, retries: int = 64) -> Optional[bytes]:
        """The last payload published to ``slot``, or None.

        None means "never written" or "could not get a stable view in
        ``retries`` attempts" (only possible while the writer is live —
        the engine reads a slot only after its worker's result arrived,
        a happens-after edge, so the first attempt always succeeds
        there).
        """
        base = self._offset(slot)
        buf = self._shm.buf
        for _ in range(retries):
            seq1 = _WORD.unpack_from(buf, base)[0]
            if seq1 == 0:
                return None
            if seq1 % 2:  # write in progress
                continue
            length = _WORD.unpack_from(buf, base + _WORD.size)[0]
            if length > self.capacity:  # torn length: writer mid-flight
                continue
            start = base + SLOT_OVERHEAD
            data = bytes(buf[start:start + length])
            seq2 = _WORD.unpack_from(buf, base)[0]
            if seq1 == seq2:
                return data
        return None

    def __repr__(self) -> str:
        return (
            f"SnapshotArena({self.name!r}, slots={self.num_slots}, "
            f"slot_bytes={self.slot_bytes}, owner={self.owner})"
        )


# --------------------------------------------------------------------- #
# Worker-side attachment cache
# --------------------------------------------------------------------- #

#: The one arena this (worker) process is attached to.  Warm pool
#: workers outlive many sweeps; each sweep brings a new arena name, so a
#: one-element cache keyed by name is exactly right: same sweep → reuse
#: the mapping, new sweep → drop the stale mapping and attach the new one.
_attached: Optional[SnapshotArena] = None


def attach_cached(name: Optional[str]) -> Optional[SnapshotArena]:
    """Attach to ``name`` (None-safe), reusing the mapping within a sweep."""
    global _attached
    if name is None:
        return None
    if _attached is not None and _attached.name == name:
        return _attached
    if _attached is not None:
        _attached.close()
        _attached = None
    try:
        _attached = SnapshotArena.attach(name)
    except (FileNotFoundError, ValueError):
        # The parent already tore the arena down (e.g. it gave up on the
        # sweep); fall back to in-payload snapshots rather than dying.
        return None
    return _attached
