"""Named metric instruments with labels, snapshots and deterministic merge.

The registry is the aggregation backbone of the observability layer: every
simulation run (in-process or in a ``repro.exec`` worker) populates its own
:class:`MetricsRegistry`, snapshots it to plain JSON-able data, and the
parent merges the snapshots back together.  Three instrument kinds cover
the paper's measured quantities:

* **Counter** — monotonically increasing totals (messages sent, retries),
* **Gauge** — point-in-time values (queue depth, simulated clock),
* **Histogram** — bucketed distributions (operation latency), with
  quantile estimation for the p50/p95/p99 latency tables.

Merging is **bit-deterministic**: series are stored under sorted label
tuples, snapshots list them in sorted order, and ``merge_snapshot`` adds
values in that order — so merging the same snapshots in the same task
order always produces the same floats, which keeps metrics output
cache-stable across serial and parallel execution.

The hot-path contract: a disabled deployment uses :data:`NULL_REGISTRY`
(a :class:`NullRegistry`), whose instruments are shared no-op singletons.
Everything per-message is collected *after* the run from the existing
``MessageStats``/scheduler counters (see :mod:`repro.obs.collect`), so
the simulation kernel itself never pays a per-event metrics call.
"""

import json
import math
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

_isfinite = math.isfinite


class MetricsError(RuntimeError):
    """Raised on invalid instrument usage or inconsistent registration."""


#: Default histogram buckets (upper bounds, in simulated time units).
#: Geometric-ish spacing covering sub-delay blips through stalled-op tails;
#: an implicit +Inf bucket always follows the last bound.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0,
)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise MetricsError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (or be set outright)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Histogram:
    """A bucketed distribution with sum/count and quantile estimation.

    ``buckets`` are the finite upper bounds (``le`` semantics, strictly
    increasing); an implicit +Inf bucket follows.  Per-bucket counts are
    stored non-cumulatively and cumulated only at export time.
    """

    __slots__ = ("buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise MetricsError(
                f"histogram buckets must be non-empty and strictly "
                f"increasing: {bounds}"
            )
        self.buckets = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        """Record one observation.

        Non-finite values are rejected: ``bisect_left`` orders NaN into
        bucket 0 (every comparison is False) and a single NaN/±inf poisons
        ``sum`` for the histogram's whole lifetime — a silently corrupt
        distribution is worse than a loud caller bug.
        """
        if not _isfinite(value):
            raise MetricsError(
                f"histogram observation must be finite, got {value}"
            )
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def overflow(self) -> int:
        """Observations above the largest finite bound (the +Inf bucket)."""
        return self.counts[-1]

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear interpolation in-bucket.

        A quantile target falling in the +Inf overflow bucket returns
        ``+inf``: the histogram genuinely does not know how far out the
        tail reaches, and clamping to the largest finite bound would
        report a flat, fake tail for an overloaded system.  Callers that
        want bounded output should widen their buckets (and can read
        :attr:`overflow` to see how much mass escaped).  Returns ``nan``
        for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricsError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        target = q * self.count
        cumulative = 0
        # The first bucket's interval is (-inf, b0].  Interpolation needs a
        # finite lower edge: 0.0 matches the latency/size semantics of
        # nonnegative bucket layouts, but with a negative first bound it
        # would sit *above* the bucket's upper edge and interpolate
        # backwards — so clamp the seed to the bound itself in that case
        # (the estimate degrades to the edge value, never beyond it).
        lower = min(0.0, self.buckets[0])
        for index, bucket_count in enumerate(self.counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                if index >= len(self.buckets):
                    return math.inf
                upper = self.buckets[index]
                fraction = (target - previous) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
            if index < len(self.buckets):
                lower = self.buckets[index]
        return self.buckets[-1]


_CHILD_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class Family:
    """One named instrument and its per-label-value children.

    ``labels(*values)`` returns (creating on first use) the child for a
    concrete label-value tuple; the convenience mutators (``inc``, ``set``,
    ``observe``) act on the unlabeled child and require ``labelnames=()``.
    """

    __slots__ = ("name", "kind", "help", "labelnames", "buckets", "_children")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(buckets) if buckets is not None else None
        self._children: Dict[Tuple[str, ...], Any] = {}

    def labels(self, *values: Any):
        """The child instrument for one concrete label-value combination."""
        key = tuple(str(v) for v in values)
        if len(key) != len(self.labelnames):
            raise MetricsError(
                f"{self.name} takes {len(self.labelnames)} label value(s) "
                f"{self.labelnames}, got {len(key)}"
            )
        child = self._children.get(key)
        if child is None:
            if self.kind == "histogram":
                child = Histogram(self.buckets or DEFAULT_BUCKETS)
            else:
                child = _CHILD_TYPES[self.kind]()
            self._children[key] = child
        return child

    # Unlabeled conveniences -------------------------------------------- #

    def inc(self, amount: float = 1) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def series(self) -> Iterable[Tuple[Tuple[str, ...], Any]]:
        """(label values, child) pairs in sorted label order."""
        return sorted(self._children.items())

    def __repr__(self) -> str:
        return (
            f"Family({self.name!r}, {self.kind}, "
            f"series={len(self._children)})"
        )


class MetricsRegistry:
    """A named collection of instruments with snapshot/merge semantics."""

    enabled = True

    def __init__(self) -> None:
        self._families: Dict[str, Family] = {}

    # Registration ------------------------------------------------------ #

    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> Family:
        family = self._families.get(name)
        if family is None:
            family = Family(name, kind, help, labelnames, buckets)
            self._families[name] = family
            return family
        if family.kind != kind or family.labelnames != tuple(labelnames):
            raise MetricsError(
                f"instrument {name!r} already registered as {family.kind} "
                f"with labels {family.labelnames}; cannot re-register as "
                f"{kind} with labels {tuple(labelnames)}"
            )
        return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Family:
        """Get or create a counter family."""
        return self._register(name, "counter", help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Family:
        """Get or create a gauge family."""
        return self._register(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Family:
        """Get or create a histogram family."""
        return self._register(name, "histogram", help, labelnames, buckets)

    # Introspection ----------------------------------------------------- #

    def families(self) -> List[Family]:
        """All registered families, in name order."""
        return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[Family]:
        """The family registered under ``name``, or None."""
        return self._families.get(name)

    def sample(self, name: str, labels: Sequence[Any] = ()) -> Any:
        """The scalar value (or Histogram) of one series, for tests/CLI.

        Raises :class:`MetricsError` for an unknown instrument; an
        unpopulated label combination reads as a fresh child (0 / empty).
        """
        family = self._families.get(name)
        if family is None:
            raise MetricsError(f"no instrument named {name!r}")
        child = family.labels(*labels)
        return child if family.kind == "histogram" else child.value

    # Snapshot / merge --------------------------------------------------- #

    def snapshot(self) -> Dict[str, Any]:
        """A plain-data (JSON-able) copy of every instrument and series.

        Series are listed under sorted label tuples, so equal registries
        produce byte-identical snapshots regardless of update order.
        """
        instruments = []
        for family in self.families():
            series = []
            for values, child in family.series():
                if family.kind == "histogram":
                    # "overflow" duplicates counts[-1] so dashboards (and
                    # the Prometheus exporter) can read the escaped-mass
                    # count without knowing the bucket layout.
                    datum: Any = {
                        "buckets": list(child.buckets),
                        "counts": list(child.counts),
                        "sum": child.sum,
                        "count": child.count,
                        "overflow": child.counts[-1],
                    }
                else:
                    datum = child.value
                series.append([list(values), datum])
            instruments.append(
                {
                    "name": family.name,
                    "kind": family.kind,
                    "help": family.help,
                    "labelnames": list(family.labelnames),
                    "series": series,
                }
            )
        return {"instruments": instruments}

    def snapshot_bytes(self) -> bytes:
        """The snapshot as canonical UTF-8 JSON bytes.

        Canonical means sorted keys and no whitespace, on top of
        :meth:`snapshot`'s already-sorted series — equal registries
        produce byte-identical encodings.  This is the wire format the
        shared-memory transport (:mod:`repro.obs.shm`) stores per task.
        """
        return json.dumps(
            self.snapshot(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    @staticmethod
    def decode_snapshot(data: bytes) -> Dict[str, Any]:
        """Decode :meth:`snapshot_bytes` output back into a snapshot dict."""
        return json.loads(data.decode("utf-8"))

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Aggregate a snapshot into this registry.

        Counters and histograms add; gauges add too (a deliberate,
        order-independent choice — across worker runs a summed gauge reads
        as "total across runs"; per-run values remain in each run's own
        snapshot).  Merging the same snapshots in the same order is
        bit-deterministic because every series iterates in sorted label
        order.
        """
        for instrument in snapshot.get("instruments", ()):
            family = self._register(
                instrument["name"],
                instrument["kind"],
                instrument.get("help", ""),
                instrument.get("labelnames", ()),
            )
            for values, datum in instrument["series"]:
                child = family.labels(*values)
                if family.kind == "histogram":
                    buckets = tuple(datum["buckets"])
                    if child.count == 0 and child.buckets != buckets:
                        # Adopt the incoming bucket layout for a virgin
                        # child; established layouts must match exactly.
                        child.buckets = buckets
                        child.counts = [0] * (len(buckets) + 1)
                    if child.buckets != buckets:
                        raise MetricsError(
                            f"histogram {family.name!r} bucket mismatch: "
                            f"{child.buckets} vs {buckets}"
                        )
                    for index, count in enumerate(datum["counts"]):
                        child.counts[index] += count
                    child.sum += datum["sum"]
                    child.count += datum["count"]
                else:
                    child.value += datum

    def __len__(self) -> int:
        return len(self._families)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._families)} instruments)"


# --------------------------------------------------------------------- #
# Disabled variant
# --------------------------------------------------------------------- #


class _NullInstrument:
    """A shared no-op standing in for every instrument when disabled."""

    __slots__ = ()

    def labels(self, *values: Any) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """A registry whose instruments do nothing; the disabled fast path.

    Shares the :class:`MetricsRegistry` surface so wiring code never
    branches on enablement except where it wants to skip work entirely
    (guard with ``registry.enabled``).
    """

    enabled = False

    def counter(self, name, help="", labelnames=()):  # noqa: A002
        return NULL_INSTRUMENT

    def gauge(self, name, help="", labelnames=()):  # noqa: A002
        return NULL_INSTRUMENT

    def histogram(self, name, help="", labelnames=(), buckets=None):  # noqa: A002
        return NULL_INSTRUMENT

    def families(self):
        return []

    def get(self, name):
        return None

    def snapshot(self):
        return {"instruments": []}

    def merge_snapshot(self, snapshot):
        pass

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullRegistry()"


NULL_REGISTRY = NullRegistry()
