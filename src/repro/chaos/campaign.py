"""Chaos campaigns: randomized adversarial runs with spec checking.

A campaign draws ``runs`` randomized configurations — fault timelines,
adversary strategies, loss rates, retry policies — from a seeded RNG,
executes each as an online-monitored Alg. 1 run through the parallel
execution engine, and reports every :class:`~repro.core.spec.SpecViolation`
found.  On violation, the offending configuration is shrunk
(:func:`repro.chaos.shrink.shrink_violation`) to a minimal plain-data
repro document that replays the violation deterministically.

Determinism end to end: configuration ``i`` of campaign seed ``s`` is a
pure function of ``derive_seed(s, "chaos-config", i)``; each run's
simulation seed is ``derive_seed(s, "chaos-run", i)``; results are
independent of the worker count; and the repro document serialises with
sorted keys, so the same campaign seed always yields byte-identical
minimal repro files.
"""

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.chaos.shrink import shrink_violation
from repro.exec.engine import run_many
from repro.exec.task import RunTask, execute_task
from repro.sim.rng import derive_seed

#: Bump when the repro document layout changes.
REPRO_FORMAT = 1


@dataclass
class CampaignConfig:
    """Knobs of one chaos campaign."""

    runs: int = 20
    seed: int = 0
    jobs: Optional[int] = None
    max_rounds: int = 20
    max_sim_time: float = 150.0
    #: Optional deliberately-broken client spec (repro.chaos.broken),
    #: injected into every run — used by smoke tests to prove the
    #: violation pipeline fires.
    broken_client: Optional[Dict[str, Any]] = None
    #: Candidate-simulation budget for shrinking each violation.
    shrink_budget: int = 120

    def __post_init__(self) -> None:
        if self.runs < 1:
            raise ValueError(f"runs must be positive, got {self.runs}")


@dataclass
class CampaignResult:
    """Outcome of a campaign: per-run records plus shrunken repros."""

    config: CampaignConfig
    records: List[Dict[str, Any]] = field(default_factory=list)
    #: (run index, violation payload) for every violating run.
    violations: List[Tuple[int, Dict[str, Any]]] = field(default_factory=list)
    #: Shrunken repro document for the first violation (None when clean).
    repro: Optional[Dict[str, Any]] = None

    @property
    def passed(self) -> int:
        return len(self.records) - len(self.violations)

    @property
    def failed(self) -> int:
        return len(self.violations)

    def __repr__(self) -> str:
        return (
            f"CampaignResult(runs={len(self.records)}, "
            f"violations={self.failed})"
        )


# --------------------------------------------------------------------- #
# Randomized configuration generation
# --------------------------------------------------------------------- #


def _random_faults(
    rng: np.random.Generator, num_servers: int, horizon: float
) -> Optional[Dict[str, Any]]:
    """A randomized explicit fault timeline (always kind "schedule").

    Scripting faults as explicit events (rather than canned churn specs)
    keeps the whole fault surface ddmin-shrinkable event by event.
    """
    events: List[Dict[str, Any]] = []
    for _ in range(int(rng.integers(0, 4))):
        start = round(float(rng.uniform(2.0, horizon * 0.5)), 3)
        duration = round(float(rng.uniform(3.0, 15.0)), 3)
        count = int(rng.integers(1, max(2, num_servers // 2)))
        nodes = sorted(
            int(n) for n in rng.choice(num_servers, size=count, replace=False)
        )
        events.append({"time": start, "action": "crash", "nodes": nodes})
        events.append(
            {"time": round(start + duration, 3), "action": "recover",
             "nodes": nodes}
        )
    if rng.random() < 0.4:
        split = max(1, num_servers // 2)
        start = round(float(rng.uniform(2.0, horizon * 0.4)), 3)
        events.append(
            {
                "time": start,
                "action": "partition",
                "groups": [
                    list(range(split)), list(range(split, num_servers))
                ],
            }
        )
        events.append(
            {"time": round(start + float(rng.uniform(3.0, 12.0)), 3),
             "action": "heal"}
        )
    if not events:
        return None
    events.sort(key=lambda event: (event["time"], event["action"]))
    return {"kind": "schedule", "events": events}


def _random_membership(
    rng: np.random.Generator, num_servers: int, horizon: float
) -> Optional[Dict[str, Any]]:
    """A randomized explicit membership timeline (always kind "schedule").

    Like faults, membership is scripted as explicit join/leave events so
    the whole reconfiguration surface stays ddmin-shrinkable event by
    event; joiners take fresh roster indices, leavers are drawn from the
    initial roster (a leave naming an already-gone member is a no-op by
    schedule semantics, which keeps every shrunken sublist valid).
    """
    events: List[Dict[str, Any]] = []
    next_join = num_servers
    for _ in range(int(rng.integers(0, 3))):
        time = round(float(rng.uniform(5.0, horizon * 0.6)), 3)
        if rng.random() < 0.6:
            count = int(rng.integers(1, 3))
            nodes = list(range(next_join, next_join + count))
            next_join += count
            events.append({"time": time, "action": "join", "nodes": nodes})
        else:
            nodes = sorted(
                int(n)
                for n in rng.choice(
                    num_servers, size=int(rng.integers(1, 3)), replace=False
                )
            )
            events.append({"time": time, "action": "leave", "nodes": nodes})
    if not events:
        return None
    events.sort(key=lambda event: (event["time"], event["action"]))
    return {"kind": "schedule", "events": events}


def _random_adversary(rng: np.random.Generator) -> Optional[Dict[str, Any]]:
    choice = int(rng.integers(0, 5))
    if choice == 0:
        return None
    if choice == 1:
        return {
            "kind": "stale_favoring",
            "drop_budget": int(rng.integers(20, 61)),
        }
    if choice == 2:
        return {
            "kind": "random_hostile",
            "drop_budget": int(rng.integers(20, 61)),
            "drop_rate": round(float(rng.uniform(0.1, 0.4)), 3),
        }
    if choice == 3:
        return {
            "kind": "partition_oscillator",
            "duty": round(float(rng.uniform(0.3, 0.6)), 3),
        }
    return {
        "kind": "crash_targeter",
        "k": int(rng.integers(1, 3)),
        "period": round(float(rng.uniform(4.0, 10.0)), 3),
    }


def generate_task(config: CampaignConfig, index: int) -> RunTask:
    """The ``index``-th randomized task of the campaign (pure function)."""
    rng = np.random.default_rng(
        derive_seed(config.seed, "chaos-config", index)
    )
    num_servers = int(rng.integers(5, 9))
    params: Dict[str, Any] = {
        "graph": {"kind": "chain", "n": int(rng.integers(4, 7))},
        "quorum": {
            "kind": "probabilistic",
            "n": num_servers,
            "k": int(rng.integers(2, 4)),
        },
        "delay": {
            "kind": "exponential",
            "mean": round(float(rng.uniform(0.5, 1.5)), 3),
        },
        "monotone": True,
        "max_rounds": config.max_rounds,
        "max_sim_time": config.max_sim_time,
        "retry": {
            "interval": round(float(rng.uniform(0.5, 2.0)), 3),
            "backoff": 2.0,
            "jitter": 0.1,
            "deadline": round(float(rng.uniform(20.0, 40.0)), 3),
        },
        "check_spec_online": True,
    }
    if rng.random() < 0.5:
        params["loss_rate"] = round(float(rng.uniform(0.02, 0.15)), 3)
    faults = _random_faults(rng, num_servers, config.max_sim_time)
    if faults is not None:
        params["faults"] = faults
    adversary = _random_adversary(rng)
    if adversary is not None:
        params["adversary"] = adversary
    # Membership draws come from their own derived stream, NOT from the
    # config rng: every draw above stays identical to pre-membership
    # campaigns for the same campaign seed, so existing repro documents
    # and pinned campaign expectations keep meaning the same runs.
    membership_rng = np.random.default_rng(
        derive_seed(config.seed, "chaos-membership", index)
    )
    membership = _random_membership(
        membership_rng, num_servers, config.max_sim_time
    )
    if membership is not None:
        params["membership"] = membership
        if "adversary" not in params and membership_rng.random() < 0.5:
            # Race the reconfiguration itself (drawn from the membership
            # stream so the base adversary draw above stays untouched).
            params["adversary"] = {
                "kind": "view_change_racer",
                "drop_budget": int(membership_rng.integers(10, 41)),
                "window": round(float(membership_rng.uniform(3.0, 8.0)), 3),
            }
    if config.broken_client is not None:
        params["broken_client"] = dict(config.broken_client)
    return RunTask(
        kind="alg1",
        params=params,
        seed=derive_seed(config.seed, "chaos-run", index),
    )


# --------------------------------------------------------------------- #
# Campaign execution
# --------------------------------------------------------------------- #


def run_campaign(
    config: CampaignConfig, shrink: bool = True
) -> CampaignResult:
    """Execute the campaign; shrink the first violation when asked."""
    tasks = [generate_task(config, index) for index in range(config.runs)]
    payloads = run_many(tasks, jobs=config.jobs)
    result = CampaignResult(config=config)
    for index, payload in enumerate(payloads):
        record = {
            "index": index,
            "converged": payload.get("converged"),
            "retries": payload.get("retries", 0),
            "timeouts": payload.get("timeouts", 0),
            "messages_dropped": payload.get("messages_dropped", 0),
            "hung_ops": payload.get("hung_ops", 0),
            "faults_injected": payload.get("faults_injected"),
            "adversary": (payload.get("adversary") or {}).get("name"),
            "views_installed": (
                (payload.get("membership") or {}).get("views_installed", 0)
            ),
            "spec_violation": payload.get("spec_violation"),
        }
        result.records.append(record)
        if payload.get("spec_violation") is not None:
            result.violations.append((index, payload["spec_violation"]))
    if shrink and result.violations:
        index, _ = result.violations[0]
        shrunk = shrink_violation(
            tasks[index], max_runs=config.shrink_budget
        )
        result.repro = {
            "format": REPRO_FORMAT,
            "campaign_seed": config.seed,
            "run_index": index,
            **shrunk,
        }
    return result


# --------------------------------------------------------------------- #
# Repro files: byte-stable serialisation and replay
# --------------------------------------------------------------------- #


def repro_to_bytes(doc: Dict[str, Any]) -> bytes:
    """Canonical byte encoding: sorted keys, fixed indent, trailing \\n."""
    return (json.dumps(doc, sort_keys=True, indent=2) + "\n").encode("utf-8")


def write_repro(doc: Dict[str, Any], path: Union[str, Path]) -> Path:
    """Write a repro document in its canonical byte form."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(repro_to_bytes(doc))
    return path


def replay_repro(
    source: Union[str, Path, Dict[str, Any]]
) -> Tuple[bool, Dict[str, Any]]:
    """Re-execute a repro document's minimal task.

    Returns ``(reproduced, payload)``: ``reproduced`` is True when the
    replay produced a spec violation again (simulations are pure
    functions of their task, so a genuine repro always reproduces).
    """
    doc = (
        source
        if isinstance(source, dict)
        else json.loads(Path(source).read_text())
    )
    try:
        spec = doc["task"]
        task = RunTask(
            kind=spec["kind"], params=spec["params"], seed=spec["seed"]
        )
    except (TypeError, KeyError) as error:
        raise ValueError(f"malformed repro document: {error}") from None
    payload = execute_task(task)
    return payload.get("spec_violation") is not None, payload
