"""Deliberately broken clients: ground truth for the violation pipeline.

A chaos pipeline that never fires is indistinguishable from one that
cannot fire.  These clients break the protocol in controlled, targeted
ways so tests (and the chaos smoke job) can assert the online monitor
catches real bugs, the campaign surfaces them, and shrinking reproduces
them — without planting bugs in the production protocol code.
"""

from typing import Any

from repro.registers.client import QuorumRegisterClient, _PendingOp
from repro.registers.messages import ReadReply, ViewReadReply


class RegressingClient(QuorumRegisterClient):
    """A client whose reads regress after a warm-up period.

    The first ``regress_after`` reads behave correctly (populating the
    monotone cache and the monitor's per-process watermark); every read
    after that returns the *stalest* quorum reply and skips the monotone
    cache — a timestamp regression, violating [R4] exactly as a buggy
    cache-invalidation path would.  [R2] still holds: the stale value was
    genuinely written, just superseded.
    """

    regress_after = 3

    @classmethod
    def configured(cls, after: int) -> type:
        """A subclass with the warm-up threshold baked in (deployments
        instantiate client classes with a fixed signature, so per-run
        configuration travels as a class attribute)."""
        return type(cls.__name__, (cls,), {"regress_after": after})

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._reads_finished = 0

    def _finish(self, op: _PendingOp) -> None:
        if not op.is_read:
            super()._finish(op)
            return
        self._reads_finished += 1
        if self._reads_finished <= self.regress_after:
            super()._finish(op)
            return
        # Broken path: minimal completion bookkeeping, stalest reply wins.
        self._teardown(op)
        self.ops_completed += 1
        now = self.network.scheduler.now
        replies = [
            op.replies[i]
            for i in op.quorum
            if isinstance(op.replies.get(i), (ReadReply, ViewReadReply))
        ]
        worst = min(replies, key=lambda reply: reply.timestamp)
        op.record.complete(now, worst.value, worst.timestamp)
        if self._monitor_on:
            self.spec_monitor.on_read_complete(
                self.client_id, op.record, self.space.info(op.register).history
            )
        op.future.resolve(worst.value)
