"""Deterministic shrinking of violating chaos configurations.

A chaos campaign that finds a spec violation hands back a task with a
randomized pile of faults, adversary knobs and load parameters — most of
which are irrelevant to the bug.  :func:`shrink_violation` reduces that
task to a minimal configuration that still violates, via delta debugging
(ddmin) over the failure-schedule event list plus a fixed sequence of
single-knob reductions (drop the adversary, zero the loss rate, halve
numeric budgets, halve the round budget).

Everything here is deterministic: candidate order is fixed, every
candidate run re-executes the worker with the task's own seed (simulation
results are pure functions of their task), and the output is plain data —
so the same violating task always shrinks to the byte-identical minimal
repro, and the repro file replays the violation anywhere.
"""

import copy
import math
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.exec.task import RunTask, execute_task


def _violates(task: RunTask) -> Tuple[bool, Optional[Dict[str, Any]]]:
    """Run the task; report whether it still produces a spec violation."""
    payload = execute_task(task)
    violation = payload.get("spec_violation")
    return violation is not None, violation


def _with_params(task: RunTask, params: Dict[str, Any]) -> RunTask:
    return RunTask(kind=task.kind, params=params, seed=task.seed)


def _minimize_events(
    events: List[Dict[str, Any]],
    still_violates: Callable[[List[Dict[str, Any]]], bool],
) -> List[Dict[str, Any]]:
    """ddmin over a failure-schedule event list (complement-only variant).

    Tries removing progressively finer chunks of the timeline; keeps any
    removal that preserves the violation.  Candidate order is fully
    determined by the list, so shrinking is deterministic.
    """
    if events and still_violates([]):
        return []
    granularity = 2
    while len(events) >= 2:
        chunk = math.ceil(len(events) / granularity)
        reduced = False
        for start in range(0, len(events), chunk):
            candidate = events[:start] + events[start + chunk:]
            if candidate != events and still_violates(candidate):
                events = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(events):
                break
            granularity = min(len(events), granularity * 2)
    return events


def shrink_violation(
    task: RunTask, max_runs: int = 200
) -> Dict[str, Any]:
    """Reduce a violating task to a minimal still-violating configuration.

    Returns a plain-data report::

        {"task": <minimal task descriptor>,
         "violation": <the minimal task's violation payload>,
         "shrink": {"candidate_runs": ..., "reductions": [...]}}

    ``max_runs`` bounds the number of candidate simulations; on exhaustion
    the best reduction found so far is returned.  Raises ``ValueError``
    if the input task does not violate in the first place.
    """
    violates_now, violation = _violates(task)
    if not violates_now:
        raise ValueError(
            "shrink_violation needs a violating task; this one passed"
        )
    runs = 1
    reductions: List[str] = []
    params: Dict[str, Any] = copy.deepcopy(dict(task.params))

    def try_params(candidate: Dict[str, Any], label: str) -> bool:
        nonlocal runs, params, violation
        if runs >= max_runs:
            return False
        runs += 1
        ok, caught = _violates(_with_params(task, candidate))
        if ok:
            params = candidate
            violation = caught
            reductions.append(label)
        return ok

    # 1. ddmin the failure timeline (campaigns script faults as explicit
    #    "schedule" event lists, so this covers the whole fault surface).
    faults = params.get("faults")
    if isinstance(faults, dict) and faults.get("kind") == "schedule":
        events = list(faults.get("events", []))

        def events_violate(candidate_events: List[Dict[str, Any]]) -> bool:
            nonlocal runs
            if runs >= max_runs:
                return False
            runs += 1
            candidate = copy.deepcopy(params)
            if candidate_events:
                candidate["faults"] = {
                    "kind": "schedule", "events": candidate_events
                }
            else:
                candidate.pop("faults", None)
            ok, _ = _violates(_with_params(task, candidate))
            return ok

        minimal_events = _minimize_events(events, events_violate)
        if len(minimal_events) < len(events):
            if minimal_events:
                params["faults"] = {
                    "kind": "schedule", "events": minimal_events
                }
            else:
                params.pop("faults", None)
            reductions.append(
                f"faults: {len(events)} -> {len(minimal_events)} events"
            )
            # Re-establish the violation payload for the reduced params.
            runs += 1
            _, violation = _violates(_with_params(task, params))

    # 1b. ddmin the membership timeline the same way (campaigns script
    #     membership as explicit "schedule" event lists too, and every
    #     event sublist is a valid timeline by construction — no-op
    #     joins/leaves are skipped, not rejected).
    membership = params.get("membership")
    if isinstance(membership, dict) and membership.get("kind") == "schedule":
        events = list(membership.get("events", []))

        def membership_violates(
            candidate_events: List[Dict[str, Any]]
        ) -> bool:
            nonlocal runs
            if runs >= max_runs:
                return False
            runs += 1
            candidate = copy.deepcopy(params)
            if candidate_events:
                candidate["membership"] = {
                    "kind": "schedule", "events": candidate_events
                }
            else:
                candidate.pop("membership", None)
            ok, _ = _violates(_with_params(task, candidate))
            return ok

        minimal_events = _minimize_events(events, membership_violates)
        if len(minimal_events) < len(events):
            if minimal_events:
                params["membership"] = {
                    "kind": "schedule", "events": minimal_events
                }
            else:
                params.pop("membership", None)
            reductions.append(
                f"membership: {len(events)} -> {len(minimal_events)} events"
            )
            runs += 1
            _, violation = _violates(_with_params(task, params))

    # 2. Drop whole optional subsystems, then shrink their knobs.
    if params.get("membership") is not None:
        candidate = copy.deepcopy(params)
        del candidate["membership"]
        try_params(candidate, "remove membership")
    if params.get("adversary") is not None:
        candidate = copy.deepcopy(params)
        del candidate["adversary"]
        try_params(candidate, "remove adversary")
    adversary = params.get("adversary")
    if isinstance(adversary, dict):
        for knob in ("drop_budget", "k"):
            value = adversary.get(knob)
            while isinstance(value, int) and value > 1 and runs < max_runs:
                candidate = copy.deepcopy(params)
                candidate["adversary"][knob] = value // 2
                if not try_params(
                    candidate, f"adversary.{knob}: {value} -> {value // 2}"
                ):
                    break
                value = value // 2

    if params.get("loss_rate"):
        candidate = copy.deepcopy(params)
        candidate.pop("loss_rate")
        try_params(candidate, "remove loss")

    # 3. Shrink the run itself: fewer rounds means a shorter repro trace.
    rounds = params.get("max_rounds")
    while isinstance(rounds, int) and rounds > 2 and runs < max_runs:
        candidate = copy.deepcopy(params)
        candidate["max_rounds"] = rounds // 2
        if not try_params(
            candidate, f"max_rounds: {rounds} -> {rounds // 2}"
        ):
            break
        rounds = rounds // 2

    minimal = _with_params(task, params)
    return {
        "task": minimal.descriptor(),
        "violation": violation,
        "shrink": {"candidate_runs": runs, "reductions": reductions},
    }
