"""Chaos engineering for the quorum-register stack.

:mod:`repro.chaos.campaign` fans randomized fault/adversary configurations
across the execution engine and checks every run against the online spec
monitor; :mod:`repro.chaos.shrink` reduces a violating configuration to a
minimal deterministic repro; :mod:`repro.chaos.broken` holds deliberately
broken clients used to validate that the pipeline actually catches bugs.
"""

from repro.chaos.campaign import (
    CampaignConfig,
    CampaignResult,
    replay_repro,
    run_campaign,
)
from repro.chaos.shrink import shrink_violation

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "replay_repro",
    "run_campaign",
    "shrink_violation",
]
