"""Register namespace: metadata and histories shared by clients and servers."""

from typing import Any, Dict, Optional

from repro.core.history import NullRegisterHistory, RegisterHistory


class RegisterInfo:
    """Metadata for one register: its history, writer and initial value."""

    __slots__ = ("name", "history", "writer", "initial_value")

    def __init__(
        self,
        name: str,
        writer: Optional[int],
        initial_value: Any,
        record_history: bool = True,
    ) -> None:
        self.name = name
        history_class = RegisterHistory if record_history else NullRegisterHistory
        self.history = history_class(name, initial_value)
        self.writer = writer
        self.initial_value = initial_value

    def __repr__(self) -> str:
        return f"RegisterInfo({self.name!r}, writer={self.writer})"


class RegisterSpace:
    """All registers of a deployment, keyed by name.

    The space owns the authoritative :class:`RegisterHistory` per register,
    which every client records into; the spec checkers in
    :mod:`repro.core.spec` audit these histories after a run.
    """

    def __init__(self, record_history: bool = True) -> None:
        self._registers: Dict[str, RegisterInfo] = {}
        self.record_history = record_history

    def declare(
        self, name: str, writer: Optional[int] = None, initial_value: Any = None
    ) -> RegisterInfo:
        """Create a register.  ``writer`` is the single client allowed to
        write it (None disables the check, for tests)."""
        if name in self._registers:
            raise ValueError(f"register {name!r} already declared")
        info = RegisterInfo(name, writer, initial_value, self.record_history)
        self._registers[name] = info
        return info

    def info(self, name: str) -> RegisterInfo:
        """Look up a register's metadata."""
        if name not in self._registers:
            raise KeyError(f"unknown register {name!r}")
        return self._registers[name]

    def history(self, name: str) -> RegisterHistory:
        """The history of one register."""
        return self.info(name).history

    @property
    def names(self) -> list:
        """All register names, sorted."""
        return sorted(self._registers)

    def __contains__(self, name: str) -> bool:
        return name in self._registers

    def __len__(self) -> int:
        return len(self._registers)

    def __repr__(self) -> str:
        return f"RegisterSpace({len(self._registers)} registers)"
