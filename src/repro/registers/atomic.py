"""Multi-writer and atomic registers over quorum systems.

Section 8 of the paper points at "building stronger kinds of registers,
such as multi-writer and atomic, out of the registers implemented with
their quorum algorithms, by applying known register implementation
algorithms".  This module supplies those known algorithms:

* :class:`MultiWriterClient` — a two-phase write (Attiya-Bar-Noy-Dolev
  style): query a read quorum for the highest timestamp, then install the
  value with a greater timestamp tie-broken by writer id.  Over a
  *strict* quorum system writes are totally ordered; over a
  probabilistic system this yields a natural multi-writer *random*
  register (order may be probabilistically violated — which the tests
  observe, matching the paper's remark that it is "not clear how random
  registers can be used as building blocks" for strong ones).
* :class:`AtomicClient` — additionally performs the ABD read-write-back:
  a read installs the value it is about to return into a write quorum
  before returning it, which upgrades regularity to atomicity over strict
  quorum systems (certified by :func:`repro.core.atomicity.check_atomic`).
"""

import itertools
from typing import Any, Dict, FrozenSet, List, Optional

from repro.core.history import ReadRecord, WriteRecord
from repro.core.timestamps import Timestamp
from repro.registers.client import QuorumRegisterClient, _PendingOp
from repro.registers.messages import ReadQuery, ReadReply, WriteAck, WriteUpdate
from repro.sim.futures import Future


class _TwoPhaseOp:
    """State for an operation that runs a query phase then an update phase."""

    __slots__ = (
        "op_id", "register", "kind", "future", "record", "phase",
        "quorum", "replies", "value", "timestamp", "invoke_time",
    )

    def __init__(self, op_id, register, kind, future, record, value=None,
                 invoke_time=0.0):
        self.op_id = op_id
        self.register = register
        self.kind = kind                    # "write" or "read"
        self.future = future
        self.record = record
        self.phase = 1
        self.quorum: FrozenSet[int] = frozenset()
        self.replies: Dict[int, Any] = {}
        self.value = value
        self.timestamp: Optional[Timestamp] = None
        self.invoke_time = invoke_time

    def complete_against_quorum(self) -> bool:
        return self.quorum.issubset(self.replies)


class MultiWriterClient(QuorumRegisterClient):
    """Two-phase multi-writer writes; reads as in the base client.

    Registers written through this client should be declared with
    ``writer=None`` (any client may write).
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Two-phase op ids stay disjoint from the base-class ids issued by
        # the same instance: replies are routed by probing _two_phase
        # first, and an id collision would cross-wire the two tables.
        self._op_ids = itertools.count(10_000_000)
        self._two_phase: Dict[int, _TwoPhaseOp] = {}
        # Largest sequence number this client has ever issued per register.
        # Over a probabilistic system the query phase can miss this
        # client's own previous write, and reusing a timestamp would be a
        # correctness (and history-uniqueness) bug.
        self._mw_last_seq: Dict[str, int] = {}

    # ------------------------------------------------------------------ #

    def write(self, register: str, value: Any) -> Future:
        """Two-phase write: discover the max timestamp, then exceed it."""
        info = self.space.info(register)
        if info.writer is not None and info.writer != self.client_id:
            # Honour single-writer declarations if present.
            return super().write(register, value)
        future = Future(f"mw-write({register}) by c{self.client_id}")
        op = _TwoPhaseOp(
            next(self._op_ids), register, "write", future, record=None,
            value=value, invoke_time=self.network.scheduler.now,
        )
        self._two_phase[op.op_id] = op
        self.writes_performed += 1
        self._start_query_phase(op)
        return future

    def _start_query_phase(self, op: _TwoPhaseOp) -> None:
        op.phase = 1
        op.quorum = self.quorum_system.read_quorum(self.rng)
        op.replies = {}
        self.network.broadcast(
            self.node_id,
            self._members(op.quorum),
            ReadQuery(op.register, op.op_id),
        )

    def _start_update_phase(self, op: _TwoPhaseOp, timestamp: Timestamp,
                            value: Any) -> None:
        op.phase = 2
        op.timestamp = timestamp
        op.value = value
        op.quorum = self.quorum_system.write_quorum(self.rng)
        op.replies = {}
        if op.kind == "write":
            # The history record can only be created once the timestamp is
            # known (after the query phase); backdate its invocation to the
            # operation's true start so real-time ordering checks ([L1])
            # see the full write interval.
            op.record = self.space.info(op.register).history.begin_write(
                self.client_id, op.invoke_time, value, timestamp
            )
        self.network.broadcast(
            self.node_id,
            self._members(op.quorum),
            WriteUpdate(op.register, op.op_id, value, timestamp),
        )

    # ------------------------------------------------------------------ #

    def on_message(self, src: int, message: Any) -> None:
        op = self._two_phase.get(getattr(message, "op_id", None))
        if op is None:
            super().on_message(src, message)
            return
        server_index = self._server_index.get(src)
        if server_index is None:
            return
        if op.phase == 1 and isinstance(message, ReadReply):
            op.replies[server_index] = message
            if op.complete_against_quorum():
                self._finish_query_phase(op)
        elif op.phase == 2 and isinstance(message, WriteAck):
            op.replies[server_index] = message
            if op.complete_against_quorum():
                self._finish_update_phase(op)

    def _finish_query_phase(self, op: _TwoPhaseOp) -> None:
        best = max(
            (r for r in op.replies.values() if isinstance(r, ReadReply)),
            key=lambda reply: reply.timestamp,
        )
        if op.kind == "write":
            seq = 1 + max(
                best.timestamp.seq, self._mw_last_seq.get(op.register, 0)
            )
            self._mw_last_seq[op.register] = seq
            self._start_update_phase(op, Timestamp(seq, self.client_id), op.value)
        else:  # atomic read: write back what we will return
            self._start_update_phase(op, best.timestamp, best.value)

    def _finish_update_phase(self, op: _TwoPhaseOp) -> None:
        del self._two_phase[op.op_id]
        now = self.network.scheduler.now
        if op.kind == "write":
            op.record.respond(now)
            if self._monitor_on:
                self.spec_monitor.on_write_complete(
                    self.client_id, op.record,
                    self.space.info(op.register).history,
                )
            op.future.resolve(None)
        else:
            op.record.complete(now, op.value, op.timestamp)
            if self._monitor_on:
                self.spec_monitor.on_read_complete(
                    self.client_id, op.record,
                    self.space.info(op.register).history,
                )
            op.future.resolve(op.value)


class AtomicClient(MultiWriterClient):
    """ABD reads (query + write-back) on top of two-phase writes.

    Over a strict quorum system this implements a multi-writer *atomic*
    register: every completed history passes
    :func:`repro.core.atomicity.check_atomic`.
    """

    def read(self, register: str) -> Future:
        info = self.space.info(register)
        now = self.network.scheduler.now
        record: ReadRecord = info.history.begin_read(self.client_id, now)
        future = Future(f"atomic-read({register}) by c{self.client_id}")
        op = _TwoPhaseOp(
            next(self._op_ids), register, "read", future, record=record
        )
        self._two_phase[op.op_id] = op
        self.reads_performed += 1
        self._start_query_phase(op)
        return future
