"""Probabilistic masking quorums: tolerating Byzantine replica servers.

The probabilistic quorum paper this library builds on (Malkhi, Reiter and
Wright) introduces *masking* quorums for Byzantine-faulty servers: if at
most ``b`` servers can lie, a reader must only accept a (value,
timestamp) pair vouched for by at least ``b + 1`` members of its quorum —
a lie fabricated by the faulty servers then never survives, and choosing
the quorum size so that read/write quorums intersect in at least
``2b + 1`` servers with high probability keeps fresh values flowing.

This module provides

* :class:`ByzantineReplicaServer` — a replica that answers read queries
  with a fabricated value carrying an enormous timestamp (the strongest
  attack against a highest-timestamp-wins reader);
* :class:`MaskingClient` — a client whose reads return the highest
  timestamp vouched by at least ``b + 1`` quorum members, falling back to
  its last accepted value when no candidate qualifies.
"""

from typing import Any, Dict, List, Tuple

from repro.core.timestamps import Timestamp
from repro.registers.client import QuorumRegisterClient, _PendingOp
from repro.registers.messages import ReadQuery, ReadReply, WriteAck, WriteUpdate
from repro.registers.server import ReplicaServer
from repro.registers.space import RegisterSpace


class ByzantineReplicaServer(ReplicaServer):
    """A lying replica: fabricates values with sky-high timestamps.

    Writes are acknowledged but silently dropped, and every read query is
    answered with ``poison_value`` at a timestamp far above any honest
    one — the worst case for a reader that trusts the maximum timestamp.
    """

    POISON_SEQ = 10**12

    def __init__(self, space: RegisterSpace, poison_value: Any = "POISON") -> None:
        super().__init__(space)
        self.poison_value = poison_value
        self.lies_told = 0

    def on_message(self, src: int, message: Any) -> None:
        # Byzantine is not a licence to ignore fail-stop faults: a crashed
        # replica tells no lies.  The guard matters when messages are
        # injected directly (tests, adversaries) rather than arriving via
        # Network._deliver, which screens crashed destinations itself.
        if self.network.failures.is_crashed(self.node_id):
            return
        # Replies below go through network.send — the same delivery path
        # (crash/partition checks, loss, delay, adversary) as the honest
        # ReplicaServer — so a lying replica gets no magic channel: its
        # poison is droppable and delayable like any other reply.
        if isinstance(message, ReadQuery):
            self.lies_told += 1
            self.network.send(
                self.node_id,
                src,
                ReadReply(
                    message.register,
                    message.op_id,
                    self.poison_value,
                    Timestamp(self.POISON_SEQ + self.lies_told, 999),
                ),
            )
        elif isinstance(message, WriteUpdate):
            # Acknowledge but never store: the writer cannot tell the
            # replica is faulty, yet the data is gone.
            self.network.send(
                self.node_id, src, WriteAck(message.register, message.op_id)
            )


class MaskingClient(QuorumRegisterClient):
    """Reads accept only values vouched by at least b+1 quorum members."""

    def __init__(self, *args, byzantine_bound: int = 1, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if byzantine_bound < 0:
            raise ValueError(
                f"byzantine bound must be non-negative, got {byzantine_bound}"
            )
        self.byzantine_bound = byzantine_bound
        # Last accepted (timestamp, value) per register: the fallback when
        # a read quorum yields no sufficiently vouched candidate.
        self._accepted: Dict[str, Tuple[Timestamp, Any]] = {}
        self.masked_reads = 0
        self.fallback_reads = 0

    def _finish(self, op: _PendingOp) -> None:
        if not op.is_read:
            super()._finish(op)
            return
        self._teardown(op)
        now = self.network.scheduler.now
        replies: List[ReadReply] = [
            op.replies[i]
            for i in op.quorum
            if isinstance(op.replies.get(i), ReadReply)
        ]
        # Count vouchers per (timestamp, value) pair.
        vouch: Dict[Tuple[Timestamp, Any], int] = {}
        for reply in replies:
            key = (reply.timestamp, reply.value)
            vouch[key] = vouch.get(key, 0) + 1
        candidates = [
            key for key, count in vouch.items()
            if count >= self.byzantine_bound + 1
        ]
        if candidates:
            timestamp, value = max(candidates, key=lambda key: key[0])
            self.masked_reads += 1
        else:
            timestamp, value = self._accepted.get(
                op.register,
                (Timestamp.ZERO, self.space.info(op.register).initial_value),
            )
            self.fallback_reads += 1
        previous = self._accepted.get(op.register)
        if previous is None or timestamp > previous[0]:
            self._accepted[op.register] = (timestamp, value)
        else:
            timestamp, value = previous
        op.record.complete(now, value, timestamp)
        if self._monitor_on:
            self.spec_monitor.on_read_complete(
                self.client_id, op.record, self.space.info(op.register).history
            )
        op.future.resolve(value)


def replace_with_byzantine(deployment, indices, poison_value: Any = "POISON"):
    """Swap the given replica servers of a deployment for Byzantine ones.

    Must be called before any traffic flows.  Returns the new servers.
    """
    byzantine = []
    for index in indices:
        old = deployment.servers[index]
        node_id = old.node_id
        bad = ByzantineReplicaServer(deployment.space, poison_value)
        bad.node_id = node_id
        bad.network = deployment.network
        deployment.network._nodes[node_id] = bad  # noqa: SLF001 - test/deploy hook
        deployment.servers[index] = bad
        byzantine.append(bad)
    return byzantine
