"""Key→register sharding: a keyspace mapped onto many registers.

The paper's experiments drive a handful of named registers directly; a
service front end instead exposes a large *keyspace* and shards it onto a
bounded register deployment.  :class:`ShardedKeyspace` owns that mapping:
a stable hash (CRC-32, the same salt-free choice as the RNG stream keys)
assigns every key to one of ``num_registers`` multi-writer registers, so
two runs — or two processes — always agree on placement without any
coordination state.

:class:`ZipfKeys` supplies the matching popularity model: real key-value
traffic is heavily skewed, and a Zipf(s) draw over a finite key universe
is the standard way to model it (hot keys concentrate load on a few
registers, which is exactly the contention regime probabilistic quorums
are supposed to absorb).  Sampling is one uniform draw plus a binary
search over the precomputed CDF, deterministic per RNG stream.
"""

import zlib
from typing import Any, List

import numpy as np


class ShardedKeyspace:
    """Maps string keys onto a fixed set of register names."""

    __slots__ = ("num_registers", "prefix", "_names")

    def __init__(self, num_registers: int, prefix: str = "kv") -> None:
        if num_registers < 1:
            raise ValueError(
                f"need at least one register, got {num_registers}"
            )
        self.num_registers = num_registers
        self.prefix = prefix
        width = len(str(num_registers - 1))
        self._names = [
            f"{prefix}/{index:0{width}d}" for index in range(num_registers)
        ]

    @property
    def register_names(self) -> List[str]:
        """All register names backing the keyspace, in shard order."""
        return list(self._names)

    def shard_of(self, key: str) -> int:
        """The shard index a key hashes to (stable across processes)."""
        return zlib.crc32(key.encode("utf-8")) % self.num_registers

    def register_for(self, key: str) -> str:
        """The register name holding ``key``."""
        return self._names[self.shard_of(key)]

    def declare(self, deployment: Any, initial_value: Any = None) -> None:
        """Declare every backing register on a deployment.

        Registers are multi-writer (``writer=None``): any service client
        may write any key, which is what
        :class:`~repro.registers.atomic.MultiWriterClient` implements.
        """
        for name in self._names:
            deployment.declare_register(
                name, writer=None, initial_value=initial_value
            )

    def __repr__(self) -> str:
        return (
            f"ShardedKeyspace({self.num_registers} registers, "
            f"prefix={self.prefix!r})"
        )


class ZipfKeys:
    """Zipf-distributed key popularity over a finite key universe.

    Key ``key-0`` is the hottest; rank r is drawn with probability
    proportional to ``r**-exponent``.  Unlike ``numpy.random.zipf`` (an
    unbounded distribution requiring exponent > 1) this normalises over
    exactly ``num_keys`` ranks, so any positive exponent works and every
    draw names a real key.
    """

    __slots__ = ("num_keys", "exponent", "_cdf", "_names")

    def __init__(self, num_keys: int, exponent: float = 1.1) -> None:
        if num_keys < 1:
            raise ValueError(f"need at least one key, got {num_keys}")
        if exponent < 0:
            raise ValueError(f"exponent must be >= 0, got {exponent}")
        self.num_keys = num_keys
        self.exponent = exponent
        ranks = np.arange(1, num_keys + 1, dtype=np.float64)
        weights = ranks ** -float(exponent)
        self._cdf = np.cumsum(weights / weights.sum())
        # Guard against float round-off leaving the last CDF entry a hair
        # under 1.0, which would make searchsorted fall off the end.
        self._cdf[-1] = 1.0
        width = len(str(num_keys - 1))
        self._names = [f"key-{index:0{width}d}" for index in range(num_keys)]

    def probability(self, rank: int) -> float:
        """The draw probability of the rank-th hottest key (0-based)."""
        if not 0 <= rank < self.num_keys:
            raise IndexError(f"rank {rank} out of [0, {self.num_keys})")
        previous = self._cdf[rank - 1] if rank > 0 else 0.0
        return float(self._cdf[rank] - previous)

    def sample_index(self, rng: np.random.Generator) -> int:
        """Draw a key index (0 = hottest)."""
        return int(np.searchsorted(self._cdf, rng.random(), side="left"))

    def sample(self, rng: np.random.Generator) -> str:
        """Draw a key name."""
        return self._names[self.sample_index(rng)]

    def key(self, index: int) -> str:
        """The name of the index-th hottest key."""
        return self._names[index]

    def sample_batch(
        self, rng: np.random.Generator, size: int
    ) -> List[str]:
        """``size`` draws in one vectorized call (same stream consumption
        as ``size`` successive :meth:`sample` calls)."""
        draws = rng.random(size)
        indices = np.searchsorted(self._cdf, draws, side="left")
        names = self._names
        return [names[int(index)] for index in indices]

    def __repr__(self) -> str:
        return f"ZipfKeys({self.num_keys} keys, s={self.exponent})"
