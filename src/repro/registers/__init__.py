"""Register implementations over quorum systems.

This layer implements the paper's Section 4 and 6.2 algorithms:

* :class:`QuorumRegisterClient` — the (single-writer) probabilistic quorum
  register of Malkhi, Reiter and Wright: reads query a random quorum and
  return the highest-timestamped value; writes update a random quorum with
  a fresh timestamp.
* the **monotone** variant (Section 6.2): the client additionally caches
  the highest-timestamped value it has ever returned, and serves the cache
  when a read quorum only produced older values.
* the **strict** baseline: the same protocol over any strict quorum system
  (majority, grid, FPP, ...), which yields a regular register.

:class:`RegisterDeployment` wires scheduler, network, replica servers and
clients together and exposes per-register handles implementing
:class:`repro.core.register.AbstractRegister`.
"""

from repro.registers.messages import ReadQuery, ReadReply, WriteAck, WriteUpdate
from repro.registers.server import ReplicaServer
from repro.registers.space import RegisterInfo, RegisterSpace
from repro.registers.client import (
    OperationTimeout,
    QuorumRegisterClient,
    RegisterHandle,
    RetryPolicy,
)
from repro.registers.deployment import RegisterDeployment
from repro.registers.atomic import AtomicClient, MultiWriterClient
from repro.registers.sharding import ShardedKeyspace, ZipfKeys
from repro.registers.masking import (
    ByzantineReplicaServer,
    MaskingClient,
    replace_with_byzantine,
)

__all__ = [
    "AtomicClient",
    "ByzantineReplicaServer",
    "MaskingClient",
    "MultiWriterClient",
    "OperationTimeout",
    "QuorumRegisterClient",
    "ReadQuery",
    "ReadReply",
    "RegisterDeployment",
    "RegisterHandle",
    "RegisterInfo",
    "RegisterSpace",
    "ReplicaServer",
    "RetryPolicy",
    "ShardedKeyspace",
    "WriteAck",
    "WriteUpdate",
    "ZipfKeys",
    "replace_with_byzantine",
]
