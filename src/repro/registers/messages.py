"""Wire messages of the quorum register protocol.

Four message kinds, matching the two round trips of the algorithm in
Section 4: a read is a (ReadQuery, ReadReply) exchange with each quorum
member, a write a (WriteUpdate, WriteAck) exchange.  Messages carry the
register name so one server can host replicas of many registers.
"""

from typing import Any

from repro.core.timestamps import Timestamp


class ReadQuery:
    """Client -> server: request the server's replica of a register."""

    kind = "read_query"
    __slots__ = ("register", "op_id")

    def __init__(self, register: str, op_id: int) -> None:
        self.register = register
        self.op_id = op_id

    def __repr__(self) -> str:
        return f"ReadQuery({self.register!r}, op={self.op_id})"


class ReadReply:
    """Server -> client: the replica's current value and timestamp."""

    kind = "read_reply"
    __slots__ = ("register", "op_id", "value", "timestamp")

    def __init__(
        self, register: str, op_id: int, value: Any, timestamp: Timestamp
    ) -> None:
        self.register = register
        self.op_id = op_id
        self.value = value
        self.timestamp = timestamp

    def __repr__(self) -> str:
        return (
            f"ReadReply({self.register!r}, op={self.op_id}, v={self.value!r}, "
            f"ts={self.timestamp.seq})"
        )


class WriteUpdate:
    """Client -> server: install a value if its timestamp is newer."""

    kind = "write_update"
    __slots__ = ("register", "op_id", "value", "timestamp")

    def __init__(
        self, register: str, op_id: int, value: Any, timestamp: Timestamp
    ) -> None:
        self.register = register
        self.op_id = op_id
        self.value = value
        self.timestamp = timestamp

    def __repr__(self) -> str:
        return (
            f"WriteUpdate({self.register!r}, op={self.op_id}, v={self.value!r}, "
            f"ts={self.timestamp.seq})"
        )


class WriteAck:
    """Server -> client: acknowledge a WriteUpdate."""

    kind = "write_ack"
    __slots__ = ("register", "op_id")

    def __init__(self, register: str, op_id: int) -> None:
        self.register = register
        self.op_id = op_id

    def __repr__(self) -> str:
        return f"WriteAck({self.register!r}, op={self.op_id})"
