"""Wire messages of the quorum register protocol.

Four message kinds, matching the two round trips of the algorithm in
Section 4: a read is a (ReadQuery, ReadReply) exchange with each quorum
member, a write a (WriteUpdate, WriteAck) exchange.  Messages carry the
register name so one server can host replicas of many registers.

Messages are frozen tuples (:class:`typing.NamedTuple`): construction is
a single C-level ``tuple.__new__`` — these are allocated on every quorum
round, so they sit on the simulation hot path — and immutability lets
:meth:`~repro.sim.network.Network.broadcast` share one instance across a
whole quorum.  Each class precomputes its stats label as a class-level
``kind``, so the network never falls back to ``type(message).__name__``.
"""

from typing import Any, NamedTuple

from repro.core.timestamps import Timestamp


class ReadQuery(NamedTuple):
    """Client -> server: request the server's replica of a register."""

    register: str
    op_id: int

    kind = "read_query"

    def __repr__(self) -> str:
        return f"ReadQuery({self.register!r}, op={self.op_id})"


class ReadReply(NamedTuple):
    """Server -> client: the replica's current value and timestamp."""

    register: str
    op_id: int
    value: Any
    timestamp: Timestamp

    kind = "read_reply"

    def __repr__(self) -> str:
        return (
            f"ReadReply({self.register!r}, op={self.op_id}, v={self.value!r}, "
            f"ts={self.timestamp.seq})"
        )


class WriteUpdate(NamedTuple):
    """Client -> server: install a value if its timestamp is newer."""

    register: str
    op_id: int
    value: Any
    timestamp: Timestamp

    kind = "write_update"

    def __repr__(self) -> str:
        return (
            f"WriteUpdate({self.register!r}, op={self.op_id}, v={self.value!r}, "
            f"ts={self.timestamp.seq})"
        )


class WriteAck(NamedTuple):
    """Server -> client: acknowledge a WriteUpdate."""

    register: str
    op_id: int

    kind = "write_ack"

    def __repr__(self) -> str:
        return f"WriteAck({self.register!r}, op={self.op_id})"
