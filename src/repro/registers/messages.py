"""Wire messages of the quorum register protocol.

Four message kinds, matching the two round trips of the algorithm in
Section 4: a read is a (ReadQuery, ReadReply) exchange with each quorum
member, a write a (WriteUpdate, WriteAck) exchange.  Messages carry the
register name so one server can host replicas of many registers.

Messages are frozen tuples (:class:`typing.NamedTuple`): construction is
a single C-level ``tuple.__new__`` — these are allocated on every quorum
round, so they sit on the simulation hot path — and immutability lets
:meth:`~repro.sim.network.Network.broadcast` share one instance across a
whole quorum.  Each class precomputes its stats label as a class-level
``kind``, so the network never falls back to ``type(message).__name__``.
"""

from typing import Any, NamedTuple

from repro.core.timestamps import Timestamp


class ReadQuery(NamedTuple):
    """Client -> server: request the server's replica of a register."""

    register: str
    op_id: int

    kind = "read_query"

    def __repr__(self) -> str:
        return f"ReadQuery({self.register!r}, op={self.op_id})"


class ReadReply(NamedTuple):
    """Server -> client: the replica's current value and timestamp."""

    register: str
    op_id: int
    value: Any
    timestamp: Timestamp

    kind = "read_reply"

    def __repr__(self) -> str:
        return (
            f"ReadReply({self.register!r}, op={self.op_id}, v={self.value!r}, "
            f"ts={self.timestamp.seq})"
        )


class WriteUpdate(NamedTuple):
    """Client -> server: install a value if its timestamp is newer."""

    register: str
    op_id: int
    value: Any
    timestamp: Timestamp

    kind = "write_update"

    def __repr__(self) -> str:
        return (
            f"WriteUpdate({self.register!r}, op={self.op_id}, v={self.value!r}, "
            f"ts={self.timestamp.seq})"
        )


class WriteAck(NamedTuple):
    """Server -> client: acknowledge a WriteUpdate."""

    register: str
    op_id: int

    kind = "write_ack"

    def __repr__(self) -> str:
        return f"WriteAck({self.register!r}, op={self.op_id})"


# --------------------------------------------------------------------- #
# View-stamped variants (dynamic membership, repro.membership)
#
# Deployments with an installed ViewManager exchange these instead of
# the plain four: requests carry the client's view id, replies the
# server's, and a server nacks requests stamped with an older view so
# the client refreshes and re-dispatches.  They are deliberately
# *distinct types*, not extra fields on the plain messages: the native
# kernel's protocol cores recognise the four plain NamedTuples by exact
# type and soft-fall back to the Python handlers per message for
# anything else, so view-bearing traffic takes the Python path with no
# C changes — and membership-free runs, which never allocate these,
# stay byte-identical.  Query/reply kinds reuse the plain labels so
# per-kind message stats stay comparable across modes.
# --------------------------------------------------------------------- #


class ViewReadQuery(NamedTuple):
    """Client -> server: a read query stamped with the client's view."""

    register: str
    op_id: int
    view: int

    kind = "read_query"

    def __repr__(self) -> str:
        return f"ViewReadQuery({self.register!r}, op={self.op_id}, v={self.view})"


class ViewReadReply(NamedTuple):
    """Server -> client: replica value/timestamp plus the server's view."""

    register: str
    op_id: int
    value: Any
    timestamp: Timestamp
    view: int

    kind = "read_reply"

    def __repr__(self) -> str:
        return (
            f"ViewReadReply({self.register!r}, op={self.op_id}, "
            f"v={self.value!r}, ts={self.timestamp.seq}, view={self.view})"
        )


class ViewWriteUpdate(NamedTuple):
    """Client -> server: a write update stamped with the client's view."""

    register: str
    op_id: int
    value: Any
    timestamp: Timestamp
    view: int

    kind = "write_update"

    def __repr__(self) -> str:
        return (
            f"ViewWriteUpdate({self.register!r}, op={self.op_id}, "
            f"v={self.value!r}, ts={self.timestamp.seq}, view={self.view})"
        )


class ViewWriteAck(NamedTuple):
    """Server -> client: write acknowledgement plus the server's view."""

    register: str
    op_id: int
    view: int

    kind = "write_ack"

    def __repr__(self) -> str:
        return f"ViewWriteAck({self.register!r}, op={self.op_id}, view={self.view})"


class StaleViewNack(NamedTuple):
    """Server -> client: request refused, stamped view is out of date.

    ``view`` is the server's *current* view id; the client refreshes to
    it and re-dispatches the operation under the new view's quorum.
    """

    register: str
    op_id: int
    view: int

    kind = "stale_view_nack"

    def __repr__(self) -> str:
        return f"StaleViewNack({self.register!r}, op={self.op_id}, view={self.view})"


class StateRequest(NamedTuple):
    """Joiner -> old-view member: request the member's replica state."""

    transfer_id: int
    view: int

    kind = "state_request"

    def __repr__(self) -> str:
        return f"StateRequest(transfer={self.transfer_id}, view={self.view})"


class StateReply(NamedTuple):
    """Old-view member -> joiner: every materialised replica entry.

    ``entries`` is a tuple of ``(register, timestamp, value)`` triples;
    registers the member never touched stay at their declared initial
    values, which the joiner's lazy replica probe supplies on demand.
    """

    transfer_id: int
    view: int
    entries: Any

    kind = "state_reply"

    def __repr__(self) -> str:
        return (
            f"StateReply(transfer={self.transfer_id}, view={self.view}, "
            f"entries={len(self.entries)})"
        )
