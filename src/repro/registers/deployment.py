"""Deployment builder: replicated registers over a simulated network.

``RegisterDeployment`` assembles the full stack for an experiment in one
call: scheduler, delay model, network, ``n`` replica servers, ``p`` client
subsystems (one per application process), a quorum system, and the
register namespace — with every random choice drawn from named streams of
a single root-seeded :class:`~repro.sim.rng.RngRegistry`.

Fault-tolerance knobs ride along: a :class:`~repro.registers.client.RetryPolicy`
(or the legacy ``retry_interval`` shorthand) governs client retries and
per-operation deadlines, ``loss_rate`` turns on probabilistic message
loss, and :meth:`install_schedule` scripts a
:class:`~repro.sim.failures.FailureSchedule` of timed crash/recover/
partition/heal events addressed by server index.
"""

from typing import Any, List, Optional

from repro.obs.core import DISABLED, Observability
from repro.quorum.base import QuorumSystem
from repro.quorum.probabilistic import ProbabilisticQuorumSystem
from repro.registers.client import (
    QuorumRegisterClient,
    RegisterHandle,
    RetryPolicy,
)
from repro.registers.server import ReplicaServer
from repro.registers.space import RegisterSpace
from repro.sim import kernel
from repro.sim.delays import ConstantDelay, DelayModel
from repro.sim.failures import FailureInjector, FailureSchedule
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler


class RegisterDeployment:
    """A complete simulated deployment of quorum-replicated registers."""

    def __init__(
        self,
        quorum_system: QuorumSystem,
        num_clients: int,
        delay_model: Optional[DelayModel] = None,
        monotone: bool = False,
        seed: int = 0,
        retry_interval: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        loss_rate: float = 0.0,
        scheduler: Optional[Scheduler] = None,
        rng_registry: Optional[RngRegistry] = None,
        client_class: type = QuorumRegisterClient,
        record_history: bool = True,
        detailed_stats: bool = True,
        observability: Optional[Observability] = None,
        spec_monitor: Optional[Any] = None,
        adversary: Optional[Any] = None,
    ) -> None:
        if num_clients < 1:
            raise ValueError(f"need at least one client, got {num_clients}")
        if spec_monitor is not None and not record_history:
            raise ValueError(
                "spec_monitor needs record_history=True: the [R2] online "
                "check resolves timestamps against the register history"
            )
        self.quorum_system = quorum_system
        self.monotone = monotone
        self.record_history = record_history
        self.spec_monitor = spec_monitor
        self.observability = (
            observability if observability is not None else DISABLED
        )
        self.scheduler = scheduler or kernel.make_scheduler()
        self.rng = rng_registry or RngRegistry(seed)
        self.delay_model = delay_model or ConstantDelay(1.0)
        self.failures = FailureInjector()
        self.network = Network(
            self.scheduler,
            self.delay_model,
            self.rng.stream("delays"),
            failures=self.failures,
            loss_rate=loss_rate,
            loss_rng=self.rng.stream("loss") if loss_rate > 0.0 else None,
            detailed_stats=detailed_stats,
        )
        self.space = RegisterSpace(record_history=record_history)
        if retry_policy is None and retry_interval is not None:
            retry_policy = RetryPolicy(interval=retry_interval)
        self.retry_policy = retry_policy

        self.servers: List[ReplicaServer] = []
        for _ in range(quorum_system.n):
            server = ReplicaServer(self.space)
            self.network.add_node(server)
            self.servers.append(server)
        self.server_ids = [server.node_id for server in self.servers]
        # Reverse map node id -> roster index.  Roster indices are stable
        # for the life of the deployment: the initial servers occupy
        # 0..n-1 and dynamic membership (install_membership) appends.
        self.server_index = {
            node_id: index for index, node_id in enumerate(self.server_ids)
        }
        # Dynamic membership; stays None unless install_membership is
        # handed a non-empty schedule, and every membership branch in the
        # register stack gates on that.
        self.membership: Optional[Any] = None

        self.clients: List[QuorumRegisterClient] = []
        for client_id in range(num_clients):
            client = client_class(
                client_id,
                self.space,
                quorum_system,
                self.server_ids,
                self.rng.stream(f"quorum-choice/client-{client_id}"),
                monotone=monotone,
                retry_policy=retry_policy,
                retry_rng=(
                    self.rng.stream(f"retry/client-{client_id}")
                    if retry_policy is not None
                    else None
                ),
                observability=self.observability,
                spec_monitor=spec_monitor,
            )
            self.network.add_node(client)
            self.clients.append(client)

        # The adversary attaches last: it observes a fully-built topology
        # (server ids, injector, scheduler) and starts intercepting from
        # the first message.  None keeps the network's fast path intact.
        self.adversary = adversary
        if adversary is not None:
            adversary.attach(self)
            self.network.set_adversary(adversary)

        # Native protocol fast path: C transcriptions of the server
        # handler and the client reply-aggregation path, installed as
        # ``on_message`` instance attributes (the same pattern as the
        # network's SendCore/DeliveryCore) so trace taps keep working.
        # The factories return None on the pure-python backend and for
        # subclassed nodes; the cores themselves re-check the mutable
        # hooks per delivery and fall back to the Python methods.
        for server in self.servers:
            core = kernel.make_server_core(server)
            if core is not None:
                server.on_message = core
        for client in self.clients:
            core = kernel.make_client_core(client)
            if core is not None:
                client.on_message = core
        # Native quorum sampling: bit-identical to rng.choice by
        # contract (verified property tests), so installing it is pure
        # speed.  Class-level on ProbabilisticQuorumSystem — the draw is
        # backend-independent, so a system reused under the python
        # backend keeps producing the same stream.
        sampler = kernel.native_quorum_sampler()
        if sampler is not None and isinstance(
            quorum_system, ProbabilisticQuorumSystem
        ):
            ProbabilisticQuorumSystem._native_sampler = staticmethod(sampler)

    @property
    def num_servers(self) -> int:
        """Number of replica servers in the roster.

        Equals the quorum system's ``n`` on static deployments; under
        dynamic membership the roster grows as joiners are materialised.
        """
        return len(self.servers)

    @property
    def num_clients(self) -> int:
        """Number of application processes (the paper's p)."""
        return len(self.clients)

    def declare_register(
        self, name: str, writer: Optional[int], initial_value: Any = None
    ) -> None:
        """Create a register.  ``writer`` names the single client allowed
        to write it; None declares a multi-writer register (for use with
        :class:`repro.registers.atomic.MultiWriterClient`)."""
        if writer is not None and not 0 <= writer < len(self.clients):
            raise ValueError(
                f"writer {writer} out of range [0, {len(self.clients)})"
            )
        self.space.declare(name, writer=writer, initial_value=initial_value)

    def handle(self, client_id: int, register: str) -> RegisterHandle:
        """A register handle bound to one client's subsystem."""
        return self.clients[client_id].handle(register)

    def crash_server(self, index: int) -> None:
        """Crash the index-th replica server (fail-stop)."""
        self.failures.crash(self.server_ids[index])

    def recover_server(self, index: int) -> None:
        """Recover the index-th replica server."""
        self.failures.recover(self.server_ids[index])

    def install_schedule(self, schedule: FailureSchedule) -> list:
        """Install a failure timeline whose nodes are server *indices*.

        Returns the cancellable handles of the scheduled events.
        """
        return schedule.install(
            self.scheduler,
            self.failures,
            resolve=lambda index: self.server_ids[index % self.num_servers],
        )

    # -- dynamic membership (repro.membership) ------------------------- #

    def install_membership(
        self,
        schedule: Any,
        drain: float = 8.0,
        transfer_retry: float = 4.0,
        transfer_max_attempts: int = 8,
    ) -> Optional[Any]:
        """Install a membership timeline; returns the ViewManager.

        An **empty** schedule returns None and touches nothing — the
        deployment stays on the static fast path, byte-identical to one
        that never heard of membership.  Otherwise every server gets a
        view state, every client switches to view-stamped dispatch, and
        the manager's events are scheduled.  Imported lazily so static
        deployments never load the membership package.
        """
        if len(schedule) == 0:
            return None
        if self.membership is not None:
            raise ValueError("membership schedule already installed")
        from repro.membership.manager import ServerViewState, ViewManager

        manager = ViewManager(
            self,
            schedule,
            drain=drain,
            transfer_retry=transfer_retry,
            transfer_max_attempts=transfer_max_attempts,
        )
        self.membership = manager
        for index, server in enumerate(self.servers):
            server.view_state = ServerViewState(manager, index, 0)
        for client in self.clients:
            client.attach_membership(manager)
        manager.install()
        return manager

    def ensure_server(self, index: int) -> ReplicaServer:
        """Grow the roster until roster index ``index`` exists.

        New servers join the network immediately (reachable, not yet view
        members); clients learn the extended id/index maps at once, so a
        quorum sampled from a view containing the index can address it.
        """
        from repro.membership.manager import ServerViewState

        while len(self.servers) <= index:
            roster_index = len(self.servers)
            server = ReplicaServer(self.space)
            self.network.add_node(server)
            if self.membership is not None:
                server.view_state = ServerViewState(
                    self.membership,
                    roster_index,
                    self.membership.current_view.view_id,
                )
            core = kernel.make_server_core(server)
            if core is not None:
                server.on_message = core
            self.servers.append(server)
            self.server_ids.append(server.node_id)
            self.server_index[server.node_id] = roster_index
            for client in self.clients:
                client._roster_extended(server.node_id)
        return self.servers[index]

    # -- degradation accounting (aggregated over all clients) ---------- #

    @property
    def total_retries(self) -> int:
        """Quorum resamples performed across every client."""
        return sum(client.retries for client in self.clients)

    @property
    def total_timeouts(self) -> int:
        """Operations rejected with OperationTimeout across every client."""
        return sum(client.timeouts for client in self.clients)

    @property
    def total_ops_under_failure(self) -> int:
        """Operations completed while a crash or partition was active."""
        return sum(
            client.ops_completed_under_failure for client in self.clients
        )

    @property
    def total_unreachable(self) -> int:
        """Operations abandoned with QuorumUnreachable across every client."""
        return sum(client.unreachable for client in self.clients)

    @property
    def total_stale_nacks(self) -> int:
        """StaleViewNack replies received across every client."""
        return sum(client.stale_nacks for client in self.clients)

    @property
    def total_view_refreshes(self) -> int:
        """View refreshes performed across every client."""
        return sum(client.view_refreshes for client in self.clients)

    @property
    def pending_ops(self) -> int:
        """Operations still in flight across every client."""
        return sum(client.pending_ops for client in self.clients)

    @property
    def hung_ops(self) -> int:
        """Operations with no settlement path left (see client.hung_ops)."""
        return sum(client.hung_ops for client in self.clients)

    def run(self, **kwargs) -> float:
        """Run the underlying scheduler; see :meth:`Scheduler.run`."""
        return self.scheduler.run(**kwargs)

    def __repr__(self) -> str:
        mode = "monotone" if self.monotone else "plain"
        return (
            f"RegisterDeployment({self.quorum_system!r}, "
            f"clients={len(self.clients)}, {mode})"
        )
