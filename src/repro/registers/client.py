"""Client-side shared register subsystem.

Implements the read and write protocols of the probabilistic quorum
algorithm (Section 4) and, when ``monotone=True``, the monotone variant of
Section 6.2: the client remembers the largest timestamp (and value) any of
its reads has returned, and answers from that cache when a read quorum
returns only older values.  Exactly the same client code over a *strict*
quorum system yields the regular-register baseline.

Fault tolerance (the paper's Section 4 availability story, made
operational) lives in :class:`RetryPolicy`: a stalled operation resamples
a fresh quorum on an exponential-backoff timer with deterministic
RNG-driven jitter, re-sending only to members that have not yet replied,
and an optional per-operation deadline rejects the operation's future
with :class:`OperationTimeout` so callers never hang on a dead system.
"""

import itertools
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.core.history import ReadRecord, WriteRecord
from repro.core.register import AbstractRegister
from repro.core.timestamps import Timestamp
from repro.obs.core import DISABLED, Observability
from repro.quorum.base import QuorumSystem
from repro.registers.messages import (
    ReadQuery,
    ReadReply,
    StaleViewNack,
    ViewReadQuery,
    ViewReadReply,
    ViewWriteAck,
    ViewWriteUpdate,
    WriteAck,
    WriteUpdate,
)
from repro.registers.space import RegisterSpace
from repro.sim.futures import Future
from repro.sim.network import Node
from repro.sim.scheduler import EventHandle


class SingleWriterViolation(RuntimeError):
    """Raised when a client writes a register it does not own."""


class OperationTimeout(RuntimeError):
    """An operation missed its deadline; its future is rejected with this."""


class QuorumUnreachable(OperationTimeout):
    """The client gave up on an operation after ``max_attempts`` resamples.

    Subclasses :class:`OperationTimeout` so every caller that already
    tolerates deadline misses (the service frontend sheds them, the
    workload driver counts them) handles permanent quorum loss the same
    way — but as a distinct type with structured fields, so tests and
    degradation counters can tell "slow" from "gone".
    """

    def __init__(self, register: str, kind: str, attempts: int) -> None:
        super().__init__(
            f"{kind}({register}) unreachable: no quorum assembled after "
            f"{attempts} attempt(s)"
        )
        self.register = register
        self.kind = kind
        self.attempts = attempts


@dataclass(frozen=True)
class RetryPolicy:
    """How a client retries stalled quorum operations.

    * ``interval`` — delay before the first retry.
    * ``backoff`` — multiplier applied per attempt (1.0 = fixed interval).
    * ``max_interval`` — cap on the backed-off delay (None = uncapped).
    * ``jitter`` — symmetric fractional jitter: each delay is scaled by a
      factor drawn uniformly from [1-jitter, 1+jitter].  The draw comes
      from a named RNG stream, so jittered runs stay exactly reproducible.
    * ``deadline`` — per-operation budget in simulated time; an operation
      still incomplete after this long fails with
      :class:`OperationTimeout`.  None disables deadlines.
    * ``max_attempts`` — total attempt budget (initial send plus
      retries); an operation that has resampled this many times without
      completing fails with :class:`QuorumUnreachable` instead of
      retrying forever.  None (the default) keeps the historical
      retry-until-deadline behaviour.
    """

    interval: float
    backoff: float = 2.0
    max_interval: Optional[float] = None
    jitter: float = 0.1
    deadline: Optional[float] = None
    max_attempts: Optional[int] = None

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(f"retry interval must be positive: {self.interval}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1: {self.backoff}")
        if self.max_interval is not None and self.max_interval < self.interval:
            raise ValueError(
                f"max_interval {self.max_interval} < interval {self.interval}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1): {self.jitter}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive: {self.deadline}")
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1: {self.max_attempts}"
            )

    @classmethod
    def fixed(
        cls, interval: float, deadline: Optional[float] = None
    ) -> "RetryPolicy":
        """The legacy fixed-interval policy (no backoff, no jitter)."""
        return cls(
            interval=interval, backoff=1.0, jitter=0.0, deadline=deadline
        )

    def delay(self, attempt: int, rng: np.random.Generator) -> float:
        """The delay before retry number ``attempt`` (0-based)."""
        value = self.interval * self.backoff ** attempt
        if self.max_interval is not None:
            value = min(value, self.max_interval)
        if self.jitter > 0.0:
            value *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return value


class _PendingOp:
    """Book-keeping for one in-flight read or write."""

    __slots__ = (
        "op_id",
        "register",
        "is_read",
        "quorum",
        "replies",
        "future",
        "record",
        "value",
        "timestamp",
        "retry_handle",
        "deadline_handle",
        "attempts",
        "started",
        "span",
        "members",
        "member_ids",
        "message",
        "view",
    )

    def __init__(
        self,
        op_id: int,
        register: str,
        is_read: bool,
        quorum: FrozenSet[int],
        future: Future,
        record,
        value: Any = None,
        timestamp: Optional[Timestamp] = None,
    ) -> None:
        self.op_id = op_id
        self.register = register
        self.is_read = is_read
        self.quorum = quorum
        self.replies: Dict[int, Any] = {}
        self.future = future
        self.record = record
        self.value = value
        self.timestamp = timestamp
        self.retry_handle: Optional[EventHandle] = None
        self.deadline_handle: Optional[EventHandle] = None
        self.attempts = 0
        self.started = 0.0
        self.span = None
        # Per-attempt caches, built lazily by _send_round: the sorted
        # member indices of the current quorum, their server node ids
        # (same order), and the round's immutable query/update message.
        # The member caches are invalidated on resample (_retry); the
        # message never is — its fields are constant for the op's life.
        self.members: Optional[List[int]] = None
        self.member_ids: Optional[List[int]] = None
        self.message: Any = None
        # View id this op is currently dispatched under; None on static
        # (membership-free) deployments, where messages are unstamped.
        self.view: Optional[int] = None

    def complete_against_quorum(self) -> bool:
        """True once every member of the current quorum has replied."""
        # frozenset.issubset over the replies dict runs the membership
        # loop in C; this is checked once per reply on the hot path.
        return self.quorum.issubset(self.replies)

    def unanswered(self) -> List[int]:
        """Current quorum members with no reply yet, in sorted order."""
        return [m for m in sorted(self.quorum) if m not in self.replies]


class QuorumRegisterClient(Node):
    """The shared register subsystem attached to one application process."""

    def __init__(
        self,
        client_id: int,
        space: RegisterSpace,
        quorum_system: QuorumSystem,
        server_ids: List[int],
        rng: np.random.Generator,
        monotone: bool = False,
        retry_interval: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        retry_rng: Optional[np.random.Generator] = None,
        observability: Optional[Observability] = None,
        spec_monitor: Optional[Any] = None,
    ) -> None:
        super().__init__()
        # Per-instance message op ids: a class-level counter would leak
        # across deployments in one process, making back-to-back runs
        # carry different wire-level op ids than fresh-process runs.
        self._op_ids = itertools.count(1)
        self.client_id = client_id
        self.space = space
        self.quorum_system = quorum_system
        self.server_ids = list(server_ids)
        # Reverse map for reply handling: node id -> quorum member index.
        # list.index is O(n) and runs once per reply, which dominates at
        # large n; the dict probe is O(1).
        self._server_index = {
            node_id: index for index, node_id in enumerate(self.server_ids)
        }
        self.rng = rng
        self.monotone = monotone
        if retry_policy is None and retry_interval is not None:
            retry_policy = RetryPolicy(interval=retry_interval)
        self.retry_policy = retry_policy
        # Jitter draws get their own stream (falling back to the quorum
        # stream) so backoff randomisation never perturbs quorum choice.
        self._retry_rng = retry_rng if retry_rng is not None else rng
        self._pending: Dict[int, _PendingOp] = {}
        # Monotone cache: register name -> (timestamp, value) of the most
        # recent value this client has returned (Section 6.2).
        self._cache: Dict[str, Tuple[Timestamp, Any]] = {}
        # Writer state: next sequence number per owned register.
        self._write_seq: Dict[str, int] = {}
        self.reads_performed = 0
        self.writes_performed = 0
        self.cache_hits = 0
        # Fault-tolerance accounting (per client, surfaced by Alg1Result).
        self.retries = 0
        self.timeouts = 0
        self.ops_completed = 0
        self.ops_completed_under_failure = 0
        # Dynamic membership (repro.membership): attached post-construction
        # by the deployment when a schedule is installed; None on static
        # deployments, where every membership branch below is skipped.
        self._membership: Optional[Any] = None
        self._view: Optional[Any] = None
        self._view_rng: Optional[np.random.Generator] = None
        self.unreachable = 0
        self.stale_nacks = 0
        self.view_refreshes = 0
        # Observability: per-op spans and the latency histogram are the
        # only *live* instrumentation in the register stack (everything
        # else is collected post-run).  Both sides are prefetched to a
        # cheap truthiness/None check so disabled runs pay nothing on the
        # per-operation path — and nothing at all per message.
        self.observability = observability if observability is not None else DISABLED
        self._trace_on = self.observability.spans.enabled
        # Online spec monitor (repro.core.monitor): same null-object idiom
        # as observability — one prefetched boolean guards every hook, so
        # unmonitored runs take no extra branches on the completion path.
        self.spec_monitor = spec_monitor
        self._monitor_on = spec_monitor is not None and spec_monitor.enabled
        if self.observability.metrics.enabled:
            latency = self.observability.metrics.histogram(
                "repro_op_latency",
                "Operation latency in simulated time units, by op kind.",
                labelnames=("kind",),
            )
            self._latency = {
                "read": latency.labels("read"),
                "write": latency.labels("write"),
            }
        else:
            self._latency = None

    @property
    def retry_interval(self) -> Optional[float]:
        """Base retry interval (None when retries are disabled)."""
        return self.retry_policy.interval if self.retry_policy else None

    @property
    def pending_ops(self) -> int:
        """Number of operations currently in flight."""
        return len(self._pending)

    @property
    def hung_ops(self) -> int:
        """Operations with no settlement path left.

        With a deadline armed this counts pending operations older than
        the deadline — always zero, since the deadline event rejects them
        first; the counter is the run-level assertion of that invariant.
        Without a deadline every still-pending operation counts: nothing
        guarantees it ever settles.
        """
        deadline = (
            self.retry_policy.deadline if self.retry_policy is not None
            else None
        )
        if deadline is None:
            return len(self._pending)
        now = self.network.scheduler.now
        return sum(
            1 for op in self._pending.values() if now - op.started > deadline
        )

    # ------------------------------------------------------------------ #
    # Quorum plumbing
    # ------------------------------------------------------------------ #

    def _members(self, quorum: FrozenSet[int]) -> List[int]:
        """Map abstract quorum indices {0..n-1} to actual server node ids."""
        return [self.server_ids[i] for i in sorted(quorum)]

    def _send_round(self, op: _PendingOp) -> None:
        """(Re)send the operation to quorum members that have not replied.

        Skipping already-answered members keeps the Section 6.4 message
        counts honest: a retry that re-sent to every member of the
        resampled quorum would double-count traffic the servers already
        answered.
        """
        if op.members is None:
            # Sorted once per attempt: the quorum is fixed until the next
            # resample, so re-running sorted() + the index->id list-comp
            # on every round (the pre-existing behaviour) was pure waste.
            op.members = sorted(op.quorum)
            op.member_ids = [self.server_ids[m] for m in op.members]
        if op.replies:
            servers = [
                node_id
                for member, node_id in zip(op.members, op.member_ids)
                if member not in op.replies
            ]
        else:
            servers = op.member_ids
        if not servers:
            return
        if op.span is not None:
            op.span.event(
                self.network.scheduler.now, "quorum_round",
                members=len(servers), attempt=op.attempts,
            )
        message = op.message
        if message is None:
            # Built once per dispatch: the fields never change across
            # rounds, and immutability lets retries re-send the same
            # instance.  (A view refresh clears the cache — the stamp
            # changes — but a static deployment never does.)
            if op.view is None:
                if op.is_read:
                    message = ReadQuery(op.register, op.op_id)
                else:
                    message = WriteUpdate(
                        op.register, op.op_id, op.value, op.timestamp
                    )
            elif op.is_read:
                message = ViewReadQuery(op.register, op.op_id, op.view)
            else:
                message = ViewWriteUpdate(
                    op.register, op.op_id, op.value, op.timestamp, op.view
                )
            op.message = message
        # One immutable message shared across the round, one batched
        # delay draw for the whole quorum (Network.broadcast) — instead
        # of a message allocation and a scalar Generator call per member.
        self.network.broadcast(self.node_id, servers, message)

    def _begin(self, op: _PendingOp) -> None:
        """Register the op, send the first round, arm retry and deadline."""
        self._pending[op.op_id] = op
        op.started = self.network.scheduler.now
        if self._trace_on:
            op.span = self.observability.spans.start(
                "read" if op.is_read else "write",
                op.started,
                client=self.client_id,
                register=op.register,
                op_id=op.op_id,
            )
        self._send_round(op)
        scheduler = self.network.scheduler
        if self.retry_policy is not None:
            op.retry_handle = scheduler.schedule(
                self.retry_policy.delay(0, self._retry_rng),
                self._retry,
                op.op_id,
            )
            if self.retry_policy.deadline is not None:
                op.deadline_handle = scheduler.schedule(
                    self.retry_policy.deadline, self._expire, op.op_id
                )

    def _retry(self, op_id: int) -> None:
        """Resample a fresh quorum for a stalled operation (crash tolerance)."""
        op = self._pending.get(op_id)
        if op is None:
            return
        policy = self.retry_policy
        if (
            policy.max_attempts is not None
            and op.attempts + 1 >= policy.max_attempts
        ):
            # Attempt budget exhausted (initial send counts as attempt
            # one): give up instead of resampling forever against a
            # permanently lost quorum.
            self._give_up(op)
            return
        op.attempts += 1
        self.retries += 1
        if self._monitor_on:
            self.spec_monitor.on_retry(
                op.register, "read" if op.is_read else "write", op.attempts
            )
        if op.span is not None:
            op.span.event(
                self.network.scheduler.now, "retry", attempt=op.attempts
            )
        if self._membership is not None:
            # Retry time is also view-refresh time: a stalled quorum is
            # often stalled *because* its members left the view.
            self._refresh_view()
            if op.view != self._view.view_id:
                op.view = self._view.view_id
                op.message = None  # stamp changed; rebuild next round
            op.quorum = self._view.sample(self._view_rng)
        elif op.is_read:
            op.quorum = self.quorum_system.read_quorum(self.rng)
        else:
            op.quorum = self.quorum_system.write_quorum(self.rng)
        # The member caches follow the quorum; the message does not (its
        # fields are op-constant).
        op.members = None
        op.member_ids = None
        if op.complete_against_quorum():
            # The fresh quorum is already fully covered by earlier replies.
            self._finish(op)
            return
        self._send_round(op)
        op.retry_handle = self.network.scheduler.schedule(
            self.retry_policy.delay(op.attempts, self._retry_rng),
            self._retry,
            op.op_id,
        )

    def _expire(self, op_id: int) -> None:
        """Deadline hit: reject the operation's future with OperationTimeout."""
        op = self._pending.get(op_id)
        if op is None:
            return
        self._teardown(op)
        self.timeouts += 1
        if self._monitor_on:
            self.spec_monitor.on_timeout(
                op.register, "read" if op.is_read else "write"
            )
        if op.span is not None:
            self.observability.spans.finish(
                op.span, self.network.scheduler.now, status="timeout"
            )
        kind = "read" if op.is_read else "write"
        op.future.fail(
            OperationTimeout(
                f"{kind}({op.register}) by c{self.client_id} exceeded its "
                f"deadline of {self.retry_policy.deadline} after "
                f"{op.attempts + 1} attempt(s)"
            )
        )

    def _give_up(self, op: _PendingOp) -> None:
        """Attempt budget exhausted: fail the future with QuorumUnreachable."""
        self._teardown(op)
        self.unreachable += 1
        kind = "read" if op.is_read else "write"
        if self._monitor_on:
            self.spec_monitor.on_timeout(op.register, kind)
        if op.span is not None:
            self.observability.spans.finish(
                op.span, self.network.scheduler.now, status="unreachable"
            )
        op.future.fail(QuorumUnreachable(op.register, kind, op.attempts + 1))

    def _teardown(self, op: _PendingOp) -> None:
        """Drop the op from the pending table and cancel its timers."""
        del self._pending[op.op_id]
        if op.retry_handle is not None:
            op.retry_handle.cancel()
        if op.deadline_handle is not None:
            op.deadline_handle.cancel()

    # ------------------------------------------------------------------ #
    # Dynamic membership (repro.membership)
    # ------------------------------------------------------------------ #

    def attach_membership(self, manager: Any) -> None:
        """Join a view-managed deployment (called by install_membership)."""
        self._membership = manager
        self._view = manager.current_view
        self._view_rng = manager.client_view_rng(
            self._view.view_id, self.client_id, self.rng
        )

    def _roster_extended(self, node_id: int) -> None:
        """A new replica server exists; extend the id/index maps."""
        self._server_index[node_id] = len(self.server_ids)
        self.server_ids.append(node_id)

    def _refresh_view(self) -> None:
        """Adopt the manager's current view if it is newer than ours."""
        view = self._membership.current_view
        if view.view_id != self._view.view_id:
            self._view = view
            self._view_rng = self._membership.client_view_rng(
                view.view_id, self.client_id, self.rng
            )
            self.view_refreshes += 1

    def _redispatch(self, op: _PendingOp) -> None:
        """Re-dispatch a nacked op under the client's current view.

        Earlier replies are kept — their values are valid regardless of
        which view served them — so the op completes as soon as the new
        quorum is covered, possibly immediately.
        """
        view = self._view
        if op.view == view.view_id:
            return  # duplicate nacks from one stale round; already moved
        op.view = view.view_id
        op.quorum = view.sample(self._view_rng)
        op.members = None
        op.member_ids = None
        op.message = None
        if op.span is not None:
            op.span.event(
                self.network.scheduler.now, "view_redispatch",
                view=view.view_id,
            )
        if op.complete_against_quorum():
            self._finish(op)
            return
        self._send_round(op)

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #

    def read(self, register: str) -> Future:
        """Invoke a read; the future resolves with the returned value."""
        info = self.space.info(register)
        now = self.network.scheduler.now
        record: ReadRecord = info.history.begin_read(self.client_id, now)
        future = Future(f"read({register}) by c{self.client_id}")
        if self._membership is not None:
            self._refresh_view()
            quorum = self._view.sample(self._view_rng)
        else:
            quorum = self.quorum_system.read_quorum(self.rng)
            self.quorum_system.validate_quorum(quorum)
        op = _PendingOp(
            next(self._op_ids), register, True, quorum, future, record
        )
        if self._membership is not None:
            op.view = self._view.view_id
        self.reads_performed += 1
        self._begin(op)
        return future

    def write(self, register: str, value: Any) -> Future:
        """Invoke a write; the future resolves (with None) on the Ack."""
        info = self.space.info(register)
        if info.writer is not None and info.writer != self.client_id:
            raise SingleWriterViolation(
                f"client {self.client_id} cannot write {register!r}; "
                f"owner is client {info.writer}"
            )
        seq = self._write_seq.get(register, 0) + 1
        self._write_seq[register] = seq
        timestamp = Timestamp(seq, self.client_id)
        now = self.network.scheduler.now
        record: WriteRecord = info.history.begin_write(
            self.client_id, now, value, timestamp
        )
        future = Future(f"write({register}) by c{self.client_id}")
        if self._membership is not None:
            self._refresh_view()
            quorum = self._view.sample(self._view_rng)
        else:
            quorum = self.quorum_system.write_quorum(self.rng)
            self.quorum_system.validate_quorum(quorum)
        op = _PendingOp(
            next(self._op_ids), register, False, quorum, future, record,
            value=value, timestamp=timestamp,
        )
        if self._membership is not None:
            op.view = self._view.view_id
        self.writes_performed += 1
        self._begin(op)
        return future

    # ------------------------------------------------------------------ #
    # Message handling
    # ------------------------------------------------------------------ #

    def on_message(self, src: int, message: Any) -> None:
        # The plain-reply branch stays first: it is the only branch a
        # membership-free run ever takes, and the native client core
        # recognises exactly these two types — everything view-stamped
        # soft-falls back here per message.
        if isinstance(message, (ReadReply, WriteAck)):
            op = self._pending.get(message.op_id)
            if op is None:
                return  # late reply for a completed operation
            server_index = self._server_index.get(src)
            if server_index is None:
                return  # reply from an unknown node
            op.replies[server_index] = message
            if op.span is not None:
                op.span.event(
                    self.network.scheduler.now, "reply", server=server_index
                )
            if op.complete_against_quorum():
                self._finish(op)
        elif isinstance(message, (ViewReadReply, ViewWriteAck)):
            if self._membership is None:
                return  # view traffic on a static deployment: drop
            if message.view > self._view.view_id:
                # A draining leaver (or newer member) answered an op we
                # stamped with an old view; the reply is still a valid
                # answer, and its stamp tells us to refresh.
                self._refresh_view()
            op = self._pending.get(message.op_id)
            if op is None:
                return
            server_index = self._server_index.get(src)
            if server_index is None:
                return
            op.replies[server_index] = message
            if op.span is not None:
                op.span.event(
                    self.network.scheduler.now, "reply", server=server_index
                )
            if op.complete_against_quorum():
                self._finish(op)
        elif isinstance(message, StaleViewNack):
            if self._membership is None:
                return
            self.stale_nacks += 1
            self._refresh_view()
            op = self._pending.get(message.op_id)
            if op is None:
                return  # op already completed (or expired) elsewhere
            self._redispatch(op)

    def _finish(self, op: _PendingOp) -> None:
        self._teardown(op)
        self.ops_completed += 1
        if self.network.failures.any_failures:
            self.ops_completed_under_failure += 1
        now = self.network.scheduler.now
        if self._latency is not None:
            kind = "read" if op.is_read else "write"
            self._latency[kind].observe(now - op.started)
        if op.span is not None:
            self.observability.spans.finish(op.span, now, status="ok")
        if not op.is_read:
            op.record.respond(now)
            if self._monitor_on:
                self.spec_monitor.on_write_complete(
                    self.client_id, op.record,
                    self.space.info(op.register).history,
                )
            op.future.resolve(None)
            return
        # Read: return the highest-timestamped value among quorum replies,
        # consulting the monotone cache when enabled.
        quorum_replies = [
            op.replies[i]
            for i in op.quorum
            if isinstance(op.replies.get(i), (ReadReply, ViewReadReply))
        ]
        best = max(quorum_replies, key=lambda reply: reply.timestamp)
        value, timestamp = best.value, best.timestamp
        if self.monotone:
            cached = self._cache.get(op.register)
            if cached is not None and cached[0] > timestamp:
                timestamp, value = cached
                self.cache_hits += 1
            else:
                self._cache[op.register] = (timestamp, value)
        op.record.complete(now, value, timestamp)
        if self._monitor_on:
            self.spec_monitor.on_read_complete(
                self.client_id, op.record, self.space.info(op.register).history
            )
        op.future.resolve(value)

    def handle(self, register: str) -> "RegisterHandle":
        """A per-register view implementing :class:`AbstractRegister`."""
        return RegisterHandle(self, register)

    def __repr__(self) -> str:
        mode = "monotone" if self.monotone else "plain"
        return (
            f"QuorumRegisterClient(c{self.client_id}, {mode}, "
            f"reads={self.reads_performed}, writes={self.writes_performed})"
        )


class RegisterHandle(AbstractRegister):
    """Binds a client and a register name to the AbstractRegister interface."""

    def __init__(self, client: QuorumRegisterClient, register: str) -> None:
        super().__init__(register, client.space.history(register))
        self.client = client

    def read(self) -> Future:
        return self.client.read(self.name)

    def write(self, value: Any) -> Future:
        return self.client.write(self.name, value)

    def __repr__(self) -> str:
        return f"RegisterHandle({self.name!r} via c{self.client.client_id})"
