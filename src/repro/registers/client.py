"""Client-side shared register subsystem.

Implements the read and write protocols of the probabilistic quorum
algorithm (Section 4) and, when ``monotone=True``, the monotone variant of
Section 6.2: the client remembers the largest timestamp (and value) any of
its reads has returned, and answers from that cache when a read quorum
returns only older values.  Exactly the same client code over a *strict*
quorum system yields the regular-register baseline.
"""

import itertools
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.core.history import ReadRecord, WriteRecord
from repro.core.register import AbstractRegister
from repro.core.timestamps import Timestamp
from repro.quorum.base import QuorumSystem
from repro.registers.messages import ReadQuery, ReadReply, WriteAck, WriteUpdate
from repro.registers.space import RegisterSpace
from repro.sim.futures import Future
from repro.sim.network import Node
from repro.sim.scheduler import EventHandle


class SingleWriterViolation(RuntimeError):
    """Raised when a client writes a register it does not own."""


class _PendingOp:
    """Book-keeping for one in-flight read or write."""

    __slots__ = (
        "op_id",
        "register",
        "is_read",
        "quorum",
        "replies",
        "future",
        "record",
        "value",
        "timestamp",
        "retry_handle",
    )

    def __init__(
        self,
        op_id: int,
        register: str,
        is_read: bool,
        quorum: FrozenSet[int],
        future: Future,
        record,
        value: Any = None,
        timestamp: Optional[Timestamp] = None,
    ) -> None:
        self.op_id = op_id
        self.register = register
        self.is_read = is_read
        self.quorum = quorum
        self.replies: Dict[int, Any] = {}
        self.future = future
        self.record = record
        self.value = value
        self.timestamp = timestamp
        self.retry_handle: Optional[EventHandle] = None

    def complete_against_quorum(self) -> bool:
        """True once every member of the current quorum has replied."""
        return all(member in self.replies for member in self.quorum)


class QuorumRegisterClient(Node):
    """The shared register subsystem attached to one application process."""

    _op_ids = itertools.count(1)

    def __init__(
        self,
        client_id: int,
        space: RegisterSpace,
        quorum_system: QuorumSystem,
        server_ids: List[int],
        rng: np.random.Generator,
        monotone: bool = False,
        retry_interval: Optional[float] = None,
    ) -> None:
        super().__init__()
        self.client_id = client_id
        self.space = space
        self.quorum_system = quorum_system
        self.server_ids = list(server_ids)
        self.rng = rng
        self.monotone = monotone
        self.retry_interval = retry_interval
        self._pending: Dict[int, _PendingOp] = {}
        # Monotone cache: register name -> (timestamp, value) of the most
        # recent value this client has returned (Section 6.2).
        self._cache: Dict[str, Tuple[Timestamp, Any]] = {}
        # Writer state: next sequence number per owned register.
        self._write_seq: Dict[str, int] = {}
        self.reads_performed = 0
        self.writes_performed = 0
        self.cache_hits = 0

    # ------------------------------------------------------------------ #
    # Quorum plumbing
    # ------------------------------------------------------------------ #

    def _members(self, quorum: FrozenSet[int]) -> List[int]:
        """Map abstract quorum indices {0..n-1} to actual server node ids."""
        return [self.server_ids[i] for i in sorted(quorum)]

    def _send_round(self, op: _PendingOp) -> None:
        for server in self._members(op.quorum):
            if op.is_read:
                self.send(server, ReadQuery(op.register, op.op_id))
            else:
                self.send(
                    server,
                    WriteUpdate(op.register, op.op_id, op.value, op.timestamp),
                )
        if self.retry_interval is not None:
            op.retry_handle = self.network.scheduler.schedule(
                self.retry_interval, self._retry, op.op_id
            )

    def _retry(self, op_id: int) -> None:
        """Resample a fresh quorum for a stalled operation (crash tolerance)."""
        op = self._pending.get(op_id)
        if op is None:
            return
        if op.is_read:
            op.quorum = self.quorum_system.read_quorum(self.rng)
        else:
            op.quorum = self.quorum_system.write_quorum(self.rng)
        if op.complete_against_quorum():
            # The fresh quorum is already fully covered by earlier replies.
            self._finish(op)
            return
        self._send_round(op)

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #

    def read(self, register: str) -> Future:
        """Invoke a read; the future resolves with the returned value."""
        info = self.space.info(register)
        now = self.network.scheduler.now
        record: ReadRecord = info.history.begin_read(self.client_id, now)
        future = Future(f"read({register}) by c{self.client_id}")
        quorum = self.quorum_system.read_quorum(self.rng)
        self.quorum_system.validate_quorum(quorum)
        op = _PendingOp(
            next(self._op_ids), register, True, quorum, future, record
        )
        self._pending[op.op_id] = op
        self.reads_performed += 1
        self._send_round(op)
        return future

    def write(self, register: str, value: Any) -> Future:
        """Invoke a write; the future resolves (with None) on the Ack."""
        info = self.space.info(register)
        if info.writer is not None and info.writer != self.client_id:
            raise SingleWriterViolation(
                f"client {self.client_id} cannot write {register!r}; "
                f"owner is client {info.writer}"
            )
        seq = self._write_seq.get(register, 0) + 1
        self._write_seq[register] = seq
        timestamp = Timestamp(seq, self.client_id)
        now = self.network.scheduler.now
        record: WriteRecord = info.history.begin_write(
            self.client_id, now, value, timestamp
        )
        future = Future(f"write({register}) by c{self.client_id}")
        quorum = self.quorum_system.write_quorum(self.rng)
        self.quorum_system.validate_quorum(quorum)
        op = _PendingOp(
            next(self._op_ids), register, False, quorum, future, record,
            value=value, timestamp=timestamp,
        )
        self._pending[op.op_id] = op
        self.writes_performed += 1
        self._send_round(op)
        return future

    # ------------------------------------------------------------------ #
    # Message handling
    # ------------------------------------------------------------------ #

    def on_message(self, src: int, message: Any) -> None:
        if isinstance(message, (ReadReply, WriteAck)):
            op = self._pending.get(message.op_id)
            if op is None:
                return  # late reply for a completed operation
            try:
                server_index = self.server_ids.index(src)
            except ValueError:
                return  # reply from an unknown node
            op.replies[server_index] = message
            if op.complete_against_quorum():
                self._finish(op)

    def _finish(self, op: _PendingOp) -> None:
        del self._pending[op.op_id]
        if op.retry_handle is not None:
            op.retry_handle.cancel()
        now = self.network.scheduler.now
        if not op.is_read:
            op.record.respond(now)
            op.future.resolve(None)
            return
        # Read: return the highest-timestamped value among quorum replies,
        # consulting the monotone cache when enabled.
        quorum_replies = [
            op.replies[i] for i in op.quorum if isinstance(op.replies.get(i), ReadReply)
        ]
        best = max(quorum_replies, key=lambda reply: reply.timestamp)
        value, timestamp = best.value, best.timestamp
        if self.monotone:
            cached = self._cache.get(op.register)
            if cached is not None and cached[0] > timestamp:
                timestamp, value = cached
                self.cache_hits += 1
            else:
                self._cache[op.register] = (timestamp, value)
        op.record.complete(now, value, timestamp)
        op.future.resolve(value)

    def handle(self, register: str) -> "RegisterHandle":
        """A per-register view implementing :class:`AbstractRegister`."""
        return RegisterHandle(self, register)

    def __repr__(self) -> str:
        mode = "monotone" if self.monotone else "plain"
        return (
            f"QuorumRegisterClient(c{self.client_id}, {mode}, "
            f"reads={self.reads_performed}, writes={self.writes_performed})"
        )


class RegisterHandle(AbstractRegister):
    """Binds a client and a register name to the AbstractRegister interface."""

    def __init__(self, client: QuorumRegisterClient, register: str) -> None:
        super().__init__(register, client.space.history(register))
        self.client = client

    def read(self) -> Future:
        return self.client.read(self.name)

    def write(self, value: Any) -> Future:
        return self.client.write(self.name, value)

    def __repr__(self) -> str:
        return f"RegisterHandle({self.name!r} via c{self.client.client_id})"
