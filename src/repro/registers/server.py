"""Replica server.

Each server keeps, per register, a local replica value and its timestamp
(Section 4).  A ReadQuery is answered with the current replica; a
WriteUpdate installs the value only when its timestamp is newer than the
stored one, which makes the protocol tolerate message reordering.

Dynamic membership (``repro.membership``) rides on the view-stamped
message variants: when a :class:`~repro.membership.manager.ViewManager`
attaches a :class:`~repro.membership.manager.ServerViewState`, the
server answers ``ViewReadQuery``/``ViewWriteUpdate`` with replies
carrying its current view id, nacks requests stamped with an older view
(``StaleViewNack`` — the client refreshes and re-dispatches), serves
``StateRequest`` catch-up queries from joining replicas, and — once
retired after its drain window — ignores all traffic, counted.  A
deployment with no membership schedule never attaches the state, and
every view-stamped branch sits after the plain-message dispatch, so the
membership-free hot path is unchanged.
"""

from typing import Any, Dict, Optional, Tuple

from repro.core.timestamps import Timestamp
from repro.registers.messages import (
    ReadQuery,
    ReadReply,
    StaleViewNack,
    StateReply,
    StateRequest,
    ViewReadQuery,
    ViewReadReply,
    ViewWriteAck,
    ViewWriteUpdate,
    WriteAck,
    WriteUpdate,
)
from repro.registers.space import RegisterSpace
from repro.sim.network import Node


class ReplicaServer(Node):
    """One replica server hosting a replica of every register in the space."""

    def __init__(self, space: RegisterSpace) -> None:
        super().__init__()
        self.space = space
        self._replicas: Dict[str, Tuple[Timestamp, Any]] = {}
        self.reads_served = 0
        self.writes_applied = 0
        self.stale_updates_ignored = 0
        self.unknown_messages_ignored = 0
        # Membership state, attached by a ViewManager; None on static
        # deployments (the overwhelmingly common case).
        self.view_state: Optional[Any] = None
        self.stale_nacks_sent = 0
        self.retired_messages_ignored = 0
        self.state_requests_served = 0
        self.state_entries_applied = 0

    def _replica(self, register: str) -> Tuple[Timestamp, Any]:
        # Hot path: one dict probe per message.  The space.info lookup
        # (and its KeyError validation) is paid once per register, on the
        # first message that touches it; every later access hits the
        # local replica cache directly.
        try:
            return self._replicas[register]
        except KeyError:
            info = self.space.info(register)
            entry = (Timestamp.ZERO, info.initial_value)
            self._replicas[register] = entry
            return entry

    def replica_timestamp(self, register: str) -> Timestamp:
        """The timestamp of this server's replica (for tests/inspection)."""
        return self._replica(register)[0]

    def replica_value(self, register: str) -> Any:
        """The value of this server's replica (for tests/inspection)."""
        return self._replica(register)[1]

    def metric_counters(self) -> Dict[str, int]:
        """This server's counters, keyed for the metrics collectors.

        Read post-run by :func:`repro.obs.collect.collect_deployment`; the
        dict shape is the contract, so any node exposing it can feed the
        per-server instrument families.  Membership counters appear only
        when a view manager is attached, keeping membership-free metric
        exports identical to builds without the feature.
        """
        counters = {
            "reads_served": self.reads_served,
            "writes_applied": self.writes_applied,
            "stale_updates_ignored": self.stale_updates_ignored,
            "unknown_messages_ignored": self.unknown_messages_ignored,
        }
        if self.view_state is not None:
            counters.update(
                stale_nacks_sent=self.stale_nacks_sent,
                retired_messages_ignored=self.retired_messages_ignored,
                state_requests_served=self.state_requests_served,
                state_entries_applied=self.state_entries_applied,
            )
        return counters

    def on_message(self, src: int, message: Any) -> None:
        # Replies go through network.send directly: Node.send's attachment
        # checks cost a function call per reply, and every message a
        # server handles produces exactly one reply.
        if isinstance(message, ReadQuery):
            timestamp, value = self._replica(message.register)
            self.reads_served += 1
            self.network.send(
                self.node_id,
                src,
                ReadReply(message.register, message.op_id, value, timestamp),
            )
        elif isinstance(message, WriteUpdate):
            current_ts, _ = self._replica(message.register)
            if message.timestamp > current_ts:
                self._replicas[message.register] = (message.timestamp, message.value)
                self.writes_applied += 1
            else:
                self.stale_updates_ignored += 1
            self.network.send(
                self.node_id, src, WriteAck(message.register, message.op_id)
            )
        elif isinstance(message, ViewReadQuery):
            self._on_view_read(src, message)
        elif isinstance(message, ViewWriteUpdate):
            self._on_view_write(src, message)
        elif isinstance(message, StateRequest):
            self._on_state_request(src, message)
        elif isinstance(message, StateReply):
            self._on_state_reply(src, message)
        else:
            # Unknown message kinds are ignored, matching Node's default —
            # but counted, so a misrouted or malformed stream leaves a
            # trace instead of vanishing.
            self.unknown_messages_ignored += 1

    # ------------------------------------------------------------------ #
    # View-stamped protocol (dynamic membership)
    # ------------------------------------------------------------------ #

    def _gate(self, message: Any, src: int) -> bool:
        """Common view checks; True when the request should be answered.

        Retired servers ignore everything (counted).  An *active* member
        nacks requests stamped with an older view, forcing the client to
        refresh; a *draining* leaver keeps answering them — its reply
        carries the new view id, which refreshes the client anyway —
        so in-flight old-view operations complete during the drain.
        """
        state = self.view_state
        if state.retired:
            self.retired_messages_ignored += 1
            return False
        if message.view < state.view_id and not state.retiring:
            self.stale_nacks_sent += 1
            self.network.send(
                self.node_id,
                src,
                StaleViewNack(message.register, message.op_id, state.view_id),
            )
            return False
        return True

    def _on_view_read(self, src: int, message: ViewReadQuery) -> None:
        if self.view_state is None:
            self.unknown_messages_ignored += 1
            return
        if not self._gate(message, src):
            return
        timestamp, value = self._replica(message.register)
        self.reads_served += 1
        self.network.send(
            self.node_id,
            src,
            ViewReadReply(
                message.register, message.op_id, value, timestamp,
                self.view_state.view_id,
            ),
        )

    def _on_view_write(self, src: int, message: ViewWriteUpdate) -> None:
        if self.view_state is None:
            self.unknown_messages_ignored += 1
            return
        if not self._gate(message, src):
            return
        current_ts, _ = self._replica(message.register)
        if message.timestamp > current_ts:
            self._replicas[message.register] = (
                message.timestamp, message.value
            )
            self.writes_applied += 1
        else:
            self.stale_updates_ignored += 1
        self.network.send(
            self.node_id,
            src,
            ViewWriteAck(
                message.register, message.op_id, self.view_state.view_id
            ),
        )

    def _on_state_request(self, src: int, message: StateRequest) -> None:
        state = self.view_state
        if state is None:
            self.unknown_messages_ignored += 1
            return
        if state.retired:
            self.retired_messages_ignored += 1
            return
        # Every materialised replica, in sorted register order so the
        # reply payload is deterministic.  Untouched registers stay at
        # their declared initial values, which the joiner's lazy replica
        # probe supplies on first access.
        entries = tuple(
            (name, timestamp, value)
            for name, (timestamp, value) in sorted(self._replicas.items())
        )
        self.state_requests_served += 1
        self.network.send(
            self.node_id,
            src,
            StateReply(message.transfer_id, state.view_id, entries),
        )

    def _on_state_reply(self, src: int, message: StateReply) -> None:
        state = self.view_state
        if (
            state is None
            or state.transfer is None
            or message.transfer_id != state.transfer.transfer_id
        ):
            self.unknown_messages_ignored += 1
            return
        for name, timestamp, value in message.entries:
            current_ts, _ = self._replica(name)
            if timestamp > current_ts:
                self._replicas[name] = (timestamp, value)
                self.state_entries_applied += 1
        manager = state.manager
        src_index = manager.deployment.server_index[src]
        manager.on_transfer_reply(state.index, src_index, message.transfer_id)

    def __repr__(self) -> str:
        return (
            f"ReplicaServer(id={self.node_id}, reads={self.reads_served}, "
            f"writes={self.writes_applied})"
        )
