"""Replica server.

Each server keeps, per register, a local replica value and its timestamp
(Section 4).  A ReadQuery is answered with the current replica; a
WriteUpdate installs the value only when its timestamp is newer than the
stored one, which makes the protocol tolerate message reordering.
"""

from typing import Any, Dict, Tuple

from repro.core.timestamps import Timestamp
from repro.registers.messages import ReadQuery, ReadReply, WriteAck, WriteUpdate
from repro.registers.space import RegisterSpace
from repro.sim.network import Node


class ReplicaServer(Node):
    """One replica server hosting a replica of every register in the space."""

    def __init__(self, space: RegisterSpace) -> None:
        super().__init__()
        self.space = space
        self._replicas: Dict[str, Tuple[Timestamp, Any]] = {}
        self.reads_served = 0
        self.writes_applied = 0
        self.stale_updates_ignored = 0
        self.unknown_messages_ignored = 0

    def _replica(self, register: str) -> Tuple[Timestamp, Any]:
        # Hot path: one dict probe per message.  The space.info lookup
        # (and its KeyError validation) is paid once per register, on the
        # first message that touches it; every later access hits the
        # local replica cache directly.
        try:
            return self._replicas[register]
        except KeyError:
            info = self.space.info(register)
            entry = (Timestamp.ZERO, info.initial_value)
            self._replicas[register] = entry
            return entry

    def replica_timestamp(self, register: str) -> Timestamp:
        """The timestamp of this server's replica (for tests/inspection)."""
        return self._replica(register)[0]

    def replica_value(self, register: str) -> Any:
        """The value of this server's replica (for tests/inspection)."""
        return self._replica(register)[1]

    def metric_counters(self) -> Dict[str, int]:
        """This server's counters, keyed for the metrics collectors.

        Read post-run by :func:`repro.obs.collect.collect_deployment`; the
        dict shape is the contract, so any node exposing it can feed the
        per-server instrument families.
        """
        return {
            "reads_served": self.reads_served,
            "writes_applied": self.writes_applied,
            "stale_updates_ignored": self.stale_updates_ignored,
            "unknown_messages_ignored": self.unknown_messages_ignored,
        }

    def on_message(self, src: int, message: Any) -> None:
        # Replies go through network.send directly: Node.send's attachment
        # checks cost a function call per reply, and every message a
        # server handles produces exactly one reply.
        if isinstance(message, ReadQuery):
            timestamp, value = self._replica(message.register)
            self.reads_served += 1
            self.network.send(
                self.node_id,
                src,
                ReadReply(message.register, message.op_id, value, timestamp),
            )
        elif isinstance(message, WriteUpdate):
            current_ts, _ = self._replica(message.register)
            if message.timestamp > current_ts:
                self._replicas[message.register] = (message.timestamp, message.value)
                self.writes_applied += 1
            else:
                self.stale_updates_ignored += 1
            self.network.send(
                self.node_id, src, WriteAck(message.register, message.op_id)
            )
        else:
            # Unknown message kinds are ignored, matching Node's default —
            # but counted, so a misrouted or malformed stream leaves a
            # trace instead of vanishing.
            self.unknown_messages_ignored += 1

    def __repr__(self) -> str:
        return (
            f"ReplicaServer(id={self.node_id}, reads={self.reads_served}, "
            f"writes={self.writes_applied})"
        )
