"""Approximate agreement over random registers.

Section 8 of the paper: "We consider the approximate agreement problem to
be a good application for such a new model."  Each process holds a real
value; processes repeatedly read everyone's value and move to the
midpoint of the observed range.  The observed range at least halves per
pseudocycle, so values converge to within any ε.

Unlike the other applications the limit value is *trajectory-dependent*
(any point in the initial range is a legal outcome), so this is not an
ACO in the strict [C1]-[C3] sense — there is no single predetermined
fixed point.  We therefore publish, alongside each process's value, the
spread it last observed, and declare a component converged when that
spread is at most ε.  When every process's last observed spread is ≤ ε,
all published values provably lie within 3ε of each other (each value is
inside its publisher's observed interval of width ≤ ε, and the intervals
pairwise intersect the true range).
"""

import math
from typing import List, Optional, Tuple

from repro.iterative.aco import ACO

# A component value: (current estimate, spread last observed).
Estimate = Tuple[float, float]


class ApproximateAgreementACO(ACO):
    """Midpoint iteration for approximate agreement on reals."""

    def __init__(self, initial_values: List[float], epsilon: float = 1e-3) -> None:
        if not initial_values:
            raise ValueError("need at least one process value")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.initial_values = [float(v) for v in initial_values]
        self.epsilon = epsilon
        self.initial_range = max(self.initial_values) - min(self.initial_values)

    @property
    def m(self) -> int:
        return len(self.initial_values)

    def initial(self) -> List[Estimate]:
        return [(v, self.initial_range) for v in self.initial_values]

    def apply(self, i: int, x: List[Estimate]) -> Estimate:
        values = [pair[0] for pair in x]
        low, high = min(values), max(values)
        return ((low + high) / 2.0, high - low)

    def fixed_point(self) -> List[Estimate]:
        """No predetermined fixed point exists; any agreed value is legal."""
        raise NotImplementedError(
            "approximate agreement has a trajectory-dependent limit; "
            "convergence is spread-based (component_converged)"
        )

    def component_converged(self, i: int, value: Estimate) -> bool:
        _, spread = value
        return spread <= self.epsilon

    def contraction_depth(self) -> Optional[int]:
        """Pseudocycles to halve the initial range down to ε."""
        if self.initial_range <= self.epsilon:
            return 1
        return max(1, math.ceil(math.log2(self.initial_range / self.epsilon)))

    def agreement_spread(self, x: List[Estimate]) -> float:
        """The actual spread of the current estimates."""
        values = [pair[0] for pair in x]
        return max(values) - min(values)

    def __repr__(self) -> str:
        return (
            f"ApproximateAgreementACO(m={self.m}, eps={self.epsilon}, "
            f"range={self.initial_range})"
        )
