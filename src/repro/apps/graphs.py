"""Directed weighted graphs: the inputs of the shortest-path ACOs.

Includes the paper's experimental input — a 34-vertex unit-weight chain —
plus rings, 2-D grids, complete graphs and Erdős-Rényi random graphs for
the topology ablation E-ABL-TOPO, and the reference algorithms
(Floyd-Warshall, BFS hop distances, Dijkstra) used as ground truth.
"""

import heapq
import math
from collections import deque
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

INF = math.inf


class Graph:
    """A directed graph with positive edge weights."""

    def __init__(self, num_vertices: int) -> None:
        if num_vertices < 1:
            raise ValueError(f"need at least one vertex, got {num_vertices}")
        self.n = num_vertices
        self._adj: List[Dict[int, float]] = [{} for _ in range(num_vertices)]
        self._pred: List[Dict[int, float]] = [{} for _ in range(num_vertices)]

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add (or overwrite) the directed edge u -> v."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge ({u}, {v}) escapes vertices 0..{self.n - 1}")
        if weight <= 0:
            raise ValueError(f"edge weights must be positive, got {weight}")
        if u == v:
            raise ValueError(f"self-loop on vertex {u} not allowed")
        self._adj[u][v] = weight
        self._pred[v][u] = weight

    def add_undirected_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add edges in both directions."""
        self.add_edge(u, v, weight)
        self.add_edge(v, u, weight)

    def successors(self, u: int) -> Dict[int, float]:
        """Outgoing edges of ``u`` as {vertex: weight}."""
        return dict(self._adj[u])

    def predecessors(self, v: int) -> Dict[int, float]:
        """Incoming edges of ``v`` as {vertex: weight}."""
        return dict(self._pred[v])

    def weight(self, u: int, v: int) -> float:
        """Weight of edge u -> v, or infinity when absent."""
        return self._adj[u].get(v, INF)

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """All edges as (u, v, weight)."""
        for u in range(self.n):
            for v, w in self._adj[u].items():
                yield u, v, w

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return sum(len(adj) for adj in self._adj)

    # ------------------------------------------------------------------ #
    # Reference algorithms
    # ------------------------------------------------------------------ #

    def adjacency_matrix(self) -> List[List[float]]:
        """The weight matrix with 0 diagonal and infinity for non-edges."""
        matrix = [[INF] * self.n for _ in range(self.n)]
        for i in range(self.n):
            matrix[i][i] = 0.0
        for u, v, w in self.edges():
            matrix[u][v] = min(matrix[u][v], w)
        return matrix

    def floyd_warshall(self) -> List[List[float]]:
        """All-pairs shortest path distances (the APSP ground truth)."""
        dist = self.adjacency_matrix()
        for k in range(self.n):
            row_k = dist[k]
            for i in range(self.n):
                d_ik = dist[i][k]
                if d_ik == INF:
                    continue
                row_i = dist[i]
                for j in range(self.n):
                    candidate = d_ik + row_k[j]
                    if candidate < row_i[j]:
                        row_i[j] = candidate
        return dist

    def dijkstra(self, source: int) -> List[float]:
        """Single-source shortest path distances (the SSSP ground truth)."""
        dist = [INF] * self.n
        dist[source] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for v, w in self._adj[u].items():
                candidate = d + w
                if candidate < dist[v]:
                    dist[v] = candidate
                    heapq.heappush(heap, (candidate, v))
        return dist

    def bfs_hops(self, source: int) -> List[float]:
        """Hop counts (unweighted distances) from ``source``."""
        hops = [INF] * self.n
        hops[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for v in self._adj[u]:
                if hops[v] == INF:
                    hops[v] = hops[u] + 1
                    queue.append(v)
        return hops

    def reachable_from(self, source: int) -> frozenset:
        """Vertices reachable from ``source`` (including itself)."""
        hops = self.bfs_hops(source)
        return frozenset(v for v in range(self.n) if hops[v] < INF)

    def hop_diameter(self) -> int:
        """Max finite hop distance over all ordered pairs.

        This is the d in the paper's convergence bound M = ⌈log₂ d⌉ for
        APSP (for the 34-vertex unit chain, d = 33 and M = 6).
        """
        best = 0
        for source in range(self.n):
            for h in self.bfs_hops(source):
                if h < INF and h > best:
                    best = int(h)
        return best


# --------------------------------------------------------------------- #
# Generators
# --------------------------------------------------------------------- #


def chain_graph(n: int, weight: float = 1.0) -> Graph:
    """The paper's input: a directed chain with vertex n-1 the source and
    vertex 0 the sink (edges i+1 -> i), unit weights by default."""
    graph = Graph(n)
    for i in range(n - 1):
        graph.add_edge(i + 1, i, weight)
    return graph


def ring_graph(n: int, weight: float = 1.0) -> Graph:
    """A directed cycle 0 -> 1 -> ... -> n-1 -> 0."""
    if n < 2:
        raise ValueError(f"ring needs at least 2 vertices, got {n}")
    graph = Graph(n)
    for i in range(n):
        graph.add_edge(i, (i + 1) % n, weight)
    return graph


def grid_graph(rows: int, cols: int, weight: float = 1.0) -> Graph:
    """An undirected (bidirectional) rows x cols grid."""
    graph = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                graph.add_undirected_edge(v, v + 1, weight)
            if r + 1 < rows:
                graph.add_undirected_edge(v, v + cols, weight)
    return graph


def complete_graph(n: int, weight: float = 1.0) -> Graph:
    """A complete directed graph."""
    graph = Graph(n)
    for u in range(n):
        for v in range(n):
            if u != v:
                graph.add_edge(u, v, weight)
    return graph


def random_graph(
    n: int,
    edge_probability: float,
    rng: np.random.Generator,
    min_weight: float = 1.0,
    max_weight: float = 1.0,
    ensure_connected: bool = True,
) -> Graph:
    """An Erdős-Rényi digraph, optionally overlaid on a ring for
    strong connectivity (so APSP distances are all finite)."""
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError(f"edge probability must be in [0,1], got {edge_probability}")
    if not 0 < min_weight <= max_weight:
        raise ValueError(
            f"need 0 < min_weight <= max_weight, got {min_weight}, {max_weight}"
        )
    graph = Graph(n)

    def draw_weight() -> float:
        if min_weight == max_weight:
            return min_weight
        return float(rng.uniform(min_weight, max_weight))

    if ensure_connected and n >= 2:
        for i in range(n):
            graph.add_edge(i, (i + 1) % n, draw_weight())
    for u in range(n):
        for v in range(n):
            if u == v or v in graph.successors(u):
                continue
            if rng.random() < edge_probability:
                graph.add_edge(u, v, draw_weight())
    return graph


def apsp_pseudocycle_bound(graph: Graph) -> Optional[int]:
    """The paper's M = ⌈log₂ d⌉ bound for APSP on ``graph``.

    Returns 1 when the diameter is <= 1 (one pseudocycle suffices) and
    None for a graph with no edges at all.
    """
    d = graph.hop_diameter()
    if d == 0:
        return None
    return max(1, math.ceil(math.log2(d))) if d > 1 else 1
