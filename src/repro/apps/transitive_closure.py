"""Transitive closure as an ACO.

One component per vertex i: the set of vertices currently known reachable
from i.  The operator doubles path lengths each application, in parallel
with min-plus squaring for APSP:

    F_i(x) = x[i] ∪ ( union over k in x[i] of x[k] )

Rows only grow and are bounded by the true reachable set, so the iteration
contracts (in the superset ordering) onto the transitive closure in
⌈log₂ d⌉ pseudocycles, like APSP.
"""

from typing import FrozenSet, List, Optional

from repro.apps.graphs import Graph, apsp_pseudocycle_bound
from repro.iterative.aco import ACO

Reach = FrozenSet[int]


class TransitiveClosureACO(ACO):
    """Row-partitioned reachability via row-set doubling."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self._initial: List[Reach] = [
            frozenset([i]) | frozenset(graph.successors(i))
            for i in range(graph.n)
        ]
        self._fixed_point: List[Reach] = [
            graph.reachable_from(i) for i in range(graph.n)
        ]

    @property
    def m(self) -> int:
        return self.graph.n

    def initial(self) -> List[Reach]:
        return list(self._initial)

    def apply(self, i: int, x: List[Reach]) -> Reach:
        row = x[i]
        expanded = set(row)
        for k in row:
            expanded |= x[k]
        return frozenset(expanded)

    def fixed_point(self) -> List[Reach]:
        return list(self._fixed_point)

    def contraction_depth(self) -> Optional[int]:
        return apsp_pseudocycle_bound(self.graph)

    def __repr__(self) -> str:
        return f"TransitiveClosureACO(n={self.graph.n})"
