"""ACO applications.

The concrete asynchronously contracting operators the paper's framework
covers (Section 5 names shortest paths, constraint satisfaction and
transitive closure; Bertsekas-Tsitsiklis add linear systems):

* :class:`ApspACO` — all-pairs shortest paths, the paper's Section 7
  application (process i owns row i of the distance matrix).
* :class:`SsspACO` — single-source shortest paths (asynchronous
  Bellman-Ford).
* :class:`TransitiveClosureACO` — reachability by row-set doubling.
* :class:`ArcConsistencyACO` — constraint-satisfaction domain filtering.
* :class:`JacobiACO` — Jacobi iteration for strictly diagonally dominant
  linear systems (chaotic relaxation, Chazan-Miranker).

Plus the directed weighted graph type and generators in
:mod:`repro.apps.graphs`.
"""

from repro.apps.graphs import (
    Graph,
    chain_graph,
    complete_graph,
    grid_graph,
    random_graph,
    ring_graph,
)
from repro.apps.apsp import ApspACO
from repro.apps.sssp import SsspACO
from repro.apps.transitive_closure import TransitiveClosureACO
from repro.apps.constraint import ArcConsistencyACO, ConstraintProblem
from repro.apps.linear import JacobiACO
from repro.apps.agreement import ApproximateAgreementACO
from repro.apps.mdp import MarkovDecisionProcess, ValueIterationACO, gridworld

__all__ = [
    "ApproximateAgreementACO",
    "ApspACO",
    "MarkovDecisionProcess",
    "ValueIterationACO",
    "gridworld",
    "ArcConsistencyACO",
    "ConstraintProblem",
    "Graph",
    "JacobiACO",
    "SsspACO",
    "TransitiveClosureACO",
    "chain_graph",
    "complete_graph",
    "grid_graph",
    "random_graph",
    "ring_graph",
]
