"""Constraint satisfaction: arc-consistency filtering as an ACO.

A binary constraint network has m variables with finite domains and a set
of binary constraints.  One component per variable: its current domain.
The operator removes values with no support:

    F_i(x) = { v in x[i] : for every constraint (i, j),
                            some u in x[j] satisfies allowed(i, j, v, u) }

Domains only shrink and are bounded below by the arc-consistent fixpoint,
so the iteration is an ACO (the paper lists constraint satisfaction among
the framework's applications).  Ground truth comes from a standard AC-3.
"""

from collections import deque
from typing import Callable, Dict, FrozenSet, Hashable, List, Set, Tuple

from repro.iterative.aco import ACO

Domain = FrozenSet[Hashable]
Predicate = Callable[[Hashable, Hashable], bool]


class ConstraintProblem:
    """A binary constraint network."""

    def __init__(self, domains: List[Set[Hashable]]) -> None:
        if not domains:
            raise ValueError("need at least one variable")
        self.domains: List[Domain] = [frozenset(d) for d in domains]
        # Directed constraint arcs: (i, j) -> predicate(v_i, v_j).
        self._constraints: Dict[Tuple[int, int], Predicate] = {}

    @property
    def num_variables(self) -> int:
        """Number of variables."""
        return len(self.domains)

    def add_constraint(self, i: int, j: int, predicate: Predicate) -> None:
        """Constrain (x_i, x_j) by ``predicate``; registers both arcs."""
        if i == j:
            raise ValueError("binary constraints need two distinct variables")
        for var in (i, j):
            if not 0 <= var < self.num_variables:
                raise ValueError(f"variable {var} out of range")
        self._constraints[(i, j)] = predicate
        self._constraints[(j, i)] = lambda u, v: predicate(v, u)

    def arcs_from(self, i: int) -> List[Tuple[int, Predicate]]:
        """All arcs (i, j) with their predicates."""
        return [
            (j, pred) for (a, j), pred in self._constraints.items() if a == i
        ]

    def arcs(self) -> List[Tuple[int, int]]:
        """All directed arcs (i, j)."""
        return sorted(self._constraints)

    def ac3(self) -> List[Domain]:
        """Arc-consistent domains by the classical AC-3 algorithm."""
        domains: List[Set[Hashable]] = [set(d) for d in self.domains]
        queue = deque(self.arcs())
        while queue:
            i, j = queue.popleft()
            predicate = self._constraints[(i, j)]
            revised = False
            for v in list(domains[i]):
                if not any(predicate(v, u) for u in domains[j]):
                    domains[i].discard(v)
                    revised = True
            if revised:
                for (a, b) in self.arcs():
                    if b == i and a != j:
                        queue.append((a, b))
        return [frozenset(d) for d in domains]


class ArcConsistencyACO(ACO):
    """Distributed arc-consistency: one process per variable (or block)."""

    def __init__(self, problem: ConstraintProblem) -> None:
        self.problem = problem
        self._fixed_point = problem.ac3()

    @property
    def m(self) -> int:
        return self.problem.num_variables

    def initial(self) -> List[Domain]:
        return list(self.problem.domains)

    def apply(self, i: int, x: List[Domain]) -> Domain:
        supported = []
        for v in x[i]:
            if all(
                any(pred(v, u) for u in x[j])
                for j, pred in self.problem.arcs_from(i)
            ):
                supported.append(v)
        return frozenset(supported)

    def fixed_point(self) -> List[Domain]:
        return list(self._fixed_point)

    def __repr__(self) -> str:
        return (
            f"ArcConsistencyACO(vars={self.m}, "
            f"arcs={len(self.problem.arcs())})"
        )
