"""All-pairs shortest paths as an ACO — the paper's Section 7 application.

The vector has one component per vertex i: the tuple of current distance
estimates from i to every vertex (row i of the distance matrix).  The
operator is min-plus matrix squaring restricted to a row:

    F_i(x)[j] = min_k ( x[i][k] + x[k][j] )

Since x[i][i] = 0 the minimum never exceeds the current estimate read, and
estimates never drop below true distances, so D(K) = "every entry within
the true distance plus the K-times-halved surplus" forms the contracting
chain; convergence needs M = ⌈log₂ d⌉ pseudocycles where d is the graph's
hop diameter (Üresin-Dubois; for the paper's 34-chain, M = 6).
"""

import math
from typing import List, Optional, Tuple

from repro.apps.graphs import Graph, apsp_pseudocycle_bound
from repro.iterative.aco import ACO

Row = Tuple[float, ...]


class ApspACO(ACO):
    """Row-partitioned all-pairs shortest paths."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self._initial: List[Row] = [
            tuple(row) for row in graph.adjacency_matrix()
        ]
        self._fixed_point: List[Row] = [
            tuple(row) for row in graph.floyd_warshall()
        ]

    @property
    def m(self) -> int:
        return self.graph.n

    def initial(self) -> List[Row]:
        return list(self._initial)

    def apply(self, i: int, x: List[Row]) -> Row:
        n = self.graph.n
        row_i = x[i]
        result = []
        for j in range(n):
            best = row_i[j]
            for k in range(n):
                d_ik = row_i[k]
                if d_ik == math.inf:
                    continue
                candidate = d_ik + x[k][j]
                if candidate < best:
                    best = candidate
            result.append(best)
        return tuple(result)

    def fixed_point(self) -> List[Row]:
        return list(self._fixed_point)

    def component_converged(self, i: int, value: Row) -> bool:
        # Min-plus sums associate differently than Floyd-Warshall's, so
        # float weights need a tolerance; math.isclose(inf, inf) is True.
        target = self._fixed_point[i]
        return len(value) == len(target) and all(
            math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
            for a, b in zip(value, target)
        )

    def contraction_depth(self) -> Optional[int]:
        return apsp_pseudocycle_bound(self.graph)

    def in_domain(self, x: List[Row], level: int = 0) -> bool:
        """Membership in D(level): every estimate is at least the true
        distance, and entries with true distance reachable in <= 2^level
        hops are already exact.

        This is the standard contracting chain for min-plus squaring; it
        satisfies [C1]-[C3] and is used by the property-based tests.
        """
        exact_within = 2 ** level
        for i in range(self.m):
            hops = self.graph.bfs_hops(i)
            for j in range(self.m):
                true = self._fixed_point[i][j]
                estimate = x[i][j]
                if estimate < true - 1e-12:
                    return False
                if hops[j] <= exact_within and abs(estimate - true) > 1e-12:
                    return False
        return True

    def __repr__(self) -> str:
        return f"ApspACO(n={self.graph.n}, edges={self.graph.num_edges})"
