"""Single-source shortest paths (asynchronous Bellman-Ford) as an ACO.

One scalar component per vertex: the current distance estimate from the
source.  F pins the source at 0 and relaxes every other vertex over its
in-edges:

    F_i(x) = min over predecessors j of ( x[j] + w(j, i) ),   F_src = 0.

Estimates start at infinity, only ever decrease, and never pass below the
true distances, so the iteration is an ACO; convergence needs at most
(height of the shortest-path tree) pseudocycles.
"""

import math
from typing import List, Optional

from repro.apps.graphs import Graph
from repro.iterative.aco import ACO


class SsspACO(ACO):
    """Per-vertex single-source shortest path distances."""

    def __init__(self, graph: Graph, source: int = 0) -> None:
        if not 0 <= source < graph.n:
            raise ValueError(f"source {source} out of range [0, {graph.n})")
        self.graph = graph
        self.source = source
        self._fixed_point = graph.dijkstra(source)

    @property
    def m(self) -> int:
        return self.graph.n

    def initial(self) -> List[float]:
        values = [math.inf] * self.graph.n
        values[self.source] = 0.0
        return values

    def apply(self, i: int, x: List[float]) -> float:
        if i == self.source:
            return 0.0
        best = x[i]
        for j, w in self.graph.predecessors(i).items():
            candidate = x[j] + w
            if candidate < best:
                best = candidate
        return best

    def fixed_point(self) -> List[float]:
        return list(self._fixed_point)

    def component_converged(self, i: int, value: float) -> bool:
        # Relaxation sums associate differently than Dijkstra's, so float
        # weights need a tolerance; math.isclose(inf, inf) is True.
        return math.isclose(
            value, self._fixed_point[i], rel_tol=1e-9, abs_tol=1e-9
        )

    def contraction_depth(self) -> Optional[int]:
        """The shortest-path tree height: max hops of any reached vertex."""
        hops = self.graph.bfs_hops(self.source)
        finite = [int(h) for h in hops if h < math.inf]
        return max(finite) if finite else None

    def __repr__(self) -> str:
        return f"SsspACO(n={self.graph.n}, source={self.source})"
