"""Jacobi iteration for linear systems as an ACO (chaotic relaxation).

For a strictly diagonally dominant system Ax = b the Jacobi operator

    F_i(x) = ( b_i - sum_{j != i} a_ij * x_j ) / a_ii

is a contraction in the weighted max norm, and Chazan and Miranker (1969)
— the reference that started this entire line of work, cited in the
paper's Section 2 — showed exactly that chaotic (asynchronous, stale-read)
relaxation of such systems converges.  Unlike the combinatorial ACOs the
fixed point is only approached in the limit, so convergence is declared at
a tolerance.
"""

import math
from typing import List, Optional

import numpy as np

from repro.iterative.aco import ACO, ACOError


class JacobiACO(ACO):
    """Componentwise Jacobi iteration with tolerance-based convergence."""

    def __init__(
        self,
        matrix: np.ndarray,
        rhs: np.ndarray,
        tolerance: float = 1e-6,
        initial_guess: Optional[np.ndarray] = None,
    ) -> None:
        matrix = np.asarray(matrix, dtype=float)
        rhs = np.asarray(rhs, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ACOError(f"matrix must be square, got shape {matrix.shape}")
        if rhs.shape != (matrix.shape[0],):
            raise ACOError(
                f"rhs shape {rhs.shape} does not match matrix {matrix.shape}"
            )
        if tolerance <= 0:
            raise ACOError(f"tolerance must be positive, got {tolerance}")
        diagonal = np.abs(np.diag(matrix))
        off_diagonal = np.abs(matrix).sum(axis=1) - diagonal
        if np.any(diagonal <= off_diagonal):
            raise ACOError(
                "matrix is not strictly diagonally dominant; asynchronous "
                "Jacobi convergence is not guaranteed (Chazan-Miranker)"
            )
        self.matrix = matrix
        self.rhs = rhs
        self.tolerance = tolerance
        self._initial = (
            np.zeros(matrix.shape[0])
            if initial_guess is None
            else np.asarray(initial_guess, dtype=float)
        )
        if self._initial.shape != rhs.shape:
            raise ACOError("initial guess shape does not match the system")
        self._solution = np.linalg.solve(matrix, rhs)
        # Contraction factor of the Jacobi operator in the max norm.
        self.contraction_factor = float(np.max(off_diagonal / diagonal))

    @property
    def m(self) -> int:
        return self.matrix.shape[0]

    def initial(self) -> List[float]:
        return [float(v) for v in self._initial]

    def apply(self, i: int, x: List[float]) -> float:
        total = self.rhs[i]
        row = self.matrix[i]
        for j in range(self.m):
            if j != i:
                total -= row[j] * x[j]
        return float(total / row[i])

    def fixed_point(self) -> List[float]:
        return [float(v) for v in self._solution]

    def component_converged(self, i: int, value: float) -> bool:
        return abs(value - self._solution[i]) <= self.tolerance

    def contraction_depth(self) -> Optional[int]:
        """Pseudocycles to shrink the initial error below tolerance:
        smallest K with error0 * rho^K <= tolerance."""
        error0 = float(
            np.max(np.abs(self._initial - self._solution))
        )
        if error0 <= self.tolerance:
            return 1
        rho = self.contraction_factor
        if rho <= 0:
            return 1
        if rho >= 1:
            return None
        return max(1, math.ceil(math.log(self.tolerance / error0) / math.log(rho)))

    def __repr__(self) -> str:
        return (
            f"JacobiACO(m={self.m}, rho={self.contraction_factor:.3f}, "
            f"tol={self.tolerance})"
        )


def diagonally_dominant_system(
    n: int, rng: np.random.Generator, dominance: float = 2.0
) -> "tuple[np.ndarray, np.ndarray]":
    """A random strictly diagonally dominant system for tests and examples."""
    if dominance <= 1.0:
        raise ValueError(f"dominance must exceed 1, got {dominance}")
    matrix = rng.uniform(-1.0, 1.0, size=(n, n))
    row_sums = np.abs(matrix).sum(axis=1) - np.abs(np.diag(matrix))
    for i in range(n):
        matrix[i, i] = dominance * max(row_sums[i], 1.0)
    rhs = rng.uniform(-10.0, 10.0, size=n)
    return matrix, rhs
