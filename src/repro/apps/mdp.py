"""Asynchronous dynamic programming: MDP value iteration as an ACO.

Distributed/asynchronous dynamic programming is the flagship application
of the Bertsekas-Tsitsiklis asynchronous-iteration theory the paper
builds on (their Chapter 7 opens with it).  The Bellman operator

    (T V)(s) = max_a [ r(s, a) + γ · Σ_{s'} P(s' | s, a) · V(s') ]

is a γ-contraction in the max norm, so totally asynchronous value
iteration — each process owning a block of states, reading possibly
stale values of the others — converges to the optimal value function V*.
Over random registers, Theorem 3 applies verbatim.

Includes a small gridworld generator used by the tests and the
``examples/gridworld_planning.py`` example.
"""

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.iterative.aco import ACO, ACOError

# transitions[s][a] = list of (probability, next_state, reward)
Transition = Tuple[float, int, float]


class MarkovDecisionProcess:
    """A finite MDP with tabular transitions."""

    def __init__(
        self,
        num_states: int,
        num_actions: int,
        discount: float,
    ) -> None:
        if num_states < 1 or num_actions < 1:
            raise ValueError(
                f"need at least one state and action, got {num_states}, "
                f"{num_actions}"
            )
        if not 0.0 <= discount < 1.0:
            raise ValueError(f"discount must be in [0, 1), got {discount}")
        self.num_states = num_states
        self.num_actions = num_actions
        self.discount = discount
        self._transitions: List[List[List[Transition]]] = [
            [[] for _ in range(num_actions)] for _ in range(num_states)
        ]

    def add_transition(
        self, state: int, action: int, probability: float,
        next_state: int, reward: float,
    ) -> None:
        """Add one (s, a) -> s' outcome."""
        if not 0 <= state < self.num_states:
            raise ValueError(f"state {state} out of range")
        if not 0 <= action < self.num_actions:
            raise ValueError(f"action {action} out of range")
        if not 0 <= next_state < self.num_states:
            raise ValueError(f"next state {next_state} out of range")
        if probability <= 0:
            raise ValueError(f"probability must be positive, got {probability}")
        self._transitions[state][action].append(
            (probability, next_state, reward)
        )

    def transitions(self, state: int, action: int) -> List[Transition]:
        """All outcomes of (state, action)."""
        return list(self._transitions[state][action])

    def validate(self) -> None:
        """Check every (s, a) with outcomes has probabilities summing to 1."""
        for s in range(self.num_states):
            if not any(self._transitions[s][a] for a in range(self.num_actions)):
                raise ValueError(f"state {s} has no actions with outcomes")
            for a in range(self.num_actions):
                outcomes = self._transitions[s][a]
                if not outcomes:
                    continue
                total = sum(p for p, _, _ in outcomes)
                if abs(total - 1.0) > 1e-9:
                    raise ValueError(
                        f"transition probabilities of ({s}, {a}) sum to {total}"
                    )

    def bellman_backup(self, state: int, values: Sequence[float]) -> float:
        """(T V)(s): one Bellman optimality backup."""
        best = -math.inf
        for action in range(self.num_actions):
            outcomes = self._transitions[state][action]
            if not outcomes:
                continue
            q_value = sum(
                p * (r + self.discount * values[s2]) for p, s2, r in outcomes
            )
            if q_value > best:
                best = q_value
        return best

    def greedy_policy(self, values: Sequence[float]) -> List[Optional[int]]:
        """The greedy action per state under ``values``."""
        policy: List[Optional[int]] = []
        for state in range(self.num_states):
            best_action, best_q = None, -math.inf
            for action in range(self.num_actions):
                outcomes = self._transitions[state][action]
                if not outcomes:
                    continue
                q_value = sum(
                    p * (r + self.discount * values[s2])
                    for p, s2, r in outcomes
                )
                if q_value > best_q:
                    best_action, best_q = action, q_value
            policy.append(best_action)
        return policy

    def optimal_values(self, tolerance: float = 1e-12,
                       max_iterations: int = 1_000_000) -> List[float]:
        """V* by synchronous value iteration to numerical convergence."""
        values = [0.0] * self.num_states
        for _ in range(max_iterations):
            new_values = [
                self.bellman_backup(s, values) for s in range(self.num_states)
            ]
            delta = max(abs(a - b) for a, b in zip(values, new_values))
            values = new_values
            if delta <= tolerance * (1.0 - self.discount):
                return values
        raise ACOError("value iteration failed to converge")


class ValueIterationACO(ACO):
    """Bellman backups as an ACO: one scalar component per state."""

    def __init__(
        self,
        mdp: MarkovDecisionProcess,
        tolerance: float = 1e-6,
        initial_values: Optional[Sequence[float]] = None,
    ) -> None:
        mdp.validate()
        if tolerance <= 0:
            raise ACOError(f"tolerance must be positive, got {tolerance}")
        self.mdp = mdp
        self.tolerance = tolerance
        self._initial = (
            [0.0] * mdp.num_states
            if initial_values is None
            else [float(v) for v in initial_values]
        )
        if len(self._initial) != mdp.num_states:
            raise ACOError("initial values length does not match state count")
        self._optimal = mdp.optimal_values()

    @property
    def m(self) -> int:
        return self.mdp.num_states

    def initial(self) -> List[float]:
        return list(self._initial)

    def apply(self, i: int, x: List[float]) -> float:
        return self.mdp.bellman_backup(i, x)

    def fixed_point(self) -> List[float]:
        return list(self._optimal)

    def component_converged(self, i: int, value: float) -> bool:
        return abs(value - self._optimal[i]) <= self.tolerance

    def contraction_depth(self) -> Optional[int]:
        """Pseudocycles to shrink the initial error below tolerance under
        the γ-contraction of the Bellman operator."""
        error0 = max(
            abs(a - b) for a, b in zip(self._initial, self._optimal)
        )
        if error0 <= self.tolerance:
            return 1
        gamma = self.mdp.discount
        if gamma == 0.0:
            return 1
        return max(
            1, math.ceil(math.log(self.tolerance / error0) / math.log(gamma))
        )

    def __repr__(self) -> str:
        return (
            f"ValueIterationACO(states={self.m}, "
            f"gamma={self.mdp.discount}, tol={self.tolerance})"
        )


def gridworld(
    rows: int,
    cols: int,
    goal: Tuple[int, int],
    discount: float = 0.9,
    slip_probability: float = 0.1,
    step_reward: float = -1.0,
    goal_reward: float = 10.0,
    walls: Sequence[Tuple[int, int]] = (),
) -> MarkovDecisionProcess:
    """A standard slippery gridworld: 4 actions, absorbing goal.

    Moving into a wall or off the grid keeps the agent in place.  With
    probability ``slip_probability`` the move goes sideways.
    """
    if not (0 <= goal[0] < rows and 0 <= goal[1] < cols):
        raise ValueError(f"goal {goal} outside the {rows}x{cols} grid")
    if not 0.0 <= slip_probability < 1.0:
        raise ValueError(f"slip probability must be in [0, 1), got {slip_probability}")
    wall_set = set(walls)
    if goal in wall_set:
        raise ValueError("goal cannot be a wall")
    mdp = MarkovDecisionProcess(rows * cols, num_actions=4, discount=discount)
    moves = [(-1, 0), (1, 0), (0, -1), (0, 1)]  # up, down, left, right
    sideways = {0: (2, 3), 1: (2, 3), 2: (0, 1), 3: (0, 1)}

    def index(r: int, c: int) -> int:
        return r * cols + c

    def destination(r: int, c: int, action: int) -> Tuple[int, int]:
        dr, dc = moves[action]
        nr, nc = r + dr, c + dc
        if not (0 <= nr < rows and 0 <= nc < cols) or (nr, nc) in wall_set:
            return r, c
        return nr, nc

    goal_index = index(*goal)
    for r in range(rows):
        for c in range(cols):
            s = index(r, c)
            if (r, c) in wall_set:
                # Unreachable filler state: self-loop with zero reward.
                for a in range(4):
                    mdp.add_transition(s, a, 1.0, s, 0.0)
                continue
            if s == goal_index:
                for a in range(4):
                    mdp.add_transition(s, a, 1.0, s, 0.0)  # absorbing
                continue
            for a in range(4):
                outcomes: Dict[int, float] = {}
                main = index(*destination(r, c, a))
                outcomes[main] = outcomes.get(main, 0.0) + 1.0 - slip_probability
                for side in sideways[a]:
                    dest = index(*destination(r, c, side))
                    outcomes[dest] = (
                        outcomes.get(dest, 0.0) + slip_probability / 2.0
                    )
                for dest, probability in outcomes.items():
                    if probability <= 0.0:
                        continue  # slip_probability = 0 has no side moves
                    reward = goal_reward if dest == goal_index else step_reward
                    mdp.add_transition(s, a, probability, dest, reward)
    return mdp
