"""Dataflow analysis as an ACO: reaching definitions on a CFG.

Compiler dataflow analyses are lattice fixpoint computations — the same
shape as the paper's transitive closure and constraint satisfaction
examples.  Here the classic *reaching definitions* analysis:

    IN(b)  = union over predecessors p of OUT(p)
    OUT(b) = GEN(b) ∪ (IN(b) − KILL(b))

One component per basic block (its OUT set).  OUT sets only grow and are
bounded by the finite universe of definitions, so the iteration is an
ACO in the superset ordering; a distributed compiler could partition the
CFG among processes and converge through stale reads, exactly per
Theorem 3.  Ground truth comes from the standard worklist algorithm.
"""

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.iterative.aco import ACO

Definitions = FrozenSet[str]


class ControlFlowGraph:
    """A CFG whose blocks carry GEN/KILL sets of definition names."""

    def __init__(self, num_blocks: int) -> None:
        if num_blocks < 1:
            raise ValueError(f"need at least one block, got {num_blocks}")
        self.n = num_blocks
        self._successors: List[Set[int]] = [set() for _ in range(num_blocks)]
        self._predecessors: List[Set[int]] = [set() for _ in range(num_blocks)]
        self.gen: List[Set[str]] = [set() for _ in range(num_blocks)]
        self.kill: List[Set[str]] = [set() for _ in range(num_blocks)]

    def add_edge(self, src: int, dst: int) -> None:
        """Add a control-flow edge."""
        for block in (src, dst):
            if not 0 <= block < self.n:
                raise ValueError(f"block {block} out of range [0, {self.n})")
        self._successors[src].add(dst)
        self._predecessors[dst].add(src)

    def define(self, block: int, name: str, kills: Iterable[str] = ()) -> None:
        """Record that ``block`` generates definition ``name`` and kills
        the definitions in ``kills`` (other definitions of the same
        variable)."""
        if not 0 <= block < self.n:
            raise ValueError(f"block {block} out of range [0, {self.n})")
        self.gen[block].add(name)
        self.kill[block].update(kills)
        self.kill[block].discard(name)

    def predecessors(self, block: int) -> Set[int]:
        """Predecessor blocks of ``block``."""
        return set(self._predecessors[block])

    def successors(self, block: int) -> Set[int]:
        """Successor blocks of ``block``."""
        return set(self._successors[block])

    def transfer(self, block: int, incoming: Definitions) -> Definitions:
        """The block's transfer function GEN ∪ (IN − KILL)."""
        return frozenset(self.gen[block] | (set(incoming) - self.kill[block]))

    def reaching_definitions(self) -> List[Definitions]:
        """OUT sets by the classical worklist algorithm (ground truth)."""
        out: List[Definitions] = [frozenset(self.gen[b]) for b in range(self.n)]
        worklist = deque(range(self.n))
        while worklist:
            block = worklist.popleft()
            incoming: Set[str] = set()
            for pred in self._predecessors[block]:
                incoming |= out[pred]
            new_out = self.transfer(block, frozenset(incoming))
            if new_out != out[block]:
                out[block] = new_out
                worklist.extend(self._successors[block])
        return out


class ReachingDefinitionsACO(ACO):
    """Block-partitioned reaching definitions."""

    def __init__(self, cfg: ControlFlowGraph) -> None:
        self.cfg = cfg
        self._fixed_point = cfg.reaching_definitions()

    @property
    def m(self) -> int:
        return self.cfg.n

    def initial(self) -> List[Definitions]:
        return [frozenset(self.cfg.gen[b]) for b in range(self.cfg.n)]

    def apply(self, i: int, x: List[Definitions]) -> Definitions:
        incoming: Set[str] = set()
        for pred in self.cfg.predecessors(i):
            incoming |= x[pred]
        # Union with the current OUT keeps the operator monotone under
        # stale reads (OUT sets may only grow toward the fixed point).
        return frozenset(x[i] | self.cfg.transfer(i, frozenset(incoming)))

    def fixed_point(self) -> List[Definitions]:
        return list(self._fixed_point)

    def __repr__(self) -> str:
        return f"ReachingDefinitionsACO(blocks={self.m})"


def diamond_cfg() -> ControlFlowGraph:
    """The textbook diamond: entry -> {then, else} -> join, with the
    branches redefining the same variable."""
    cfg = ControlFlowGraph(4)
    cfg.add_edge(0, 1)
    cfg.add_edge(0, 2)
    cfg.add_edge(1, 3)
    cfg.add_edge(2, 3)
    cfg.define(0, "x0", kills=["x1", "x2"])
    cfg.define(1, "x1", kills=["x0", "x2"])
    cfg.define(2, "x2", kills=["x0", "x1"])
    cfg.define(3, "y0")
    return cfg


def loop_cfg(body_blocks: int = 3) -> ControlFlowGraph:
    """entry -> header -> body chain -> back to header -> exit, each body
    block defining its own variable generation."""
    if body_blocks < 1:
        raise ValueError(f"need at least one body block, got {body_blocks}")
    n = body_blocks + 3  # entry, header, body..., exit
    cfg = ControlFlowGraph(n)
    entry, header, exit_block = 0, 1, n - 1
    cfg.add_edge(entry, header)
    previous = header
    for i in range(body_blocks):
        block = 2 + i
        cfg.add_edge(previous, block)
        cfg.define(block, f"v{i}")
        previous = block
    cfg.add_edge(previous, header)   # loop back edge
    cfg.add_edge(header, exit_block)
    cfg.define(entry, "init")
    return cfg
