"""repro.exec — the parallel experiment execution engine.

Turns every experiment sweep into a list of self-contained, picklable
:class:`~repro.exec.task.RunTask` descriptors executed by
:func:`~repro.exec.engine.run_many` — serially or over a process pool,
with bit-identical results either way — optionally backed by the on-disk
:class:`~repro.exec.cache.RunCache`.
"""

from repro.exec.cache import DEFAULT_CACHE_DIR, MISS, RunCache
from repro.exec.engine import default_jobs, resolve_jobs, run_many
from repro.exec.task import (
    RunTask,
    UnknownTaskKind,
    WORKER_REGISTRY,
    execute_task,
    task_key,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "MISS",
    "RunCache",
    "RunTask",
    "UnknownTaskKind",
    "WORKER_REGISTRY",
    "default_jobs",
    "execute_task",
    "resolve_jobs",
    "run_many",
    "task_key",
]
