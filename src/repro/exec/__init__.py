"""repro.exec — the parallel experiment execution engine.

Turns every experiment sweep into a list of self-contained, picklable
:class:`~repro.exec.task.RunTask` descriptors executed by
:func:`~repro.exec.engine.run_many` — serially or over the persistent
warm worker pool (:mod:`repro.exec.pool`), with bit-identical results
either way — optionally backed by the on-disk
:class:`~repro.exec.cache.RunCache` (written incrementally as results
stream in, so a crashed sweep keeps everything that completed).
"""

from repro.exec.cache import DEFAULT_CACHE_DIR, MISS, RunCache
from repro.exec.engine import default_jobs, resolve_jobs, run_many
from repro.exec.pool import pool_info, shutdown_pool
from repro.exec.task import (
    RunTask,
    UnknownTaskKind,
    WORKER_REGISTRY,
    execute_task,
    task_key,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "MISS",
    "RunCache",
    "RunTask",
    "UnknownTaskKind",
    "WORKER_REGISTRY",
    "default_jobs",
    "execute_task",
    "pool_info",
    "resolve_jobs",
    "run_many",
    "shutdown_pool",
    "task_key",
]
