"""The persistent warm worker pool behind :func:`repro.exec.engine.run_many`.

The engine used to build a fresh ``ProcessPoolExecutor`` per call and
tear it down afterwards, so every sweep paid full interpreter + import
start-up for each worker — on the scaled-down sweeps that overhead alone
erased the parallel win (the 0.982× BENCH_parallel record).  This module
keeps **one** pool alive for the life of the process:

* ``get_pool(workers)`` returns the warm pool, creating it on first use
  and recycling it only when the requested worker count changes;
* workers are initialised exactly once (kernel backend selection, a
  hermetic observability state, the ``REPRO_POOL_WORKER`` marker) and
  then reused across every subsequent ``run_many`` call;
* a later kernel-backend change (``--kernel`` / ``select_backend`` /
  ``REPRO_KERNEL``) does **not** silently leave warm workers on the old
  backend: every chunk dispatched carries the parent's requested backend
  and the worker re-syncs before executing (see :func:`run_chunk`), so
  the pool stays warm across backend switches;
* ``shutdown_pool()`` is the explicit lifecycle exit, also registered
  with ``atexit`` so a CLI run or test session never leaks processes;
* after a worker crash (``BrokenProcessPool``) the engine calls
  ``reset_pool()`` — the broken executor is discarded and the next sweep
  builds a fresh one.

Chunk execution lives here too: :func:`run_chunk` runs a compact list of
``(kind, params, seed)`` wire tuples, publishes each task's metrics
snapshot into the sweep's shared-memory arena (:mod:`repro.obs.shm`)
instead of pickling it back through the result queue, and returns the
stripped result payloads.
"""

import atexit
import json
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence

from repro.exec.task import RunTask, WireTask, execute_task
from repro.obs import shm as obs_shm
from repro.sim import kernel

#: Environment marker present only inside pool worker processes.  The
#: deliberate-crash self-test worker keys off it so the engine's serial
#: re-run of a crashed sweep completes instead of crashing the parent.
POOL_WORKER_ENV = "REPRO_POOL_WORKER"

_pool: Optional[ProcessPoolExecutor] = None
_pool_workers: int = 0
_pool_generation: int = 0


def is_pool_worker() -> bool:
    """True inside a process spawned by this module's pool."""
    return os.environ.get(POOL_WORKER_ENV) == "1"


def _initialize_worker(backend: str) -> None:
    """One-time per-worker setup, run at pool creation.

    Marks the process as a pool worker, carries the parent's kernel
    backend across (the choice may live only in parent-process state, so
    env inheritance alone is not enough), and clears any observability
    session inherited through fork — worker metrics travel through the
    shared-memory arena, never through an inherited session object.
    """
    os.environ[POOL_WORKER_ENV] = "1"
    kernel.select_backend(backend)
    from repro.obs import runtime as obs_runtime

    obs_runtime.deactivate()


def get_pool(workers: int) -> ProcessPoolExecutor:
    """The warm pool, sized to ``workers`` processes.

    Reused verbatim while the requested size is unchanged; a different
    size recycles the pool (the only lifecycle event that loses warmth —
    backend changes re-sync in place, see :func:`run_chunk`).
    """
    global _pool, _pool_workers, _pool_generation
    if workers < 1:
        raise ValueError(f"pool needs at least one worker, got {workers}")
    if _pool is not None and _pool_workers != workers:
        shutdown_pool()
    if _pool is None:
        _pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_initialize_worker,
            initargs=(kernel.requested_backend(),),
        )
        _pool_workers = workers
        _pool_generation += 1
    return _pool


def shutdown_pool(wait: bool = True) -> None:
    """Explicitly terminate the warm pool (idempotent)."""
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown(wait=wait)
        _pool = None
        _pool_workers = 0


def reset_pool() -> None:
    """Discard a broken pool so the next ``get_pool`` starts fresh.

    A ``BrokenProcessPool`` executor has no live workers left to join;
    ``shutdown(wait=True)`` on it returns immediately.
    """
    shutdown_pool(wait=True)


def pool_info() -> Dict[str, Any]:
    """Lifecycle diagnostics: is a pool warm, how big, which generation."""
    return {
        "alive": _pool is not None,
        "workers": _pool_workers,
        "generation": _pool_generation,
    }


atexit.register(shutdown_pool)


# --------------------------------------------------------------------- #
# Chunk execution (runs inside pool workers)
# --------------------------------------------------------------------- #


def run_chunk(
    wires: Sequence[WireTask],
    slots: Sequence[int],
    backend: str,
    arena_name: Optional[str],
) -> List[Any]:
    """Execute one chunk of wire tasks; the pool's only entry point.

    ``slots[i]`` is the shared-memory slot for ``wires[i]``.  Each
    result's metrics snapshot is published to its slot and stripped from
    the returned payload (the parent restores it from the arena), unless
    it does not fit — then it stays inline, the pre-arena behaviour.

    ``backend`` re-syncs a warm worker whose kernel backend drifted from
    the parent's: ``select_backend`` is a cheap global write and the
    backend is consulted lazily per simulation, so syncing per chunk
    keeps the pool warm across ``--kernel`` changes.
    """
    kernel.sync_worker_backend(backend)
    arena = obs_shm.attach_cached(arena_name)
    out: List[Any] = []
    for wire, slot in zip(wires, slots):
        result = execute_task(RunTask.from_wire(wire))
        if arena is not None and isinstance(result, dict):
            snapshot = result.get("metrics")
            if isinstance(snapshot, dict):
                data = json.dumps(
                    snapshot, sort_keys=True, separators=(",", ":")
                ).encode("utf-8")
                if arena.write(slot, data):
                    result = dict(result)
                    del result["metrics"]
        out.append(result)
    return out


def warn(message: str) -> None:
    """One-line engine warning on stderr (kept here for easy monkeypatching)."""
    print(f"repro.exec: {message}", file=sys.stderr)
