"""Worker functions executed by the engine, plus the spec vocabulary.

Most experiments run the same shape of work — Alg. 1 on an APSP instance
over some quorum system with some delay model, possibly under fault
injection — so they share one generic worker, :func:`run_alg1_task`,
parameterised by small JSON "spec" dicts::

    graph:  {"kind": "chain", "n": 12}
            {"kind": "ring" | "complete", "n": ...}
            {"kind": "grid", "rows": r, "cols": c}
            {"kind": "random", "n": ..., "p": ..., "seed": ...}
    quorum: {"kind": "probabilistic", "n": ..., "k": ...}
            {"kind": "majority", "n": ...}
            {"kind": "grid", "rows": r, "cols": c}
            {"kind": "grid_square", "n": ...}
    delay:  {"kind": "constant" | "exponential", "mean": ...}
            {"kind": "uniform", "low": ..., "high": ...}
            {"kind": "lognormal", "mean": ..., "sigma": ...}
    faults: {"kind": "crash_batch", "time": t, "count": c, "side": s}
            {"kind": "churn", "period": p, "batch": b, "outage": d}
            {"kind": "schedule", "events": [{"time": t, "action": a,
                                             "nodes": [...], ...}, ...]}
    retry:  {"interval": i, "backoff": b, "max_interval": m,
             "jitter": j, "deadline": d, "max_attempts": a}
            (all but interval optional)
    membership: {"kind": "churn", "period": p, "batch": b}
            {"kind": "schedule", "events": [{"time": t,
                 "action": "join" | "leave", "nodes": [...]}, ...]}
            (either form takes optional "drain", "transfer_retry",
             "transfer_max_attempts" knobs)

plus the scalar params ``loss_rate`` (probabilistic message loss) and the
legacy ``retry_interval`` shorthand.  Fault and membership specs address
servers by *index*; the deployment maps them to network node ids at
install time.

Specs are plain data so tasks stay picklable and cache-keyable; workers
return plain dicts for the same reason.
"""

from typing import Any, Dict, Optional

from repro.adversary import build_adversary
from repro.apps.apsp import ApspACO
from repro.apps.graphs import (
    Graph,
    chain_graph,
    complete_graph,
    grid_graph,
    random_graph,
    ring_graph,
)
from repro.core.monitor import OnlineSpecMonitor
from repro.core.spec import SpecViolation
from repro.exec.task import RunTask
from repro.iterative.runner import Alg1Runner
from repro.obs import runtime as obs_runtime
from repro.obs.core import Observability
from repro.registers.client import RetryPolicy
from repro.sim.failures import FailureSchedule
from repro.quorum.base import QuorumSystem
from repro.quorum.grid import GridQuorumSystem
from repro.quorum.majority import MajorityQuorumSystem
from repro.quorum.probabilistic import ProbabilisticQuorumSystem
from repro.sim.delays import (
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    LogNormalDelay,
    UniformDelay,
)
from repro.sim.rng import RngRegistry


class SpecError(ValueError):
    """Raised on a malformed or unknown spec dict."""


def _kind(spec: Dict[str, Any], what: str) -> str:
    try:
        return spec["kind"]
    except (TypeError, KeyError):
        raise SpecError(f"{what} spec must be a dict with a 'kind': {spec!r}")


def build_graph(spec: Dict[str, Any]) -> Graph:
    """Instantiate a graph from its spec."""
    kind = _kind(spec, "graph")
    if kind == "chain":
        return chain_graph(spec["n"])
    if kind == "ring":
        return ring_graph(spec["n"])
    if kind == "complete":
        return complete_graph(spec["n"])
    if kind == "grid":
        return grid_graph(spec["rows"], spec["cols"])
    if kind == "random":
        rng = RngRegistry(spec["seed"]).stream("random-graph")
        return random_graph(spec["n"], spec["p"], rng)
    raise SpecError(f"unknown graph kind {kind!r}")


def build_quorum(spec: Dict[str, Any]) -> QuorumSystem:
    """Instantiate a quorum system from its spec."""
    kind = _kind(spec, "quorum")
    if kind == "probabilistic":
        return ProbabilisticQuorumSystem(spec["n"], spec["k"])
    if kind == "majority":
        return MajorityQuorumSystem(spec["n"])
    if kind == "grid":
        return GridQuorumSystem(spec["rows"], spec["cols"])
    if kind == "grid_square":
        return GridQuorumSystem.square(spec["n"])
    raise SpecError(f"unknown quorum kind {kind!r}")


def build_delay(spec: Dict[str, Any]) -> DelayModel:
    """Instantiate a delay model from its spec."""
    kind = _kind(spec, "delay")
    if kind == "constant":
        return ConstantDelay(spec["mean"])
    if kind == "exponential":
        return ExponentialDelay(spec["mean"])
    if kind == "uniform":
        return UniformDelay(spec["low"], spec["high"])
    if kind == "lognormal":
        return LogNormalDelay(spec["mean"], sigma=spec["sigma"])
    raise SpecError(f"unknown delay kind {kind!r}")


def build_retry_policy(
    spec: Optional[Dict[str, Any]]
) -> Optional[RetryPolicy]:
    """Instantiate a retry policy from its (flat, kind-less) spec."""
    if spec is None:
        return None
    try:
        interval = spec["interval"]
    except (TypeError, KeyError):
        raise SpecError(
            f"retry spec must be a dict with an 'interval': {spec!r}"
        ) from None
    unknown = set(spec) - {
        "interval", "backoff", "max_interval", "jitter", "deadline",
        "max_attempts",
    }
    if unknown:
        raise SpecError(f"unknown retry spec keys: {sorted(unknown)}")
    try:
        return RetryPolicy(
            interval=interval,
            backoff=spec.get("backoff", 2.0),
            max_interval=spec.get("max_interval"),
            jitter=spec.get("jitter", 0.1),
            deadline=spec.get("deadline"),
            max_attempts=spec.get("max_attempts"),
        )
    except ValueError as error:
        raise SpecError(f"bad retry spec: {error}") from None


def build_failure_schedule(
    spec: Dict[str, Any], num_servers: int, horizon: float
) -> FailureSchedule:
    """Turn a faults spec into a scripted FailureSchedule.

    ``crash_batch`` and ``churn`` are canned timelines (the E-FAULT and
    E-EXT-CHURN shapes); ``schedule`` passes an explicit event list
    through, for arbitrary crash/recover/partition/heal scripts.
    """
    kind = _kind(spec, "faults")

    if kind == "crash_batch":
        # One batch at a fixed time, one-per-grid-row first (the strict
        # grid's worst case) — the E-FAULT schedule.  An optional
        # ``recover_time`` scripts the batch coming back up.
        side = spec["side"]
        servers = [
            ((index % side) * side + index // side) % num_servers
            for index in range(spec["count"])
        ]
        schedule = FailureSchedule().crash(spec["time"], servers)
        if spec.get("recover_time") is not None:
            schedule.recover(spec["recover_time"], servers)
        return schedule

    if kind == "churn":
        # A rotating window of ``batch`` servers goes down every
        # ``period`` for ``outage`` time units — the E-EXT-CHURN schedule,
        # expanded into an explicit timeline up to the run's time horizon.
        return FailureSchedule.churn(
            num_nodes=num_servers,
            period=spec["period"],
            batch=spec["batch"],
            outage=spec["outage"],
            horizon=horizon,
        )

    if kind == "schedule":
        return FailureSchedule.from_specs(spec["events"])

    raise SpecError(f"unknown faults kind {kind!r}")


def install_faults(runner: Alg1Runner, spec: Optional[Dict[str, Any]]) -> None:
    """Attach a fault-injection timeline to a runner before it starts."""
    if spec is None:
        return
    deployment = runner.deployment
    horizon = runner.max_sim_time
    if horizon is None:
        # No explicit cap: bound periodic timelines by the round budget's
        # generous default so schedule expansion stays finite.
        horizon = 100.0 * runner.max_rounds
    schedule = build_failure_schedule(spec, deployment.num_servers, horizon)
    deployment.install_schedule(schedule)


def build_membership_schedule(
    spec: Dict[str, Any], num_servers: int, horizon: float
) -> Any:
    """Turn a membership spec into a MembershipSchedule (lazy import).

    ``churn`` expands a rotating join/retire timeline up to the run's
    horizon (the membership analogue of fault churn); ``schedule``
    passes an explicit event list through.
    """
    from repro.membership import MembershipError, MembershipSchedule

    _kind(spec, "membership")  # normalise the missing-kind error path
    try:
        return MembershipSchedule.build(
            spec, num_initial=num_servers, horizon=horizon
        )
    except MembershipError as error:
        raise SpecError(str(error)) from None


def install_membership(
    runner: Alg1Runner, spec: Optional[Dict[str, Any]]
) -> Optional[Any]:
    """Attach a membership timeline to a runner; returns the ViewManager.

    None (or an empty explicit schedule) leaves the deployment on the
    static fast path and returns None.
    """
    if spec is None:
        return None
    deployment = runner.deployment
    horizon = runner.max_sim_time
    if horizon is None:
        horizon = 100.0 * runner.max_rounds
    schedule = build_membership_schedule(
        spec, deployment.num_servers, horizon
    )
    return deployment.install_membership(
        schedule,
        drain=spec.get("drain", 8.0),
        transfer_retry=spec.get("transfer_retry", 4.0),
        transfer_max_attempts=spec.get("transfer_max_attempts", 8),
    )


def build_broken_client(spec: Optional[Dict[str, Any]]) -> Optional[type]:
    """Instantiate a deliberately-broken client class from its spec.

    Currently: ``{"kind": "regressing", "after": N}`` — reads regress
    after N correct ones (see :mod:`repro.chaos.broken`).  Used by chaos
    campaigns to validate that the violation pipeline actually fires.
    """
    if spec is None:
        return None
    kind = _kind(spec, "broken_client")
    if kind == "regressing":
        from repro.chaos.broken import RegressingClient

        return RegressingClient.configured(int(spec.get("after", 3)))
    raise SpecError(f"unknown broken_client kind {kind!r}")


def run_alg1_task(task: RunTask) -> Dict[str, Any]:
    """Execute one Alg. 1 run described by ``task.params``.

    Recognised params: ``graph``, ``quorum``, ``delay`` (specs, above),
    ``monotone``, ``max_rounds``, and optionally ``retry_interval``,
    ``retry`` (a policy spec), ``loss_rate``, ``max_sim_time``,
    ``faults``, ``membership`` (a membership timeline spec, see
    :func:`build_membership_schedule`), ``adversary`` (a strategy spec,
    see :func:`repro.adversary.build_adversary`), ``check_spec_online``
    (attach an :class:`~repro.core.monitor.OnlineSpecMonitor`; forces
    history recording), ``broken_client`` (see
    :func:`build_broken_client`) and ``measure_pseudocycles`` (which
    forces history recording to reconstruct the update sequence).

    The payload always carries a ``spec_violation`` key: None on a clean
    run, the violation's structured :meth:`~repro.core.spec.SpecViolation.payload`
    when online monitoring aborted the run.
    """
    params = task.params
    measure_pcs = bool(params.get("measure_pseudocycles", False))
    check_online = bool(params.get("check_spec_online", False))
    monitor = (
        OnlineSpecMonitor(monotone=params["monotone"]) if check_online else None
    )
    # The adversary's time-driven strategies bound their repeating chains
    # by the run's horizon, mirroring the Alg1Runner max_sim_time default.
    horizon = params.get("max_sim_time")
    if horizon is None and (
        params.get("retry_interval") is not None
        or params.get("retry") is not None
    ):
        horizon = 100.0 * params["max_rounds"]
    adversary = (
        build_adversary(params["adversary"], horizon)
        if params.get("adversary") is not None
        else None
    )
    # Each task collects into its own fresh registry and ships the
    # snapshot home in the payload: identical for serial and pooled
    # execution (worker processes never inherit the parent's session),
    # and cached payloads replay their metrics on a hit.  Spans cannot
    # cross the process boundary, so a span recorder is only picked up
    # from the active session when the task runs in-process.
    active = obs_runtime.active()
    obs = Observability(spans=active.spans if active is not None else None)
    runner = Alg1Runner(
        ApspACO(build_graph(params["graph"])),
        build_quorum(params["quorum"]),
        monotone=params["monotone"],
        delay_model=build_delay(params["delay"]),
        seed=task.seed,
        max_rounds=params["max_rounds"],
        retry_interval=params.get("retry_interval"),
        retry_policy=build_retry_policy(params.get("retry")),
        loss_rate=params.get("loss_rate", 0.0),
        max_sim_time=params.get("max_sim_time"),
        record_history=measure_pcs or check_online,
        observability=obs,
        spec_monitor=monitor,
        adversary=adversary,
        client_class=build_broken_client(params.get("broken_client")),
    )
    install_faults(runner, params.get("faults"))
    membership = install_membership(runner, params.get("membership"))
    violation: Optional[SpecViolation] = None
    try:
        result = runner.run(check_spec=False)
    except SpecViolation as caught:
        violation = caught
    deployment = runner.deployment
    if violation is not None:
        # The run aborted at the violating event; report the state the
        # simulation reached, so degradation stays comparable.
        out: Dict[str, Any] = {
            "converged": False,
            "rounds": runner.tracker.rounds_completed,
            "total_iterations": runner.tracker.total_iterations,
            "sim_time": deployment.scheduler.now,
            "messages": deployment.network.stats.sent,
            "regressions": runner.monitor.regressions,
            "cache_hits": sum(c.cache_hits for c in deployment.clients),
            "retries": deployment.total_retries,
            "timeouts": deployment.total_timeouts,
            "messages_dropped": deployment.network.stats.dropped,
            "ops_under_failure": deployment.total_ops_under_failure,
        }
    else:
        out = {
            "converged": result.converged,
            "rounds": result.rounds,
            "total_iterations": result.total_iterations,
            "sim_time": result.sim_time,
            "messages": result.messages,
            "regressions": result.regressions,
            "cache_hits": result.cache_hits,
            "retries": result.retries,
            "timeouts": result.timeouts,
            "messages_dropped": result.messages_dropped,
            "ops_under_failure": result.ops_under_failure,
        }
    out["hung_ops"] = deployment.hung_ops
    # Membership and give-up accounting appear only for tasks that asked
    # for them, so payloads of schedule-free tasks keep their exact
    # pre-membership shape (cached payloads stay interchangeable with
    # fresh ones).
    if membership is not None:
        out["membership"] = {
            **membership.metric_counters(),
            "views": membership.view_sizes(),
            "stale_nacks": deployment.total_stale_nacks,
            "view_refreshes": deployment.total_view_refreshes,
        }
    if membership is not None or (
        (params.get("retry") or {}).get("max_attempts") is not None
    ):
        out["unreachable"] = deployment.total_unreachable
    out["spec_violation"] = (
        violation.payload() if violation is not None else None
    )
    if adversary is not None:
        out["adversary"] = adversary.summary()
    if check_online:
        out["monitor"] = {
            "reads_checked": monitor.reads_checked,
            "writes_checked": monitor.writes_checked,
            "retries_seen": monitor.retries_seen,
            "timeouts_seen": monitor.timeouts_seen,
        }
        if membership is not None:
            out["monitor"]["views_seen"] = monitor.views_seen
    out["faults_injected"] = {
        "crashes": deployment.failures.crashes_injected,
        "recoveries": deployment.failures.recoveries,
        "partitions": deployment.failures.partitions_installed,
        "heals": deployment.failures.heals,
    }
    out["metrics"] = obs.metrics.snapshot()
    if measure_pcs and violation is None:
        from repro.iterative.trace import measure_pseudocycles

        out["pseudocycles"] = measure_pseudocycles(runner)
    return out
