"""Worker functions executed by the engine, plus the spec vocabulary.

Most experiments run the same shape of work — Alg. 1 on an APSP instance
over some quorum system with some delay model, possibly under fault
injection — so they share one generic worker, :func:`run_alg1_task`,
parameterised by small JSON "spec" dicts::

    graph:  {"kind": "chain", "n": 12}
            {"kind": "ring" | "complete", "n": ...}
            {"kind": "grid", "rows": r, "cols": c}
            {"kind": "random", "n": ..., "p": ..., "seed": ...}
    quorum: {"kind": "probabilistic", "n": ..., "k": ...}
            {"kind": "majority", "n": ...}
            {"kind": "grid", "rows": r, "cols": c}
            {"kind": "grid_square", "n": ...}
    delay:  {"kind": "constant" | "exponential", "mean": ...}
            {"kind": "uniform", "low": ..., "high": ...}
            {"kind": "lognormal", "mean": ..., "sigma": ...}
    faults: {"kind": "crash_batch", "time": t, "count": c, "side": s}
            {"kind": "churn", "period": p, "batch": b, "outage": d}
            {"kind": "schedule", "events": [{"time": t, "action": a,
                                             "nodes": [...], ...}, ...]}
    retry:  {"interval": i, "backoff": b, "max_interval": m,
             "jitter": j, "deadline": d}   (all but interval optional)

plus the scalar params ``loss_rate`` (probabilistic message loss) and the
legacy ``retry_interval`` shorthand.  Fault specs address servers by
*index*; the deployment maps them to network node ids at install time.

Specs are plain data so tasks stay picklable and cache-keyable; workers
return plain dicts for the same reason.
"""

from typing import Any, Dict, Optional

from repro.apps.apsp import ApspACO
from repro.apps.graphs import (
    Graph,
    chain_graph,
    complete_graph,
    grid_graph,
    random_graph,
    ring_graph,
)
from repro.exec.task import RunTask
from repro.iterative.runner import Alg1Runner
from repro.obs import runtime as obs_runtime
from repro.obs.core import Observability
from repro.registers.client import RetryPolicy
from repro.sim.failures import FailureSchedule
from repro.quorum.base import QuorumSystem
from repro.quorum.grid import GridQuorumSystem
from repro.quorum.majority import MajorityQuorumSystem
from repro.quorum.probabilistic import ProbabilisticQuorumSystem
from repro.sim.delays import (
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    LogNormalDelay,
    UniformDelay,
)
from repro.sim.rng import RngRegistry


class SpecError(ValueError):
    """Raised on a malformed or unknown spec dict."""


def _kind(spec: Dict[str, Any], what: str) -> str:
    try:
        return spec["kind"]
    except (TypeError, KeyError):
        raise SpecError(f"{what} spec must be a dict with a 'kind': {spec!r}")


def build_graph(spec: Dict[str, Any]) -> Graph:
    """Instantiate a graph from its spec."""
    kind = _kind(spec, "graph")
    if kind == "chain":
        return chain_graph(spec["n"])
    if kind == "ring":
        return ring_graph(spec["n"])
    if kind == "complete":
        return complete_graph(spec["n"])
    if kind == "grid":
        return grid_graph(spec["rows"], spec["cols"])
    if kind == "random":
        rng = RngRegistry(spec["seed"]).stream("random-graph")
        return random_graph(spec["n"], spec["p"], rng)
    raise SpecError(f"unknown graph kind {kind!r}")


def build_quorum(spec: Dict[str, Any]) -> QuorumSystem:
    """Instantiate a quorum system from its spec."""
    kind = _kind(spec, "quorum")
    if kind == "probabilistic":
        return ProbabilisticQuorumSystem(spec["n"], spec["k"])
    if kind == "majority":
        return MajorityQuorumSystem(spec["n"])
    if kind == "grid":
        return GridQuorumSystem(spec["rows"], spec["cols"])
    if kind == "grid_square":
        return GridQuorumSystem.square(spec["n"])
    raise SpecError(f"unknown quorum kind {kind!r}")


def build_delay(spec: Dict[str, Any]) -> DelayModel:
    """Instantiate a delay model from its spec."""
    kind = _kind(spec, "delay")
    if kind == "constant":
        return ConstantDelay(spec["mean"])
    if kind == "exponential":
        return ExponentialDelay(spec["mean"])
    if kind == "uniform":
        return UniformDelay(spec["low"], spec["high"])
    if kind == "lognormal":
        return LogNormalDelay(spec["mean"], sigma=spec["sigma"])
    raise SpecError(f"unknown delay kind {kind!r}")


def build_retry_policy(
    spec: Optional[Dict[str, Any]]
) -> Optional[RetryPolicy]:
    """Instantiate a retry policy from its (flat, kind-less) spec."""
    if spec is None:
        return None
    try:
        interval = spec["interval"]
    except (TypeError, KeyError):
        raise SpecError(
            f"retry spec must be a dict with an 'interval': {spec!r}"
        ) from None
    unknown = set(spec) - {
        "interval", "backoff", "max_interval", "jitter", "deadline"
    }
    if unknown:
        raise SpecError(f"unknown retry spec keys: {sorted(unknown)}")
    try:
        return RetryPolicy(
            interval=interval,
            backoff=spec.get("backoff", 2.0),
            max_interval=spec.get("max_interval"),
            jitter=spec.get("jitter", 0.1),
            deadline=spec.get("deadline"),
        )
    except ValueError as error:
        raise SpecError(f"bad retry spec: {error}") from None


def build_failure_schedule(
    spec: Dict[str, Any], num_servers: int, horizon: float
) -> FailureSchedule:
    """Turn a faults spec into a scripted FailureSchedule.

    ``crash_batch`` and ``churn`` are canned timelines (the E-FAULT and
    E-EXT-CHURN shapes); ``schedule`` passes an explicit event list
    through, for arbitrary crash/recover/partition/heal scripts.
    """
    kind = _kind(spec, "faults")

    if kind == "crash_batch":
        # One batch at a fixed time, one-per-grid-row first (the strict
        # grid's worst case) — the E-FAULT schedule.  An optional
        # ``recover_time`` scripts the batch coming back up.
        side = spec["side"]
        servers = [
            ((index % side) * side + index // side) % num_servers
            for index in range(spec["count"])
        ]
        schedule = FailureSchedule().crash(spec["time"], servers)
        if spec.get("recover_time") is not None:
            schedule.recover(spec["recover_time"], servers)
        return schedule

    if kind == "churn":
        # A rotating window of ``batch`` servers goes down every
        # ``period`` for ``outage`` time units — the E-EXT-CHURN schedule,
        # expanded into an explicit timeline up to the run's time horizon.
        return FailureSchedule.churn(
            num_nodes=num_servers,
            period=spec["period"],
            batch=spec["batch"],
            outage=spec["outage"],
            horizon=horizon,
        )

    if kind == "schedule":
        return FailureSchedule.from_specs(spec["events"])

    raise SpecError(f"unknown faults kind {kind!r}")


def install_faults(runner: Alg1Runner, spec: Optional[Dict[str, Any]]) -> None:
    """Attach a fault-injection timeline to a runner before it starts."""
    if spec is None:
        return
    deployment = runner.deployment
    horizon = runner.max_sim_time
    if horizon is None:
        # No explicit cap: bound periodic timelines by the round budget's
        # generous default so schedule expansion stays finite.
        horizon = 100.0 * runner.max_rounds
    schedule = build_failure_schedule(spec, deployment.num_servers, horizon)
    deployment.install_schedule(schedule)


def run_alg1_task(task: RunTask) -> Dict[str, Any]:
    """Execute one Alg. 1 run described by ``task.params``.

    Recognised params: ``graph``, ``quorum``, ``delay`` (specs, above),
    ``monotone``, ``max_rounds``, and optionally ``retry_interval``,
    ``retry`` (a policy spec), ``loss_rate``, ``max_sim_time``,
    ``faults``, and ``measure_pseudocycles`` (which forces history
    recording to reconstruct the update sequence).
    """
    params = task.params
    measure_pcs = bool(params.get("measure_pseudocycles", False))
    # Each task collects into its own fresh registry and ships the
    # snapshot home in the payload: identical for serial and pooled
    # execution (worker processes never inherit the parent's session),
    # and cached payloads replay their metrics on a hit.  Spans cannot
    # cross the process boundary, so a span recorder is only picked up
    # from the active session when the task runs in-process.
    active = obs_runtime.active()
    obs = Observability(spans=active.spans if active is not None else None)
    runner = Alg1Runner(
        ApspACO(build_graph(params["graph"])),
        build_quorum(params["quorum"]),
        monotone=params["monotone"],
        delay_model=build_delay(params["delay"]),
        seed=task.seed,
        max_rounds=params["max_rounds"],
        retry_interval=params.get("retry_interval"),
        retry_policy=build_retry_policy(params.get("retry")),
        loss_rate=params.get("loss_rate", 0.0),
        max_sim_time=params.get("max_sim_time"),
        record_history=measure_pcs,
        observability=obs,
    )
    install_faults(runner, params.get("faults"))
    result = runner.run(check_spec=False)
    out: Dict[str, Any] = {
        "converged": result.converged,
        "rounds": result.rounds,
        "total_iterations": result.total_iterations,
        "sim_time": result.sim_time,
        "messages": result.messages,
        "regressions": result.regressions,
        "cache_hits": result.cache_hits,
        "retries": result.retries,
        "timeouts": result.timeouts,
        "messages_dropped": result.messages_dropped,
        "ops_under_failure": result.ops_under_failure,
        "hung_ops": runner.deployment.hung_ops,
        "metrics": obs.metrics.snapshot(),
    }
    if measure_pcs:
        from repro.iterative.trace import measure_pseudocycles

        out["pseudocycles"] = measure_pseudocycles(runner)
    return out
