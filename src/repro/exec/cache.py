"""On-disk run cache: skip simulations whose results are already known.

Results are stored one JSON file per task under
``benchmarks/output/.cache/<kind>/<key>.json``, keyed by a content hash of
the task descriptor (:func:`repro.exec.task.task_key`).  Re-running a
sweep therefore only executes the missing points; everything else is an
O(1) file read.

The key covers *only* the task descriptor (kind, params, seed) — not the
code.  After changing simulator behaviour, clear the cache
(:meth:`RunCache.clear`, ``python -m repro.cli <exp> --clear-cache``, or
``rm -rf benchmarks/output/.cache``).
"""

import json
import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Any, Optional

from repro.exec.task import RunTask, task_key

#: Bump when the stored payload layout changes (or when simulator
#: behaviour changes in a way that invalidates prior results, as the
#: retry-path overhaul did: format 2 results carry degradation metrics
#: and reflect exponential-backoff retries).  Format 3 payloads embed a
#: metrics-registry snapshot (``"metrics"``), so cache hits replay their
#: metrics into ``--metrics-out`` aggregation; older entries lack it and
#: are invalidated.  Format 4 payloads carry the robustness fields
#: (``spec_violation``, ``faults_injected``, and adversary/monitor
#: summaries when enabled); older entries lack them and are invalidated.
#: Format 5 histogram snapshots carry an explicit ``overflow`` count per
#: series; mixing old and new snapshot shapes in one aggregation would
#: break byte-identical metrics output, so older entries are invalidated.
CACHE_FORMAT = 5

#: Default location, relative to the current working directory (the repo
#: root in normal use).
DEFAULT_CACHE_DIR = os.path.join("benchmarks", "output", ".cache")

#: Sentinel distinguishing "not cached" from a cached ``None`` result.
MISS = object()


class RunCache:
    """A directory of cached task results with hit/miss accounting."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root if root is not None else DEFAULT_CACHE_DIR)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def _path(self, task: RunTask) -> Path:
        return self.root / task.kind / f"{task_key(task)}.json"

    def get(self, task: RunTask) -> Any:
        """The cached result for ``task``, or :data:`MISS`."""
        path = self._path(task)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return MISS
        if (
            payload.get("format") != CACHE_FORMAT
            or payload.get("task") != task.descriptor()
        ):
            # Format drift or a (vanishingly unlikely) key collision:
            # treat as a miss so the entry gets rewritten.
            self.misses += 1
            return MISS
        self.hits += 1
        return payload["result"]

    def put(self, task: RunTask, result: Any) -> None:
        """Store ``result`` for ``task`` (atomic rename, crash-safe)."""
        path = self._path(task)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": CACHE_FORMAT,
            "task": task.descriptor(),
            "result": result,
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
            self.writes += 1
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def clear(self) -> None:
        """Delete every cached entry (and the cache directory itself)."""
        shutil.rmtree(self.root, ignore_errors=True)

    def prune_tmp(self, max_age_seconds: float = 3600.0) -> int:
        """Remove orphaned ``*.tmp`` files left by an interrupted write.

        Entry writes are atomic (temp file + rename), so a killed sweep
        can leave stale temp files beside valid entries but never a torn
        entry.  Only files older than ``max_age_seconds`` are removed,
        so a concurrently-running sweep's in-flight temp files are never
        yanked out from under their writer.  Returns the removal count.
        """
        pruned = 0
        if not self.root.is_dir():
            return pruned
        cutoff = time.time() - max_age_seconds
        for tmp in self.root.glob("*/*.tmp"):
            try:
                if tmp.stat().st_mtime <= cutoff:
                    tmp.unlink()
                    pruned += 1
            except OSError:
                pass
        return pruned

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __repr__(self) -> str:
        return (
            f"RunCache({str(self.root)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
