"""The parallel run engine: fan independent tasks out over processes.

Every experiment in this reproduction is an embarrassingly parallel sweep
of self-contained simulations — each task carries its own derived seed, so
execution order and placement cannot change any number.  ``run_many``
exploits that: it executes a task list serially (``jobs=1``) or over a
``ProcessPoolExecutor`` with chunking, returns results **in task order**,
and is bit-identical either way.

Job-count resolution, in priority order: the explicit ``jobs`` argument,
the ``REPRO_JOBS`` environment variable, then the caller's default
(library calls default to serial; the CLI defaults to
:func:`default_jobs`).
"""

import math
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Sequence

from repro.exec.cache import MISS, RunCache
from repro.exec.task import RunTask, execute_task
from repro.obs import runtime as obs_runtime
from repro.sim import kernel

#: Ceiling for the automatic CLI default — beyond this, per-process
#: startup and result pickling dominate for the scaled-down sweeps.
MAX_DEFAULT_JOBS = 8

ProgressFn = Callable[[int, RunTask, Any], None]


def default_jobs(cap: int = MAX_DEFAULT_JOBS) -> int:
    """``os.cpu_count()`` capped — the CLI's default worker count."""
    return max(1, min(os.cpu_count() or 1, cap))


def resolve_jobs(jobs: Optional[int] = None, default: int = 1) -> int:
    """Resolve a job count from the argument, ``REPRO_JOBS``, or default."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {env!r}"
            ) from None
    return max(1, int(default))


def _chunksize(pending: int, jobs: int) -> int:
    """Amortise IPC overhead while keeping the pool load-balanced: about
    four waves of chunks per worker."""
    return max(1, math.ceil(pending / (jobs * 4)))


def _init_worker(backend: str) -> None:
    """Pool initializer: carry the kernel-backend choice into the worker.

    The choice may live only in this process (``--kernel`` calls
    :func:`repro.sim.kernel.select_backend` without touching the
    environment), so env inheritance alone is not enough.  Results are
    byte-identical across backends either way — propagating merely keeps
    the speedup; it can never change a number, so run-cache keys ignore
    the backend.
    """
    kernel.select_backend(backend)


def run_many(
    tasks: Iterable[RunTask],
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
    progress: Optional[ProgressFn] = None,
) -> List[Any]:
    """Execute ``tasks`` and return their results in task order.

    :param jobs: worker processes; ``None`` consults ``REPRO_JOBS`` and
        falls back to serial in-process execution.  Results are identical
        for every value — parallelism is purely a wall-clock optimisation.
    :param cache: optional :class:`RunCache`; hits skip execution entirely
        and fresh results are written back.
    :param progress: called as ``progress(index, task, result)`` once per
        task, in task order.
    """
    task_list: Sequence[RunTask] = list(tasks)
    results: List[Any] = [None] * len(task_list)
    pending_indices: List[int] = []
    for index, task in enumerate(task_list):
        if cache is not None:
            hit = cache.get(task)
            if hit is not MISS:
                results[index] = hit
                continue
        pending_indices.append(index)

    jobs_resolved = resolve_jobs(jobs)
    if pending_indices:
        pending_tasks = [task_list[i] for i in pending_indices]
        if jobs_resolved <= 1 or len(pending_tasks) == 1:
            fresh: Iterable[Any] = map(execute_task, pending_tasks)
        else:
            workers = min(jobs_resolved, len(pending_tasks))
            executor = ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(kernel.requested_backend(),),
            )
            try:
                fresh = executor.map(
                    execute_task,
                    pending_tasks,
                    chunksize=_chunksize(len(pending_tasks), workers),
                )
                fresh = list(fresh)
            finally:
                executor.shutdown(wait=True)
        for index, result in zip(pending_indices, fresh):
            results[index] = result
            if cache is not None:
                cache.put(task_list[index], result)

    _merge_metrics(results)
    if progress is not None:
        for index, task in enumerate(task_list):
            progress(index, task, results[index])
    return results


def _merge_metrics(results: Sequence[Any]) -> None:
    """Fold worker metric snapshots into the active observability session.

    Snapshots travel inside result payloads (under a ``"metrics"`` key),
    so this covers pooled workers, serial execution and cache hits alike.
    Merging happens here, in **task order**, which keeps the aggregate
    registry bit-deterministic regardless of pool scheduling.
    """
    session = obs_runtime.active()
    if session is None or not session.metrics.enabled:
        return
    for result in results:
        if isinstance(result, dict):
            snapshot = result.get("metrics")
            if isinstance(snapshot, dict):
                session.metrics.merge_snapshot(snapshot)
