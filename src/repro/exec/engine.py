"""The parallel run engine: fan independent tasks out over processes.

Every experiment in this reproduction is an embarrassingly parallel sweep
of self-contained simulations — each task carries its own derived seed, so
execution order and placement cannot change any number.  ``run_many``
exploits that: it executes a task list serially (``jobs=1``) or over the
**persistent warm worker pool** (:mod:`repro.exec.pool`), returns results
**in task order**, and is bit-identical either way.

Parallel execution streams: tasks are submitted in compact chunks and
results are consumed **as each chunk completes** — every finished task is
cache-written immediately, so a worker crash (``BrokenProcessPool``)
mid-sweep loses nothing that already ran.  The engine then recycles the
broken pool, warns on stderr, and finishes the remaining tasks serially
in-process; the sweep's results are identical to an undisturbed run.

Worker metrics snapshots travel through a per-task shared-memory slot
(:mod:`repro.obs.shm`) instead of the result queue's pickle stream, and
are folded into the active observability session **in task order** —
which is what keeps pooled metrics output byte-identical to serial.

Job-count resolution, in priority order: the explicit ``jobs`` argument,
the ``REPRO_JOBS`` environment variable, then the caller's default
(library calls default to serial; the CLI defaults to
:func:`default_jobs`).
"""

import math
import os
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.exec import pool as exec_pool
from repro.exec.cache import MISS, RunCache
from repro.exec.task import RunTask, execute_task
from repro.obs import runtime as obs_runtime
from repro.obs import shm as obs_shm
from repro.obs.registry import MetricsRegistry
from repro.sim import kernel

#: Ceiling for the automatic CLI default — beyond this, per-process
#: startup and result pickling dominate for the scaled-down sweeps.
MAX_DEFAULT_JOBS = 8

ProgressFn = Callable[[int, RunTask, Any], None]


def default_jobs(cap: int = MAX_DEFAULT_JOBS) -> int:
    """``os.cpu_count()`` capped — the CLI's default worker count."""
    return max(1, min(os.cpu_count() or 1, cap))


def resolve_jobs(jobs: Optional[int] = None, default: int = 1) -> int:
    """Resolve a job count from the argument, ``REPRO_JOBS``, or default."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {env!r}"
            ) from None
    return max(1, int(default))


def _chunksize(pending: int, jobs: int) -> int:
    """Amortise IPC overhead while keeping the pool load-balanced: about
    four waves of chunks per worker."""
    return max(1, math.ceil(pending / (jobs * 4)))


def run_many(
    tasks: Iterable[RunTask],
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
    progress: Optional[ProgressFn] = None,
) -> List[Any]:
    """Execute ``tasks`` and return their results in task order.

    :param jobs: worker processes; ``None`` consults ``REPRO_JOBS`` and
        falls back to serial in-process execution.  Results are identical
        for every value — parallelism is purely a wall-clock optimisation.
    :param cache: optional :class:`RunCache`; hits skip execution entirely
        and fresh results are written back as they complete.
    :param progress: called as ``progress(index, task, result)`` once per
        task, in task order.
    """
    task_list: Sequence[RunTask] = list(tasks)
    results: List[Any] = [None] * len(task_list)
    pending_indices: List[int] = []
    for index, task in enumerate(task_list):
        if cache is not None:
            hit = cache.get(task)
            if hit is not MISS:
                results[index] = hit
                continue
        pending_indices.append(index)

    jobs_resolved = resolve_jobs(jobs)
    if pending_indices:
        if jobs_resolved <= 1 or len(pending_indices) == 1:
            _run_serial(task_list, pending_indices, results, cache)
        else:
            _run_pooled(
                task_list, pending_indices, results, cache, jobs_resolved
            )

    _merge_metrics(results)
    if progress is not None:
        for index, task in enumerate(task_list):
            progress(index, task, results[index])
    return results


def _run_serial(
    task_list: Sequence[RunTask],
    pending_indices: Sequence[int],
    results: List[Any],
    cache: Optional[RunCache],
) -> None:
    """In-process execution with incremental cache writes."""
    for index in pending_indices:
        result = execute_task(task_list[index])
        results[index] = result
        if cache is not None:
            cache.put(task_list[index], result)


def _run_pooled(
    task_list: Sequence[RunTask],
    pending_indices: Sequence[int],
    results: List[Any],
    cache: Optional[RunCache],
    jobs: int,
) -> None:
    """Warm-pool execution: chunked submit, streaming consumption,
    shared-memory metrics, and crash recovery.

    Shared-memory slots are addressed by *position* in the pending list
    (slot ``p`` holds the metrics of ``pending_indices[p]``), so the
    arena is sized to exactly the fresh work.
    """
    workers = min(jobs, len(pending_indices))
    chunk = _chunksize(len(pending_indices), workers)
    positions = list(range(len(pending_indices)))
    chunks = [
        positions[start:start + chunk]
        for start in range(0, len(positions), chunk)
    ]
    backend = kernel.requested_backend()

    try:
        arena: Optional[obs_shm.SnapshotArena] = obs_shm.SnapshotArena.create(
            len(pending_indices)
        )
    except OSError:
        # No usable /dev/shm (e.g. an exotic container): the workers then
        # ship snapshots inline, exactly the pre-arena protocol.
        arena = None
    arena_name = arena.name if arena is not None else None

    done_positions: set = set()
    absorbed: set = set()

    def _absorb(future: Future, chunk_positions: Sequence[int],
                chunk_results: List[Any]) -> None:
        if future in absorbed:
            return
        absorbed.add(future)
        for position, result in zip(chunk_positions, chunk_results):
            if arena is not None and isinstance(result, dict):
                data = arena.read(position)
                if data is not None and "metrics" not in result:
                    result["metrics"] = MetricsRegistry.decode_snapshot(data)
            index = pending_indices[position]
            results[index] = result
            if cache is not None:
                cache.put(task_list[index], result)
            done_positions.add(position)

    try:
        executor = exec_pool.get_pool(jobs)
        futures: Dict[Future, List[int]] = {}
        try:
            for chunk_positions in chunks:
                wires = [
                    task_list[pending_indices[p]].to_wire()
                    for p in chunk_positions
                ]
                futures[executor.submit(
                    exec_pool.run_chunk, wires, chunk_positions,
                    backend, arena_name,
                )] = chunk_positions
            not_done = set(futures)
            while not_done:
                finished, not_done = wait(
                    not_done, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    _absorb(future, futures[future], future.result())
        except BrokenProcessPool:
            # A worker died (segfault, OOM kill, os._exit).  Everything
            # already streamed in is safe; salvage any chunks that
            # finished but were not yet consumed, then fall back to
            # serial execution for the rest.
            for future, chunk_positions in futures.items():
                if (
                    future.done()
                    and not future.cancelled()
                    and future.exception() is None
                ):
                    _absorb(future, chunk_positions, future.result())
            exec_pool.reset_pool()
            remaining = [
                p for p in positions if p not in done_positions
            ]
            exec_pool.warn(
                f"worker process died mid-sweep; {len(done_positions)} "
                f"completed result(s) kept, re-running {len(remaining)} "
                f"remaining task(s) serially"
            )
            _run_serial(
                task_list,
                [pending_indices[p] for p in remaining],
                results,
                cache,
            )
        except BaseException:
            # A genuine task error (or KeyboardInterrupt): stop feeding
            # the pool, keep it alive for the next sweep, propagate.
            for future in futures:
                future.cancel()
            raise
    finally:
        if arena is not None:
            arena.close()
            arena.unlink()


def _merge_metrics(results: Sequence[Any]) -> None:
    """Fold worker metric snapshots into the active observability session.

    Snapshots travel through the shared-memory arena (pooled runs) or
    inside result payloads (serial runs, cache hits, oversized
    snapshots); by the time results reach this point every snapshot is
    back under the ``"metrics"`` key.  Merging happens here, in **task
    order**, which keeps the aggregate registry bit-deterministic
    regardless of pool scheduling — float sums round identically only
    when added in the same order.
    """
    session = obs_runtime.active()
    if session is None or not session.metrics.enabled:
        return
    for result in results:
        if isinstance(result, dict):
            snapshot = result.get("metrics")
            if isinstance(snapshot, dict):
                session.metrics.merge_snapshot(snapshot)
