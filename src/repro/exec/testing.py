"""Engine self-test workers: observe placement, or kill a pool worker.

These tiny task kinds exist so the pool's lifecycle guarantees are
testable through the public ``run_many`` API instead of by poking
executor internals:

* ``exec_probe`` reports where and how the task ran — process id, pool
  membership, and the worker's *requested* kernel backend.  Two sweeps
  returning the same pids prove warm reuse; a backend change visible in
  the second sweep's probes proves per-chunk re-sync.
* ``exec_crash`` calls ``os._exit`` when (and only when) it executes
  inside a pool worker, breaking the pool mid-sweep.  The engine's
  recovery path then re-runs the lost tasks serially in the parent,
  where the same task completes normally and returns a payload — which
  is exactly what the crash-recovery tests and the CI smoke assert.

Both also emit a one-counter metrics snapshot so the shared-memory
metrics transport is exercised end to end by the pool tests.
"""

import os
from typing import Any, Dict

from repro.exec.pool import is_pool_worker
from repro.exec.task import RunTask
from repro.obs.registry import MetricsRegistry
from repro.sim import kernel


def _base_payload(task: RunTask) -> Dict[str, Any]:
    metrics = MetricsRegistry()
    metrics.counter(
        "repro_exec_selftest_runs_total", "Engine self-test executions."
    ).inc()
    metrics.histogram(
        "repro_exec_selftest_seed", "Self-test seed distribution."
    ).observe(float(task.seed))
    return {
        "seed": task.seed,
        "pid": os.getpid(),
        "pool_worker": is_pool_worker(),
        "backend": kernel.requested_backend(),
        "metrics": metrics.snapshot(),
    }


def run_probe_task(task: RunTask) -> Dict[str, Any]:
    """Report execution placement; optionally burn ``params['spin']`` loops."""
    spin = int(task.params.get("spin", 0))
    acc = 0
    for i in range(spin):
        acc += i * i
    payload = _base_payload(task)
    payload["spin"] = acc
    return payload


def run_crash_task(task: RunTask) -> Dict[str, Any]:
    """Kill the hosting *pool worker*; complete normally anywhere else.

    ``params['crash_seeds']`` (default: every seed) selects which tasks
    die, so one sweep can mix healthy tasks with a single worker-killer.
    """
    crash_seeds = task.params.get("crash_seeds")
    should_crash = crash_seeds is None or task.seed in crash_seeds
    if should_crash and is_pool_worker():
        # A hard exit, not an exception: this simulates a segfaulting or
        # OOM-killed worker, the failure mode BrokenProcessPool reports.
        os._exit(17)
    return _base_payload(task)
