"""Picklable run descriptors for the parallel execution engine.

A :class:`RunTask` is a pure-data description of one independent
simulation or Monte Carlo shard: an experiment *kind* (a key into
:data:`WORKER_REGISTRY`), a JSON-serialisable parameter mapping, and the
derived root seed for every random draw in the run.  Because a task is
data only, it can be pickled to a worker process, hashed into a stable
cache key, and re-executed bit-identically anywhere.
"""

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Tuple

#: The compact pickle form of a task: ``(kind, params, seed)``.  A plain
#: tuple pickles to a fraction of a dataclass instance (no class ref, no
#: attribute names), which matters when thousands of tasks cross the
#: worker-pool pipe per sweep.
WireTask = Tuple[str, Dict[str, Any], int]

#: kind -> "module.path:function" resolved lazily in the executing process.
#: Lazy dotted paths keep this module import-light (workers import the sim
#: stack; experiment modules import this one) and make tasks picklable as
#: plain data.
WORKER_REGISTRY: Dict[str, str] = {
    "alg1": "repro.exec.workers:run_alg1_task",
    "latency": "repro.experiments.latency:run_latency_task",
    "survival_mc": "repro.experiments.survival:run_survival_mc_task",
    "survival_register": "repro.experiments.survival:run_survival_register_task",
    "freshness_mc": "repro.experiments.freshness:run_freshness_mc_task",
    "freshness_register": "repro.experiments.freshness:run_freshness_register_task",
    # Engine self-test kinds (repro.exec.testing): trivial workers that
    # report where they ran or deliberately kill their pool worker.  Used
    # by the pool tests and the CI crash-recovery smoke; never cached by
    # real experiments.
    "exec_probe": "repro.exec.testing:run_probe_task",
    "exec_crash": "repro.exec.testing:run_crash_task",
}


class UnknownTaskKind(KeyError):
    """Raised when a task names a kind absent from the registry."""


@dataclass(frozen=True)
class RunTask:
    """One independent unit of experimental work.

    ``params`` must contain only JSON-serialisable values (numbers, bools,
    strings, None, and nested lists/dicts of those) — it is both the
    worker's input and part of the on-disk cache key.
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0

    def descriptor(self) -> Dict[str, Any]:
        """The canonical JSON-ready form of this task."""
        return {"kind": self.kind, "params": dict(self.params), "seed": self.seed}

    def to_wire(self) -> WireTask:
        """The compact tuple form shipped to pool workers."""
        return (self.kind, dict(self.params), self.seed)

    @staticmethod
    def from_wire(wire: WireTask) -> "RunTask":
        """Rebuild a task from its :meth:`to_wire` tuple."""
        kind, params, seed = wire
        return RunTask(kind=kind, params=params, seed=seed)

    def canonical(self) -> str:
        """A canonical string encoding (sorted keys, no whitespace)."""
        try:
            return json.dumps(
                self.descriptor(), sort_keys=True, separators=(",", ":")
            )
        except TypeError as error:
            raise TypeError(
                f"RunTask params must be JSON-serialisable: {error}"
            ) from None


def task_key(task: RunTask) -> str:
    """A stable content hash of the task, used as its cache key."""
    return hashlib.blake2b(
        task.canonical().encode("utf-8"), digest_size=16
    ).hexdigest()


def resolve_worker(kind: str) -> Callable[[RunTask], Any]:
    """Import and return the worker function for ``kind``."""
    try:
        dotted = WORKER_REGISTRY[kind]
    except KeyError:
        raise UnknownTaskKind(
            f"unknown task kind {kind!r}; known: {sorted(WORKER_REGISTRY)}"
        ) from None
    module_name, _, attribute = dotted.partition(":")
    module = importlib.import_module(module_name)
    return getattr(module, attribute)


def execute_task(task: RunTask) -> Any:
    """Execute one task in the current process and return its result.

    This is the function worker processes run; results must be
    JSON-serialisable so they can be cached and shipped back cheaply.
    """
    return resolve_worker(task.kind)(task)
