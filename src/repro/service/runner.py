"""Assemble and run one service-mode simulation.

:func:`run_service` is the one-call entry point used by the ``serve``
CLI subcommand, the service benchmark and the tests: build a register
deployment, shard a keyspace onto it, attach the open-loop driver, run
the scheduler to quiescence and fold everything the run measured into a
:class:`ServiceResult`.

Determinism contract: every number in the result's metrics snapshot is a
function of the config alone — simulated time, seeded RNG streams and
event order; wall-clock only ever appears in ``wall_seconds`` on the
result object, never in the registry.  Two runs of the same config
therefore produce **byte-identical** ``snapshot_bytes``, which the
``service-smoke`` CI job and the regression tests assert.
"""

import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.adversary import build_adversary
from repro.membership import MembershipSchedule
from repro.obs.collect import collect_deployment
from repro.obs.core import Observability
from repro.quorum.probabilistic import ProbabilisticQuorumSystem
from repro.registers.atomic import MultiWriterClient
from repro.registers.client import QuorumRegisterClient, RetryPolicy
from repro.registers.deployment import RegisterDeployment
from repro.registers.sharding import ShardedKeyspace, ZipfKeys
from repro.service.frontend import KeyValueFrontend
from repro.service.traffic import OpenLoopDriver
from repro.sim.arrivals import build_arrivals
from repro.sim.delays import ConstantDelay, ExponentialDelay
from repro.sim.rng import RngRegistry

#: The quantiles reported in the SLO table, as (label, q) pairs.
SLO_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.5), ("p99", 0.99), ("p999", 0.999),
)


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a service-mode run depends on, as plain data."""

    seed: int = 0
    num_servers: int = 16
    quorum_size: int = 5
    num_clients: int = 4
    num_registers: int = 32
    num_keys: int = 1000
    zipf_exponent: float = 1.1
    read_fraction: float = 0.9
    #: Arrival process spec for :func:`repro.sim.arrivals.build_arrivals`.
    arrivals: Dict[str, Any] = field(
        default_factory=lambda: {"kind": "poisson", "rate": 2.0}
    )
    duration: float = 500.0
    max_in_flight: int = 64
    write_mode: str = "owner"
    delay_model: str = "exponential"
    delay_mean: float = 1.0
    loss_rate: float = 0.0
    retry_interval: float = 4.0
    operation_deadline: Optional[float] = 60.0
    #: Bounded give-up: after this many dispatch attempts an operation
    #: fails with :class:`~repro.registers.client.QuorumUnreachable`
    #: (None keeps retrying until the deadline).
    max_attempts: Optional[int] = None
    #: Membership timeline spec for
    #: :meth:`repro.membership.MembershipSchedule.build` — e.g.
    #: ``{"kind": "churn", "period": 60.0, "batch": 1}``.  None (the
    #: default) keeps the deployment on the static fast path, and the
    #: run's metrics snapshot stays byte-identical to pre-membership
    #: builds.  Requires ``write_mode="owner"``: the two-phase
    #: multi-writer protocol is not view-stamped.
    membership: Optional[Dict[str, Any]] = None
    #: Adversary strategy spec for
    #: :func:`repro.adversary.build_adversary` (None: no adversary).
    adversary: Optional[Dict[str, Any]] = None

    def build_delay_model(self):
        if self.delay_model == "constant":
            return ConstantDelay(self.delay_mean)
        if self.delay_model == "exponential":
            return ExponentialDelay(self.delay_mean)
        raise ValueError(
            f"delay_model must be 'constant' or 'exponential', "
            f"got {self.delay_model!r}"
        )


@dataclass
class ServiceResult:
    """Counters, SLO estimates and the deterministic metrics snapshot."""

    config: ServiceConfig
    offered: int
    counters: Dict[str, Any]
    streaming: Dict[str, Dict[float, float]]
    histogram_quantiles: Dict[str, Dict[float, float]]
    overflow: Dict[str, int]
    retries: int
    timeouts: int
    hung_ops: int
    sim_time: float
    events: int
    snapshot: Dict[str, Any]
    snapshot_bytes: bytes
    wall_seconds: float
    #: Operations abandoned as permanently unreachable (bounded retries).
    unreachable: int = 0
    #: View-manager summary (installs, transfers, per-view sizes, client
    #: refresh/nack counts) — None on a static run.
    membership: Optional[Dict[str, Any]] = None
    #: Adversary summary (drops, delays, strategy knobs) — None when the
    #: run had no adversary.
    adversary: Optional[Dict[str, Any]] = None

    @property
    def completed(self) -> int:
        return sum(self.counters["completed"].values())

    @property
    def shed(self) -> int:
        return sum(self.counters["shed"].values())

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def completed_rate(self) -> float:
        """Sustained throughput: completed operations per simulated time."""
        return self.completed / self.config.duration

    def quantile(self, kind: str, q: float) -> float:
        """The streaming (P²) latency estimate for ``kind`` ('all' included)."""
        return self.streaming[kind][q]

    def slo_table(self) -> str:
        """The human-readable SLO summary the CLI prints."""
        lines = [
            "service SLO summary "
            f"(simulated time units; duration={self.config.duration:g})",
            f"  offered {self.offered} ops "
            f"({self.offered / self.config.duration:.3f}/t), "
            f"completed {self.completed} ({self.completed_rate:.3f}/t), "
            f"shed {self.shed} ({self.shed_fraction:.2%}), "
            f"timeouts {self.timeouts}"
            + (f", unreachable {self.unreachable}" if self.unreachable else ""),
            f"  in flight: peak {self.counters['peak_in_flight']} "
            f"/ limit {self.config.max_in_flight}; "
            f"still pending at horizon: {self.counters['in_flight']}; "
            f"retries {self.retries}",
        ]
        if self.membership is not None:
            m = self.membership
            lines.append(
                f"  membership: {m['views_installed']} views installed, "
                f"transfers {m['state_transfers_completed']} done / "
                f"{m['state_transfers_incomplete']} incomplete, "
                f"{m['stale_nacks']} stale nacks, "
                f"{m['view_refreshes']} view refreshes"
            )
        lines.append(
            "  latency             p50       p99      p999  overflow"
        )
        for kind in ("read", "write", "all"):
            stream = self.streaming[kind]
            hist = self.histogram_quantiles.get(kind)
            cells = "  ".join(
                f"{stream[q]:8.3f}" for _, q in SLO_QUANTILES
            )
            lines.append(
                f"  {kind:<5} (streaming) {cells}"
            )
            if hist is not None:
                cells = "  ".join(
                    f"{hist[q]:8.3f}" for _, q in SLO_QUANTILES
                )
                lines.append(
                    f"  {kind:<5} (histogram) {cells}  "
                    f"{self.overflow.get(kind, 0):8d}"
                )
        return "\n".join(lines)


def run_service(config: ServiceConfig) -> ServiceResult:
    """Run one service-mode simulation to quiescence."""
    started = time.perf_counter()
    observability = Observability()
    rng = RngRegistry(config.seed)
    retry_policy = RetryPolicy(
        interval=config.retry_interval,
        backoff=2.0,
        max_interval=4.0 * config.retry_interval,
        jitter=0.1,
        deadline=config.operation_deadline,
        max_attempts=config.max_attempts,
    )
    two_phase = config.write_mode == "two_phase"
    if config.membership is not None and two_phase:
        raise ValueError(
            "membership requires write_mode='owner': the two-phase "
            "multi-writer protocol is not view-stamped"
        )
    adversary = (
        build_adversary(config.adversary, horizon=config.duration)
        if config.adversary is not None
        else None
    )
    deployment = RegisterDeployment(
        ProbabilisticQuorumSystem(config.num_servers, config.quorum_size),
        num_clients=config.num_clients,
        delay_model=config.build_delay_model(),
        seed=config.seed,
        rng_registry=rng,
        retry_policy=retry_policy,
        loss_rate=config.loss_rate,
        client_class=MultiWriterClient if two_phase else QuorumRegisterClient,
        # Heavy traffic: a history record per op would dominate memory,
        # and the per-kind/per-node stats breakdowns the scalar fast path
        # skips are re-derivable from the service counters.
        record_history=False,
        detailed_stats=False,
        observability=observability,
        adversary=adversary,
    )
    keyspace = ShardedKeyspace(config.num_registers)
    for shard, name in enumerate(keyspace.register_names):
        deployment.declare_register(
            name,
            writer=None if two_phase else shard % config.num_clients,
            initial_value=0,
        )
    manager = None
    if config.membership is not None:
        # Expand churn up to the arrival horizon: reconfiguring after the
        # last arrival would only churn an idle deployment.
        schedule = MembershipSchedule.build(
            config.membership,
            num_initial=config.num_servers,
            horizon=config.duration,
        )
        manager = deployment.install_membership(
            schedule,
            drain=config.membership.get("drain", 8.0),
            transfer_retry=config.membership.get("transfer_retry", 4.0),
            transfer_max_attempts=config.membership.get(
                "transfer_max_attempts", 8
            ),
        )
    frontend = KeyValueFrontend(
        deployment,
        keyspace,
        max_in_flight=config.max_in_flight,
        observability=observability,
        write_mode=config.write_mode,
    )
    driver = OpenLoopDriver(
        frontend,
        build_arrivals(config.arrivals),
        ZipfKeys(config.num_keys, config.zipf_exponent),
        arrival_rng=rng.stream("service-arrivals"),
        key_rng=rng.stream("service-keys"),
        op_rng=rng.stream("service-ops"),
        duration=config.duration,
        read_fraction=config.read_fraction,
    )
    driver.start()
    deployment.run()

    metrics = observability.metrics
    collect_deployment(metrics, deployment)
    _collect_service(metrics, driver, frontend)

    streaming = {
        kind: stream.values()
        for kind, stream in frontend.stream_quantiles.items()
    }
    histogram_quantiles: Dict[str, Dict[float, float]] = {}
    overflow: Dict[str, int] = {}
    family = metrics.get("repro_service_latency")
    if family is not None:
        for (kind,), histogram in family.series():
            histogram_quantiles[kind] = {
                q: histogram.quantile(q) for _, q in SLO_QUANTILES
            }
            overflow[kind] = histogram.overflow

    snapshot = metrics.snapshot()
    return ServiceResult(
        config=config,
        offered=driver.offered,
        counters=frontend.counters(),
        streaming=streaming,
        histogram_quantiles=histogram_quantiles,
        overflow=overflow,
        retries=deployment.total_retries,
        timeouts=deployment.total_timeouts,
        hung_ops=deployment.hung_ops,
        sim_time=deployment.scheduler.now,
        events=deployment.scheduler.events_processed,
        snapshot=snapshot,
        snapshot_bytes=metrics.snapshot_bytes(),
        wall_seconds=time.perf_counter() - started,
        unreachable=deployment.total_unreachable,
        membership=(
            None
            if manager is None
            else {
                **manager.metric_counters(),
                "views": manager.view_sizes(),
                "stale_nacks": deployment.total_stale_nacks,
                "view_refreshes": deployment.total_view_refreshes,
            }
        ),
        adversary=adversary.summary() if adversary is not None else None,
    )


def _collect_service(metrics: Any, driver: OpenLoopDriver,
                     frontend: KeyValueFrontend) -> None:
    """Service-level counters and SLO gauges into the registry.

    Offered/admitted/shed/completed/timeout counters by kind, the
    backpressure high-water mark, and the streaming quantile estimates as
    gauges — everything a dashboard needs to plot the SLO, all derived
    from simulated state only (byte-deterministic per seed).
    """
    metrics.counter(
        "repro_service_offered_total",
        "Requests generated by the open-loop arrival process.",
    ).inc(driver.offered)
    by_kind = (
        ("repro_service_admitted_total",
         "Requests past admission control, by kind.", frontend.admitted),
        ("repro_service_shed_total",
         "Requests shed by admission control (load shedding), by kind.",
         frontend.shed),
        ("repro_service_completed_total",
         "Requests completed successfully, by kind.", frontend.completed),
        ("repro_service_timeouts_total",
         "Requests rejected by the per-operation deadline, by kind.",
         frontend.timed_out),
    )
    for name, help_text, counters in by_kind:
        family = metrics.counter(name, help_text, labelnames=("kind",))
        for kind in sorted(counters):
            family.labels(kind).inc(counters[kind])
    # Gated like the deployment-level membership families: a static run's
    # snapshot keeps its exact pre-membership shape.
    if getattr(frontend.deployment, "membership", None) is not None:
        family = metrics.counter(
            "repro_service_unreachable_total",
            "Requests abandoned as permanently unreachable, by kind.",
            labelnames=("kind",),
        )
        for kind in sorted(frontend.unreachable):
            family.labels(kind).inc(frontend.unreachable[kind])
    metrics.gauge(
        "repro_service_in_flight",
        "Operations still in flight at collection time.",
    ).set(frontend.in_flight)
    metrics.gauge(
        "repro_service_peak_in_flight",
        "High-water mark of concurrent in-flight operations.",
    ).set(frontend.peak_in_flight)
    quantile_gauge = metrics.gauge(
        "repro_service_latency_quantile",
        "Streaming (P2) latency quantile estimates, by kind.",
        labelnames=("kind", "quantile"),
    )
    for kind in sorted(frontend.stream_quantiles):
        stream = frontend.stream_quantiles[kind]
        if stream.count == 0:
            continue  # a NaN gauge tells a dashboard less than no gauge
        for label, q in SLO_QUANTILES:
            quantile_gauge.labels(kind, label).set(stream.value(q))


def config_as_dict(config: ServiceConfig) -> Dict[str, Any]:
    """The config as JSON-able plain data (for benchmark records)."""
    return asdict(config)
