"""Service mode: a key-value front end driven by open-loop traffic.

This package turns a register deployment into something shaped like a
production service — the ROADMAP's "millions of simulated clients" axis:

* :mod:`repro.service.frontend` — :class:`KeyValueFrontend`: get/put over
  a :class:`~repro.registers.sharding.ShardedKeyspace`, with admission
  control (bounded in-flight operations), load-shedding counters and
  live latency tracking (fixed-bucket histogram + P² streaming
  p50/p99/p999),
* :mod:`repro.service.traffic` — :class:`OpenLoopDriver`: schedules
  arrivals from a :mod:`repro.sim.arrivals` process, draws Zipf keys and
  the read/write mix from named RNG streams, and keeps arriving whether
  or not the system keeps up,
* :mod:`repro.service.runner` — :class:`ServiceConfig` /
  :func:`run_service`: one-call assembly of deployment + keyspace +
  driver, returning a :class:`ServiceResult` with SLO quantiles,
  backpressure counters and a byte-deterministic metrics snapshot.

Everything is seeded and deterministic: two runs of the same config
produce byte-identical metrics snapshots, which the `service-smoke` CI
job asserts.
"""

from repro.service.frontend import KeyValueFrontend
from repro.service.runner import (
    ServiceConfig,
    ServiceResult,
    run_service,
)
from repro.service.traffic import OpenLoopDriver

__all__ = [
    "KeyValueFrontend",
    "OpenLoopDriver",
    "ServiceConfig",
    "ServiceResult",
    "run_service",
]
