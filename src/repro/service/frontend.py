"""The key-value front end: sharded registers behind get/put.

:class:`KeyValueFrontend` is the service's request path.  Each operation:

1. maps the key to its backing register via the sharded keyspace,
2. passes admission control — at most ``max_in_flight`` operations may
   be outstanding at once; beyond that the request is *shed* (counted,
   never issued), which is the backpressure that keeps an overloaded
   open-loop run from accumulating unbounded in-flight state,
3. routes to one of the deployment's clients — reads round-robin; writes
   according to ``write_mode`` (see below),
4. on settlement, records the operation's simulated latency into both a
   fixed-bucket histogram (``repro_service_latency``) and the P²
   streaming estimators, and bumps the outcome counters.

Write routing.  Any client accepts a put for any key (the front end is
multi-writer); what differs is which register subsystem executes it:

* ``"owner"`` (default) — each shard has one owning client
  (``shard % num_clients``) and every put is forwarded to it, the
  primary-per-shard layout of real sharded stores.  Writes then run the
  plain Section 4 protocol, which carries the full fault-tolerance
  layer: retries, backoff and per-operation deadlines, so a saturated or
  lossy deployment rejects writes with ``OperationTimeout`` instead of
  hanging them.
* ``"two_phase"`` — puts round-robin across clients and run the
  Attiya-Bar-Noy-Dolev two-phase multi-writer protocol
  (:class:`~repro.registers.atomic.MultiWriterClient`).  Two-phase
  operations have no retry/deadline path, so this mode is for loss-free,
  crash-free deployments; under message loss a write can hang and pin
  its in-flight slot for the rest of the run.

Timed-out operations count separately and do **not** feed the latency
distributions: a timeout's "latency" is just the deadline, and folding a
constant into the tail would mask exactly the overload signal the
estimators exist to surface.
"""

from typing import Any, Dict, Optional

from repro.obs.core import DISABLED, Observability
from repro.obs.quantiles import DEFAULT_QUANTILES, StreamingQuantiles
from repro.registers.client import QuorumUnreachable
from repro.registers.sharding import ShardedKeyspace
from repro.sim.futures import Future

#: Service latency buckets, in simulated time units: a healthy quorum
#: round takes ~2 one-way delays, so the range covers sub-round blips
#: through many-retry stalls; the +Inf overflow bucket catches the rest.
SERVICE_LATENCY_BUCKETS = (
    1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0, 64.0, 96.0,
)


class KeyValueFrontend:
    """Get/put over a sharded register deployment, with admission control."""

    def __init__(
        self,
        deployment: Any,
        keyspace: ShardedKeyspace,
        max_in_flight: int,
        observability: Optional[Observability] = None,
        write_mode: str = "owner",
    ) -> None:
        if max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        if write_mode not in ("owner", "two_phase"):
            raise ValueError(
                f"write_mode must be 'owner' or 'two_phase', got {write_mode!r}"
            )
        self.deployment = deployment
        self.keyspace = keyspace
        self.max_in_flight = max_in_flight
        self.write_mode = write_mode
        self.observability = (
            observability if observability is not None else DISABLED
        )
        self._clients = deployment.clients
        self._scheduler = deployment.scheduler
        self._register_names = keyspace.register_names
        self._next_client = 0

        self.in_flight = 0
        #: Peak concurrent in-flight operations (queue-depth high-water).
        self.peak_in_flight = 0
        #: Per-kind outcome counters (admitted = completed + timed_out +
        #: still in flight; shed requests are never admitted).
        self.admitted: Dict[str, int] = {"read": 0, "write": 0}
        self.shed: Dict[str, int] = {"read": 0, "write": 0}
        self.completed: Dict[str, int] = {"read": 0, "write": 0}
        self.timed_out: Dict[str, int] = {"read": 0, "write": 0}
        #: Operations abandoned as permanently unreachable (the bounded
        #: ``max_attempts`` give-up) — counted apart from deadline
        #: timeouts so a churn run can tell "slow" from "gave up".
        self.unreachable: Dict[str, int] = {"read": 0, "write": 0}

        #: Streaming SLO estimators per kind plus the combined stream.
        self.stream_quantiles: Dict[str, StreamingQuantiles] = {
            "read": StreamingQuantiles(DEFAULT_QUANTILES),
            "write": StreamingQuantiles(DEFAULT_QUANTILES),
            "all": StreamingQuantiles(DEFAULT_QUANTILES),
        }
        metrics = self.observability.metrics
        if metrics.enabled:
            latency = metrics.histogram(
                "repro_service_latency",
                "Service operation latency in simulated time units, by kind.",
                labelnames=("kind",),
                buckets=SERVICE_LATENCY_BUCKETS,
            )
            self._latency = {
                "read": latency.labels("read"),
                "write": latency.labels("write"),
            }
        else:
            self._latency = None

    @property
    def total_admitted(self) -> int:
        return sum(self.admitted.values())

    @property
    def total_shed(self) -> int:
        return sum(self.shed.values())

    @property
    def total_completed(self) -> int:
        return sum(self.completed.values())

    @property
    def total_timed_out(self) -> int:
        return sum(self.timed_out.values())

    @property
    def total_unreachable(self) -> int:
        return sum(self.unreachable.values())

    # ------------------------------------------------------------------ #

    def get(self, key: str) -> Optional[Future]:
        """Read ``key``; returns None when admission control sheds it."""
        return self._submit("read", key, None)

    def put(self, key: str, value: Any) -> Optional[Future]:
        """Write ``key``; returns None when admission control sheds it."""
        return self._submit("write", key, value)

    def _submit(self, kind: str, key: str, value: Any) -> Optional[Future]:
        if self.in_flight >= self.max_in_flight:
            self.shed[kind] += 1
            return None
        shard = self.keyspace.shard_of(key)
        register = self._register_names[shard]
        if kind == "write" and self.write_mode == "owner":
            client = self._clients[shard % len(self._clients)]
        else:
            client = self._clients[self._next_client]
            self._next_client = (self._next_client + 1) % len(self._clients)
        self.admitted[kind] += 1
        self.in_flight += 1
        if self.in_flight > self.peak_in_flight:
            self.peak_in_flight = self.in_flight
        started = self._scheduler.now
        if kind == "read":
            future = client.read(register)
        else:
            future = client.write(register, value)
        future.add_callback(
            lambda fut, kind=kind, started=started: self._settled(
                kind, started, fut
            )
        )
        return future

    def _settled(self, kind: str, started: float, future: Future) -> None:
        self.in_flight -= 1
        if future.failed:
            if isinstance(future.exception, QuorumUnreachable):
                self.unreachable[kind] += 1
            else:
                self.timed_out[kind] += 1
            return
        elapsed = self._scheduler.now - started
        self.completed[kind] += 1
        self.stream_quantiles[kind].observe(elapsed)
        self.stream_quantiles["all"].observe(elapsed)
        if self._latency is not None:
            self._latency[kind].observe(elapsed)

    def counters(self) -> Dict[str, Any]:
        """All backpressure/outcome counters as plain data."""
        return {
            "admitted": dict(self.admitted),
            "shed": dict(self.shed),
            "completed": dict(self.completed),
            "timed_out": dict(self.timed_out),
            "unreachable": dict(self.unreachable),
            "in_flight": self.in_flight,
            "peak_in_flight": self.peak_in_flight,
        }

    def __repr__(self) -> str:
        return (
            f"KeyValueFrontend({self.keyspace!r}, "
            f"in_flight={self.in_flight}/{self.max_in_flight}, "
            f"admitted={self.total_admitted}, shed={self.total_shed})"
        )
