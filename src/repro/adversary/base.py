"""Adversary strategy layer: adaptive, protocol-aware fault scheduling.

Random loss and scripted failure timelines exercise the *average* case;
the paper's probabilistic guarantees (Theorem 1's write-survival bound,
the monotone register's [R4]/[R5]) are claims about what an adversary
*cannot* do better than.  An :class:`Adversary` closes that gap: it sits
on the network's delivery path (:meth:`repro.sim.network.Network.set_adversary`),
observes every in-flight protocol message, and adaptively chooses drops,
extra delays, crash targets and partition timing based on the protocol
state it has seen — e.g. which servers hold the freshest write.

Determinism: every adversary draws randomness from its own named stream
of the deployment's :class:`~repro.sim.rng.RngRegistry`
(``adversary/<name>``), derived via the same BLAKE2b seed derivation as
every other stream, so an adversarial run is exactly as reproducible as a
benign one, and attaching an adversary never perturbs the delay, loss,
quorum or retry streams.

Budget discipline: adversaries act only on otherwise-deliverable messages
(the network consults them *after* its loss draw and fault check), so an
adversary's ``drops`` counter is comparable across strategies — the basis
for the stale-favoring vs random-hostile effectiveness comparison in
``benchmarks/bench_adversary.py``.
"""

from typing import Any, Dict, Optional

DROP = "drop"


class Adversary:
    """Base message-level adversary: observes everything, does nothing.

    Subclasses override :meth:`intercept` (per-message decisions) and/or
    :meth:`attach` (scheduler-driven actions like timed partitions or
    targeted crashes).  ``intercept`` returns ``None`` to pass a message
    through, :data:`DROP` to destroy it, or a non-negative float of extra
    delay.
    """

    name = "oblivious"

    def __init__(self) -> None:
        self.deployment: Optional[Any] = None
        self.rng = None
        self.messages_seen = 0
        self.drops = 0
        self.delays_added = 0
        self.crashes = 0
        self.partitions = 0

    def attach(self, deployment: Any) -> None:
        """Bind to a fully-built deployment (called once, before traffic)."""
        self.deployment = deployment
        self.rng = deployment.rng.stream(f"adversary/{self.name}")

    def intercept(
        self, src: int, dst: int, message: Any, kind: str, now: float
    ) -> Optional[Any]:
        """Decide the fate of one otherwise-deliverable message."""
        self.messages_seen += 1
        return None

    def summary(self) -> Dict[str, Any]:
        """JSON-able account of what the adversary did (for repro.obs)."""
        return {
            "name": self.name,
            "messages_seen": self.messages_seen,
            "drops": self.drops,
            "delays_added": self.delays_added,
            "crashes": self.crashes,
            "partitions": self.partitions,
        }

    def __repr__(self) -> str:
        return (
            f"{self.__class__.__name__}(seen={self.messages_seen}, "
            f"drops={self.drops}, crashes={self.crashes})"
        )
