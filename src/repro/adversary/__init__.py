"""Adaptive adversary strategies for the simulated network.

See :mod:`repro.adversary.base` for the interception model and
:mod:`repro.adversary.strategies` for the concrete strategies.
"""

from repro.adversary.base import DROP, Adversary
from repro.adversary.strategies import (
    CrashTargeterAdversary,
    PartitionOscillatorAdversary,
    RandomHostileAdversary,
    StaleFavoringAdversary,
    ViewChangeRacerAdversary,
    build_adversary,
)

__all__ = [
    "DROP",
    "Adversary",
    "CrashTargeterAdversary",
    "PartitionOscillatorAdversary",
    "RandomHostileAdversary",
    "StaleFavoringAdversary",
    "ViewChangeRacerAdversary",
    "build_adversary",
]
