"""Concrete adversary strategies.

Four strategies spanning the attack surface the paper's analysis is
implicitly quantified over:

* :class:`StaleFavoringAdversary` — watches WriteUpdates to learn which
  servers hold the freshest timestamp per register, then drops (and
  optionally delays) exactly the read replies carrying that freshest
  value.  This is the adaptive adversary Theorem 1's write-survival bound
  must withstand: old values survive as long as the adversary can keep
  fresh replies out of read quorums.
* :class:`PartitionOscillatorAdversary` — oscillates a network partition
  timed against the client :class:`~repro.registers.client.RetryPolicy`:
  the partition window covers the retry backoff window, so retries fire
  into the same partition that stalled the original round.
* :class:`CrashTargeterAdversary` — periodically crashes the ``k``
  replicas observed to hold the newest timestamp (recovering its previous
  victims first, so at most ``k`` of its targets are ever down at once):
  the worst-case instantiation of the paper's fail-stop model, where
  crashes hit exactly the servers whose loss hurts freshness most.
* :class:`RandomHostileAdversary` — the oblivious baseline: drops the
  same message class (read replies) with the same budget as the
  stale-favoring strategy, but chooses victims by coin flip.  The
  effectiveness gap between the two, at equal budgets, is what
  ``benchmarks/bench_adversary.py`` measures.

All state updates happen inside :meth:`intercept` (every strategy sees
every deliverable message) or in scheduler callbacks on the deployment's
own clock, so runs stay bit-deterministic per root seed.
"""

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.adversary.base import DROP, Adversary
from repro.core.timestamps import Timestamp


class StaleFavoringAdversary(Adversary):
    """Suppress the freshest write's replies to maximise staleness.

    ``drop_budget`` bounds total drops; ``fresh_write_delay`` optionally
    slows the propagation of fresh WriteUpdates by a fixed extra delay
    (no budget: delaying keeps the message, so liveness is preserved).
    """

    name = "stale_favoring"

    def __init__(
        self, drop_budget: int = 50, fresh_write_delay: float = 0.0
    ) -> None:
        super().__init__()
        if drop_budget < 0:
            raise ValueError(f"drop_budget must be >= 0, got {drop_budget}")
        if fresh_write_delay < 0:
            raise ValueError(
                f"fresh_write_delay must be >= 0, got {fresh_write_delay}"
            )
        self.drop_budget = drop_budget
        self.fresh_write_delay = fresh_write_delay
        # register -> (freshest timestamp seen, server node ids it was
        # sent to): the protocol state the strategy adapts to.
        self._freshest: Dict[str, Tuple[Timestamp, Set[int]]] = {}

    def freshest_holders(self, register: str) -> Set[int]:
        """Server node ids observed receiving the freshest write (tests)."""
        entry = self._freshest.get(register)
        return set(entry[1]) if entry is not None else set()

    def intercept(
        self, src: int, dst: int, message: Any, kind: str, now: float
    ) -> Optional[Any]:
        self.messages_seen += 1
        if kind == "write_update":
            entry = self._freshest.get(message.register)
            if entry is None or message.timestamp > entry[0]:
                self._freshest[message.register] = (message.timestamp, {dst})
            elif message.timestamp == entry[0]:
                entry[1].add(dst)
            if self.fresh_write_delay > 0.0 and (
                message.timestamp >= self._freshest[message.register][0]
            ):
                self.delays_added += 1
                return self.fresh_write_delay
        elif kind == "read_reply" and self.drops < self.drop_budget:
            entry = self._freshest.get(message.register)
            if entry is not None and message.timestamp >= entry[0]:
                self.drops += 1
                return DROP
        return None

    def summary(self) -> Dict[str, Any]:
        data = super().summary()
        data["drop_budget"] = self.drop_budget
        return data


class RandomHostileAdversary(Adversary):
    """Oblivious baseline: same budget and message class, random victims.

    Drops each read reply with probability ``drop_rate`` (from the
    strategy's own RNG stream) until ``drop_budget`` is spent.  Holding
    the budget and target class equal to :class:`StaleFavoringAdversary`
    isolates the value of *adaptivity* in the bench comparison.
    """

    name = "random_hostile"

    def __init__(self, drop_budget: int = 50, drop_rate: float = 0.25) -> None:
        super().__init__()
        if drop_budget < 0:
            raise ValueError(f"drop_budget must be >= 0, got {drop_budget}")
        if not 0.0 <= drop_rate <= 1.0:
            raise ValueError(f"drop_rate must be in [0, 1], got {drop_rate}")
        self.drop_budget = drop_budget
        self.drop_rate = drop_rate

    def intercept(
        self, src: int, dst: int, message: Any, kind: str, now: float
    ) -> Optional[Any]:
        self.messages_seen += 1
        if kind == "read_reply" and self.drops < self.drop_budget:
            if self.rng.random() < self.drop_rate:
                self.drops += 1
                return DROP
        return None

    def summary(self) -> Dict[str, Any]:
        data = super().summary()
        data["drop_budget"] = self.drop_budget
        return data


class PartitionOscillatorAdversary(Adversary):
    """Oscillate a partition timed against the client retry policy.

    Each cycle of length ``period`` opens a partition separating the
    clients (plus the first half of the servers) from the remaining
    servers for ``duty`` of the cycle, then heals.  With ``period`` unset
    it is derived from the deployment's retry policy — twice the base
    retry interval, so the partition window covers the first retry — the
    timing that maximally frustrates retry-based fault tolerance.
    ``horizon`` bounds the oscillation in simulated time (the repeating
    chain stops itself, keeping the event queue drainable).
    """

    name = "partition_oscillator"

    def __init__(
        self,
        period: Optional[float] = None,
        duty: float = 0.5,
        horizon: Optional[float] = None,
    ) -> None:
        super().__init__()
        if period is not None and period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if not 0.0 < duty < 1.0:
            raise ValueError(f"duty must be in (0, 1), got {duty}")
        self.period = period
        self.duty = duty
        self.horizon = horizon

    def attach(self, deployment: Any) -> None:
        super().attach(deployment)
        if self.period is None:
            policy = deployment.retry_policy
            self.period = 2.0 * policy.interval if policy is not None else 2.0
        server_ids = deployment.server_ids
        half = max(1, len(server_ids) // 2)
        client_ids = [client.node_id for client in deployment.clients]
        self._near = frozenset(client_ids + server_ids[:half])
        self._far = frozenset(server_ids[half:])
        deployment.scheduler.schedule_repeating(
            self.period,
            self._split,
            first_delay=self.period,
            until=self.horizon,
        )

    def _split(self) -> None:
        injector = self.deployment.failures
        injector.partition([self._near, self._far])
        self.partitions += 1
        self.deployment.scheduler.schedule(
            self.duty * self.period, injector.heal_partition
        )

    def summary(self) -> Dict[str, Any]:
        data = super().summary()
        data["period"] = self.period
        data["duty"] = self.duty
        return data


class CrashTargeterAdversary(Adversary):
    """Periodically crash the k replicas holding the newest timestamp.

    Victims are chosen from the servers observed (via WriteUpdate
    interception) to hold the globally freshest write; previous victims
    are recovered first, so at most ``k`` servers are ever down due to
    this adversary — a fixed crash budget per strike, matching the
    paper's "up to some number of crashed servers" availability model.
    """

    name = "crash_targeter"

    def __init__(
        self,
        k: int = 1,
        period: float = 5.0,
        horizon: Optional[float] = None,
    ) -> None:
        super().__init__()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.k = k
        self.period = period
        self.horizon = horizon
        self._freshest_ts = Timestamp.ZERO
        self._holders: Set[int] = set()
        self._down: List[int] = []

    def attach(self, deployment: Any) -> None:
        super().attach(deployment)
        deployment.scheduler.schedule_repeating(
            self.period,
            self._strike,
            first_delay=self.period,
            until=self.horizon,
        )

    def intercept(
        self, src: int, dst: int, message: Any, kind: str, now: float
    ) -> Optional[Any]:
        self.messages_seen += 1
        if kind == "write_update":
            if message.timestamp > self._freshest_ts:
                self._freshest_ts = message.timestamp
                self._holders = {dst}
            elif message.timestamp == self._freshest_ts:
                self._holders.add(dst)
        return None

    def _strike(self) -> None:
        injector = self.deployment.failures
        if self._down:
            injector.recover_many(self._down)
            self._down = []
        targets = sorted(self._holders)[: self.k]
        if not targets:
            return
        injector.crash_many(targets)
        self._down = targets
        self.crashes += len(targets)

    def summary(self) -> Dict[str, Any]:
        data = super().summary()
        data["k"] = self.k
        data["period"] = self.period
        return data


class ViewChangeRacerAdversary(Adversary):
    """Concentrate drops in the window right after each view install.

    Reconfiguration is the protocol's most delicate moment: clients hold
    operations stamped with the old view, leavers are draining, joiners
    have just caught up.  This strategy does nothing until the deployment's
    :class:`~repro.membership.manager.ViewManager` reports an install
    (via the ``on_view_installed`` hook), then for ``window`` time units
    drops replies — including ``StaleViewNack`` (so clients must fall
    back to retry-time view refresh) and ``StateReply`` (so a chained
    join's transfer must resample) — until ``drop_budget`` is spent.

    On a static deployment the hook never fires and the strategy is
    inert, making it an honest control at equal budget.
    """

    name = "view_change_racer"

    _RACED_KINDS = frozenset(
        ("read_reply", "write_ack", "stale_view_nack", "state_reply")
    )

    def __init__(self, drop_budget: int = 40, window: float = 6.0) -> None:
        super().__init__()
        if drop_budget < 0:
            raise ValueError(f"drop_budget must be >= 0, got {drop_budget}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.drop_budget = drop_budget
        self.window = window
        self.views_raced = 0
        self._window_until = float("-inf")

    def on_view_installed(self, view_id: int, now: float) -> None:
        """ViewManager hook: a new view just activated."""
        self.views_raced += 1
        self._window_until = now + self.window

    def intercept(
        self, src: int, dst: int, message: Any, kind: str, now: float
    ) -> Optional[Any]:
        self.messages_seen += 1
        if (
            now <= self._window_until
            and self.drops < self.drop_budget
            and kind in self._RACED_KINDS
        ):
            self.drops += 1
            return DROP
        return None

    def summary(self) -> Dict[str, Any]:
        data = super().summary()
        data["drop_budget"] = self.drop_budget
        data["window"] = self.window
        data["views_raced"] = self.views_raced
        return data


_STRATEGIES = {
    "stale_favoring": StaleFavoringAdversary,
    "random_hostile": RandomHostileAdversary,
    "partition_oscillator": PartitionOscillatorAdversary,
    "crash_targeter": CrashTargeterAdversary,
    "view_change_racer": ViewChangeRacerAdversary,
}


def build_adversary(
    spec: Dict[str, Any], horizon: Optional[float] = None
) -> Adversary:
    """Build a strategy from its plain-data (JSON-able) spec.

    ``spec`` is ``{"kind": <strategy name>, ...constructor kwargs}``;
    ``horizon`` is injected into time-driven strategies that did not pin
    one themselves, so worker processes can bound repeating chains by the
    run's simulated-time budget.
    """
    try:
        kind = spec["kind"]
    except (TypeError, KeyError):
        raise ValueError(
            f"adversary spec needs a 'kind' key: {spec!r}"
        ) from None
    try:
        cls = _STRATEGIES[kind]
    except KeyError:
        raise ValueError(
            f"unknown adversary kind {kind!r}; known: {sorted(_STRATEGIES)}"
        ) from None
    kwargs = {key: value for key, value in spec.items() if key != "kind"}
    if horizon is not None and "horizon" not in kwargs and (
        kind in ("partition_oscillator", "crash_targeter")
    ):
        kwargs["horizon"] = horizon
    return cls(**kwargs)
