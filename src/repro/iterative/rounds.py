"""Round accounting.

Section 7 of the paper: "A round finishes when every process completes at
least one iteration of Alg. 1 in which it reads the registers, applies the
function, and writes its registers."  In a synchronous execution a round is
exactly one loop iteration per process; in an asynchronous execution fast
processes may complete several iterations within one round.
"""

from typing import Dict, List


class RoundTracker:
    """Counts rounds from per-process iteration-completion reports."""

    def __init__(self, num_processes: int) -> None:
        if num_processes < 1:
            raise ValueError(f"need at least one process, got {num_processes}")
        self.num_processes = num_processes
        self.rounds_completed = 0
        self.iterations: Dict[int, int] = {p: 0 for p in range(num_processes)}
        self._seen_this_round: set = set()
        self._round_end_times: List[float] = []

    def report_iteration(self, process: int, time: float) -> bool:
        """Record that ``process`` completed one loop iteration at ``time``.

        Returns True when this report closes a round.
        """
        if process not in self.iterations:
            raise ValueError(f"unknown process {process}")
        self.iterations[process] += 1
        self._seen_this_round.add(process)
        if len(self._seen_this_round) == self.num_processes:
            self.rounds_completed += 1
            self._round_end_times.append(time)
            self._seen_this_round = set()
            return True
        return False

    @property
    def total_iterations(self) -> int:
        """Sum of loop iterations across all processes."""
        return sum(self.iterations.values())

    @property
    def round_end_times(self) -> List[float]:
        """Simulated times at which each round closed."""
        return list(self._round_end_times)

    def iterations_per_round(self) -> float:
        """Average loop iterations per completed round (>= num_processes)."""
        if self.rounds_completed == 0:
            return 0.0
        return self.total_iterations / self.rounds_completed

    def __repr__(self) -> str:
        return (
            f"RoundTracker(rounds={self.rounds_completed}, "
            f"iterations={self.total_iterations})"
        )
