"""Convergence detection for Alg. 1 executions.

Mirrors the paper's simulation (Section 7): at the end of each loop
iteration, each process compares its local copy of the components it is
responsible for against the precomputed correct answer; the simulation
completes when every comparison is simultaneously equal.

A process's flag is *recomputed* on every iteration — with non-monotone
random registers a process that was correct can regress after reading
stale inputs, and the monitor faithfully reflects that (it is exactly why
the paper's non-monotone runs sometimes failed to terminate).
"""

from typing import Any, Dict, List, Optional

from repro.iterative.aco import ACO


class ConvergenceMonitor:
    """Tracks which processes currently hold correct values."""

    def __init__(self, aco: ACO, blocks: List[List[int]]) -> None:
        self.aco = aco
        self.blocks = blocks
        self._correct: Dict[int, bool] = {
            p: not block for p, block in enumerate(blocks)
        }
        self.converged_at_time: Optional[float] = None
        self.converged_at_round: Optional[int] = None
        self.checks_performed = 0
        self.regressions = 0

    def report(
        self, process: int, local_values: Dict[int, Any], time: float
    ) -> bool:
        """Record the values ``process`` just computed for its components.

        :param local_values: component index -> newly computed value.
        :returns: True when every process is now simultaneously correct.
        """
        self.checks_performed += 1
        was_correct = self._correct[process]
        ok = all(
            self.aco.component_converged(i, value)
            for i, value in local_values.items()
        )
        if was_correct and not ok:
            self.regressions += 1
        self._correct[process] = ok
        if self.all_correct and self.converged_at_time is None:
            self.converged_at_time = time
        return self.all_correct

    @property
    def all_correct(self) -> bool:
        """True when every process's latest values are correct."""
        return all(self._correct.values())

    def mark_round(self, round_number: int) -> None:
        """Record the first round at which convergence held at a round edge."""
        if self.all_correct and self.converged_at_round is None:
            self.converged_at_round = round_number

    def __repr__(self) -> str:
        return (
            f"ConvergenceMonitor(correct={sum(self._correct.values())}/"
            f"{len(self._correct)}, regressions={self.regressions})"
        )
