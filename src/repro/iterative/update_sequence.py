"""Update sequences, admissibility conditions [A1]-[A3], and pseudocycles.

This module is the *pure* (non-distributed) half of the Üresin-Dubois
framework.  An update sequence is determined by an ACO, a ``change``
function (which components update at step k) and per-component ``view``
functions (which past update's value each component read).  Conditions:

[A1] view_i(k) < k — views come from the past;
[A2] every component appears in change(k) for infinitely many k;
[A3] each view value is used only finitely often.

On infinite objects these cannot be checked outright; the checkers here
validate finite prefixes ([A1] exactly, [A2]/[A3] as bounded-window
approximations suited to property-based testing).

``extract_pseudocycles`` partitions a prefix greedily into pseudocycles
per [B1]-[B2]: each pseudocycle updates every component at least once, and
every view used in pseudocycle K was produced in pseudocycle K-1 or later.
Theorem 2 then gives convergence within M pseudocycles.
"""

from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from repro.iterative.aco import ACO

ChangeFunction = Callable[[int], Set[int]]
ViewFunction = Callable[[int, int], int]  # (component, k) -> source update index


class UpdateSequenceError(RuntimeError):
    """Raised for inadmissible change/view functions."""


# --------------------------------------------------------------------- #
# Standard change/view schedules
# --------------------------------------------------------------------- #


def synchronous_change(m: int) -> ChangeFunction:
    """Every component updates at every step (Jacobi-style schedule)."""

    def change(k: int) -> Set[int]:
        return set(range(m))

    return change


def round_robin_change(m: int) -> ChangeFunction:
    """One component per step, cyclically (Gauss-Seidel-style schedule)."""

    def change(k: int) -> Set[int]:
        return {(k - 1) % m}

    return change


def current_view(component: int, k: int) -> int:
    """The freshest admissible view: the previous update."""
    return k - 1


def make_bounded_stale_view(staleness: Sequence[Sequence[int]]) -> ViewFunction:
    """A view function reading ``staleness[k-1][i]`` steps into the past.

    ``staleness`` is indexed by update (k-1) then component; entry s >= 0
    means view_i(k) = max(0, k - 1 - s).
    """

    def view(component: int, k: int) -> int:
        lag = staleness[k - 1][component]
        if lag < 0:
            raise UpdateSequenceError(f"negative staleness {lag} at update {k}")
        return max(0, k - 1 - lag)

    return view


# --------------------------------------------------------------------- #
# Iteration
# --------------------------------------------------------------------- #


def iterate_update_sequence(
    aco: ACO,
    steps: int,
    change: ChangeFunction,
    view: ViewFunction = current_view,
) -> List[List[Any]]:
    """Produce the vectors x(0), x(1), ..., x(steps) of an update sequence.

    x(0) is the ACO's initial vector; for k >= 1 component i of x(k) equals
    F_i applied to the *viewed* vector (each component j taken from
    x(view_j(k))) when i ∈ change(k), else x_i(k-1).  This is Section 5's
    definition verbatim.
    """
    if steps < 0:
        raise UpdateSequenceError(f"steps must be non-negative, got {steps}")
    history: List[List[Any]] = [list(aco.initial())]
    for k in range(1, steps + 1):
        changing = change(k)
        if not changing <= set(range(aco.m)):
            raise UpdateSequenceError(
                f"change({k}) = {changing} escapes components 0..{aco.m - 1}"
            )
        viewed = []
        for j in range(aco.m):
            source = view(j, k)
            if source >= k:
                raise UpdateSequenceError(
                    f"[A1] violated: view_{j}({k}) = {source} >= {k}"
                )
            if source < 0:
                raise UpdateSequenceError(
                    f"view_{j}({k}) = {source} is before the initial vector"
                )
            viewed.append(history[source][j])
        previous = history[k - 1]
        new_vector = [
            aco.apply(i, viewed) if i in changing else previous[i]
            for i in range(aco.m)
        ]
        history.append(new_vector)
    return history


# --------------------------------------------------------------------- #
# Admissibility checkers (finite-prefix forms)
# --------------------------------------------------------------------- #


def check_a1_views_from_past(
    m: int, view: ViewFunction, steps: int
) -> None:
    """[A1] on a prefix: view_i(k) < k for all components and 1 <= k <= steps."""
    for k in range(1, steps + 1):
        for i in range(m):
            if view(i, k) >= k:
                raise UpdateSequenceError(
                    f"[A1] violated: view_{i}({k}) = {view(i, k)} >= {k}"
                )


def check_a2_all_components_update(
    m: int, change: ChangeFunction, steps: int, window: Optional[int] = None
) -> None:
    """[A2] prefix form: every component updates within every ``window``.

    With window=None just requires each component to update at least once
    in the whole prefix — the weakest finite consequence of [A2].
    """
    if window is None:
        window = steps
    if window < 1:
        raise UpdateSequenceError(f"window must be positive, got {window}")
    for start in range(1, steps - window + 2):
        seen: Set[int] = set()
        for k in range(start, start + window):
            seen |= change(k)
        missing = set(range(m)) - seen
        if missing:
            raise UpdateSequenceError(
                f"[A2] violated on window [{start}, {start + window - 1}]: "
                f"components {sorted(missing)} never update"
            )


def check_a3_views_finitely_used(
    m: int, view: ViewFunction, steps: int, max_uses: Optional[int] = None
) -> None:
    """[A3] prefix form: no view value is reused more than ``max_uses`` times.

    Defaults to ``steps`` (i.e. only flags a value pinned for the *entire*
    prefix); tighter bounds express stronger staleness limits.
    """
    if max_uses is None:
        max_uses = steps
    uses: Dict[tuple, int] = {}
    for k in range(1, steps + 1):
        for i in range(m):
            key = (i, view(i, k))
            uses[key] = uses.get(key, 0) + 1
            if uses[key] > max_uses:
                raise UpdateSequenceError(
                    f"[A3] violated: view value x_{i}({view(i, k)}) used more "
                    f"than {max_uses} times within the prefix"
                )


# --------------------------------------------------------------------- #
# Pseudocycle extraction ([B1]-[B2])
# --------------------------------------------------------------------- #


def extract_pseudocycles(
    m: int,
    change: ChangeFunction,
    view: ViewFunction,
    steps: int,
) -> List[int]:
    """Partition updates 1..steps into pseudocycles satisfying [B1]-[B2].

    Returns the starts φ(1), φ(2), ... of pseudocycles 1, 2, ... (1-based
    update indices; pseudocycle 0 starts at update 1, and pseudocycle K
    comprises updates φ(K)..φ(K+1)-1).  The partition satisfies

    [B1] every component updates at least once in each closed pseudocycle;
    [B2] every update in pseudocycle K >= 1 views only values produced in
         pseudocycle K-1 or later.  Views of the initial vector (index 0)
         count as produced in pseudocycle 0, so the constraint only bites
         from pseudocycle 2 onward.

    The algorithm closes each pseudocycle greedily as soon as [B1] holds,
    and *merges* a pseudocycle back into its predecessor whenever an update
    turns out to use a view too old for the current floor — extending
    pseudocycles is always admissible, so the result is a valid partition
    (close to the maximum number of pseudocycles in the prefix).
    """
    all_components = set(range(m))
    if not all_components:
        return []
    starts: List[int] = [1]          # starts[K] = first update of pseudocycle K
    updated_stack: List[Set[int]] = [set()]  # components updated in each cycle

    def floor_for(cycle_index: int) -> int:
        # Views in pseudocycle K must be >= start of pseudocycle K-1; the
        # initial vector (view index 0) belongs to pseudocycle 0, so the
        # floor is 0 during pseudocycles 0 and 1.
        if cycle_index <= 1:
            return 0
        return starts[cycle_index - 1]

    for k in range(1, steps + 1):
        min_view = min(view(i, k) for i in range(m))
        # Merge the open cycle into its predecessor while this update's
        # views are too old for the open cycle's floor.
        while len(starts) > 1 and min_view < floor_for(len(starts) - 1):
            merged = updated_stack.pop()
            starts.pop()
            updated_stack[-1] |= merged
        updated_stack[-1] |= change(k)
        if updated_stack[-1] == all_components:
            starts.append(k + 1)
            updated_stack.append(set())
    return starts[1:]
