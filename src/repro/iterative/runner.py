"""Alg. 1: asynchronous iteration over shared random registers.

The paper's algorithm (Section 5): responsibility for the m components is
partitioned among p processes; component j lives in random register X_j.
Each process loops forever: read every X_j, apply F to the vector read,
write the X_j it owns.  The runner executes this over a simulated
:class:`~repro.registers.deployment.RegisterDeployment`, with the round
accounting and convergence detection of the paper's Section 7 simulation.
"""

from typing import Any, Dict, List, Optional

from repro.core.spec import (
    check_r2_reads_from_some_write,
    check_r4_monotone_reads,
)
from repro.iterative.aco import ACO
from repro.iterative.convergence import ConvergenceMonitor
from repro.iterative.partition import block_partition
from repro.iterative.rounds import RoundTracker
from repro.obs.collect import collect_alg1
from repro.obs.core import DISABLED, Observability
from repro.quorum.base import QuorumSystem
from repro.registers.client import OperationTimeout, RetryPolicy
from repro.registers.deployment import RegisterDeployment
from repro.sim.coroutines import spawn
from repro.sim.delays import DelayModel
from repro.sim.futures import gather


class Alg1Result:
    """Outcome of one Alg. 1 execution.

    Beyond the paper's round/iteration/message accounting, the result
    carries the degradation metrics of the fault-tolerance layer: quorum
    resamples (``retries``), deadline rejections (``timeouts``), messages
    destroyed by crashes/partitions/loss (``messages_dropped``) and
    operations that completed while failures were active
    (``ops_under_failure``).
    """

    def __init__(
        self,
        converged: bool,
        rounds: int,
        total_iterations: int,
        sim_time: float,
        messages: int,
        regressions: int,
        cache_hits: int,
        iterations_by_process: Dict[int, int],
        rounds_completed: int,
        retries: int = 0,
        timeouts: int = 0,
        messages_dropped: int = 0,
        ops_under_failure: int = 0,
    ) -> None:
        self.converged = converged
        self.rounds = rounds
        self.total_iterations = total_iterations
        self.sim_time = sim_time
        self.messages = messages
        self.regressions = regressions
        self.cache_hits = cache_hits
        self.iterations_by_process = iterations_by_process
        self.rounds_completed = rounds_completed
        self.retries = retries
        self.timeouts = timeouts
        self.messages_dropped = messages_dropped
        self.ops_under_failure = ops_under_failure

    def messages_per_round(self) -> float:
        """Average messages sent per round (compare with Eqns 1-2)."""
        if self.rounds == 0:
            return 0.0
        return self.messages / self.rounds

    def __repr__(self) -> str:
        state = "converged" if self.converged else "NOT converged"
        return (
            f"Alg1Result({state}, rounds={self.rounds}, "
            f"iterations={self.total_iterations}, messages={self.messages})"
        )


class Alg1Runner:
    """Executes an ACO with Alg. 1 over quorum-replicated registers."""

    def __init__(
        self,
        aco: ACO,
        quorum_system: QuorumSystem,
        num_processes: Optional[int] = None,
        monotone: bool = False,
        delay_model: Optional[DelayModel] = None,
        seed: int = 0,
        max_rounds: int = 1000,
        register_prefix: str = "X",
        retry_interval: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        loss_rate: float = 0.0,
        max_sim_time: Optional[float] = None,
        record_history: bool = True,
        observability: Optional[Observability] = None,
        spec_monitor: Optional[Any] = None,
        adversary: Optional[Any] = None,
        client_class: Optional[type] = None,
        detailed_stats: bool = False,
    ) -> None:
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be positive, got {max_rounds}")
        if max_sim_time is not None and max_sim_time <= 0:
            raise ValueError(
                f"max_sim_time must be positive, got {max_sim_time}"
            )
        self.aco = aco
        self.max_rounds = max_rounds
        # With failure injection and retries a stalled process stops rounds
        # from closing, so the max_rounds cap alone cannot guarantee
        # termination; max_sim_time is the hard stop for such runs.  With
        # retries enabled and no explicit cap, a generous default is
        # derived from the round budget so simulations always terminate.
        if max_sim_time is None and (
            retry_interval is not None or retry_policy is not None
        ):
            max_sim_time = 100.0 * max_rounds
        self.max_sim_time = max_sim_time
        self.observability = (
            observability if observability is not None else DISABLED
        )
        self.spec_monitor = spec_monitor
        p = num_processes if num_processes is not None else aco.m
        self.blocks = block_partition(aco.m, p)
        deployment_kwargs: Dict[str, Any] = {}
        if client_class is not None:
            deployment_kwargs["client_class"] = client_class
        self.deployment = RegisterDeployment(
            quorum_system,
            num_clients=p,
            delay_model=delay_model,
            monotone=monotone,
            seed=seed,
            retry_interval=retry_interval,
            retry_policy=retry_policy,
            loss_rate=loss_rate,
            record_history=record_history,
            detailed_stats=detailed_stats,
            observability=self.observability,
            spec_monitor=spec_monitor,
            adversary=adversary,
            **deployment_kwargs,
        )
        self.register_names = [f"{register_prefix}{j}" for j in range(aco.m)]
        initial = aco.initial()
        for j, name in enumerate(self.register_names):
            owner = next(
                proc for proc, block in enumerate(self.blocks) if j in block
            )
            self.deployment.declare_register(name, writer=owner, initial_value=initial[j])
        self.tracker = RoundTracker(p)
        self.monitor = ConvergenceMonitor(aco, self.blocks)
        self._stop = False
        self._result_converged = False

    # ------------------------------------------------------------------ #

    def _process_loop(self, process: int):
        """One process's infinite loop of Alg. 1 (a simulation coroutine)."""
        client = self.deployment.clients[process]
        block = self.blocks[process]
        scheduler = self.deployment.scheduler
        while not self._stop:
            # Read every register (concurrently; one query round-trip each).
            # A deadline rejection surfaces here as OperationTimeout; the
            # iteration is abandoned and restarted — Alg. 1 is idempotent,
            # so a re-read/re-write of the same components is always safe.
            try:
                read_futures = [
                    client.read(name) for name in self.register_names
                ]
                vector: List[Any] = yield gather(read_futures)
            except OperationTimeout:
                continue
            # Apply F for the components this process owns.
            new_values = {j: self.aco.apply(j, vector) for j in block}
            # Write the owned registers.
            try:
                write_futures = [
                    client.write(self.register_names[j], new_values[j])
                    for j in block
                ]
                if write_futures:
                    yield gather(write_futures)
            except OperationTimeout:
                continue
            # End of one loop iteration: report for round accounting and
            # convergence detection, exactly as in the paper's simulation.
            now = scheduler.now
            closed_round = self.tracker.report_iteration(process, now)
            all_correct = self.monitor.report(process, new_values, now)
            if closed_round:
                self.monitor.mark_round(self.tracker.rounds_completed)
            if all_correct:
                self._result_converged = True
                self._halt()
                return
            if closed_round and self.tracker.rounds_completed >= self.max_rounds:
                self._halt()
                return

    def _halt(self) -> None:
        self._stop = True
        self.deployment.scheduler.stop()

    # ------------------------------------------------------------------ #

    def run(self, check_spec: bool = True) -> Alg1Result:
        """Execute until convergence or ``max_rounds``; return the result.

        With ``check_spec`` the safety conditions [R2] (and [R4] when
        monotone) are verified on every register history after the run —
        every experiment therefore doubles as a specification audit.
        """
        if check_spec and not self.deployment.record_history:
            raise ValueError(
                "check_spec=True requires record_history=True: the spec "
                "audit reads the register histories after the run"
            )
        scheduler = self.deployment.scheduler
        for process in range(len(self.blocks)):
            spawn(scheduler, self._process_loop(process), label=f"proc-{process}")
        scheduler.run(until=self.max_sim_time)
        if not self._stop:
            # Hit the simulated-time cap (e.g. stalled by crashes): tear
            # the process loops down so the run reports honestly.
            self._halt()
        if self.spec_monitor is not None:
            # Online monitoring raised at the violating event during the
            # run; finalize adds the end-of-run liveness check ([R1]).
            self.spec_monitor.finalize(self.deployment)
        if check_spec:
            for name in self.register_names:
                history = self.deployment.space.history(name)
                check_r2_reads_from_some_write(history)
                if self.deployment.monotone:
                    check_r4_monotone_reads(history)
        rounds = self.tracker.rounds_completed
        # A detection that happens mid-round counts the partial round, per
        # the paper's "rounds until every process computes the APSP".
        if self._result_converged and self.tracker._seen_this_round:  # noqa: SLF001
            rounds += 1
        cache_hits = sum(c.cache_hits for c in self.deployment.clients)
        result = Alg1Result(
            converged=self._result_converged,
            rounds=rounds,
            total_iterations=self.tracker.total_iterations,
            sim_time=scheduler.now,
            messages=self.deployment.network.stats.sent,
            regressions=self.monitor.regressions,
            cache_hits=cache_hits,
            iterations_by_process=dict(self.tracker.iterations),
            rounds_completed=self.tracker.rounds_completed,
            retries=self.deployment.total_retries,
            timeouts=self.deployment.total_timeouts,
            messages_dropped=self.deployment.network.stats.dropped,
            ops_under_failure=self.deployment.total_ops_under_failure,
        )
        if self.observability.metrics.enabled:
            collect_alg1(self.observability.metrics, self, result)
        return result
