"""Asynchronously contracting operators (ACOs).

An ACO is a function F over an m-component product space together with a
chain of nested boxes D(0) ⊇ D(1) ⊇ ... collapsing onto F's fixed point
(conditions [C1]-[C3] of the paper).  Üresin and Dubois' theorem says every
admissible asynchronous iteration of an ACO converges to the fixed point;
the paper's Theorem 3 lifts this to executions over random registers.

Concrete ACOs live in :mod:`repro.apps`; this module defines the interface
the iterative runner and the pure update-sequence machinery both consume.
"""

from typing import Any, List, Optional


class ACOError(RuntimeError):
    """Raised for invalid ACO usage (e.g. iteration diverging)."""


class ACO:
    """An asynchronously contracting operator over m components.

    A *component value* may be any hashable-or-comparable object: a number
    (Jacobi), a tuple of distances (APSP rows), a frozenset (transitive
    closure, constraint domains).  ``apply`` must be a pure function of the
    full vector.
    """

    @property
    def m(self) -> int:
        """Number of vector components."""
        raise NotImplementedError

    def initial(self) -> List[Any]:
        """The initial vector i ∈ D(0)."""
        raise NotImplementedError

    def apply(self, i: int, x: List[Any]) -> Any:
        """Component function F_i evaluated on the full vector ``x``."""
        raise NotImplementedError

    def apply_all(self, x: List[Any]) -> List[Any]:
        """The full operator F(x) (a synchronous update of every component)."""
        return [self.apply(i, x) for i in range(self.m)]

    def fixed_point(self) -> List[Any]:
        """The reference fixed point (computed by a direct algorithm)."""
        raise NotImplementedError

    def component_converged(self, i: int, value: Any) -> bool:
        """Whether component ``i`` holding ``value`` counts as converged.

        Defaults to exact equality with the fixed point; numeric ACOs
        (Jacobi) override with a tolerance.
        """
        return value == self.fixed_point()[i]

    def vector_converged(self, x: List[Any]) -> bool:
        """Whether the whole vector counts as converged."""
        return all(self.component_converged(i, x[i]) for i in range(self.m))

    def contraction_depth(self) -> Optional[int]:
        """The number of pseudocycles M needed for convergence, if known.

        For the paper's APSP application this is ⌈log₂ d⌉ with d the input
        graph's diameter.  None when no closed form is available.
        """
        return None

    def in_domain(self, x: List[Any], level: int = 0) -> bool:
        """Membership of ``x`` in the box D(level), when checkable.

        Optional: used by property-based tests of [C3].  The default only
        knows D(level) for level so large that D = {fixed point}.
        """
        depth = self.contraction_depth()
        if depth is not None and level >= depth:
            return list(x) == list(self.fixed_point())
        raise NotImplementedError(
            f"{type(self).__name__} does not expose D({level}) membership"
        )


def synchronous_fixed_point(
    aco: ACO, max_iterations: int = 100_000
) -> List[Any]:
    """Iterate F synchronously from the initial vector to its fixed point.

    This is the trivially correct baseline every distributed execution is
    compared against.  Raises :class:`ACOError` if the iteration has not
    stabilised within ``max_iterations`` applications of F.
    """
    x = list(aco.initial())
    for _ in range(max_iterations):
        next_x = aco.apply_all(x)
        if aco.vector_converged(next_x) or next_x == x:
            return next_x
        x = next_x
    raise ACOError(
        f"synchronous iteration of {type(aco).__name__} did not stabilise "
        f"within {max_iterations} iterations"
    )
