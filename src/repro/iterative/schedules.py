"""Standard change/view schedules for the pure Üresin-Dubois framework.

:mod:`repro.iterative.update_sequence` defines the machinery; this module
supplies the schedules distributed-computing texts actually study:

* Jacobi (all components every step) — ``synchronous_change``, re-exported;
* Gauss-Seidel (one component per step, cyclic) — ``round_robin_change``;
* block-cyclic — blocks of components take turns, the schedule Alg. 1
  induces when p < m;
* random-subset — each step updates a random non-empty subset, with a
  deterministic round-robin fallback woven in so [A2] holds surely, not
  just almost surely;
* delayed views — every component read lags by a fixed bound, the
  textbook model of bounded asynchrony.
"""

from typing import Callable, List, Sequence, Set

import numpy as np

from repro.iterative.partition import block_partition
from repro.iterative.update_sequence import (
    ChangeFunction,
    ViewFunction,
    round_robin_change,
    synchronous_change,
)

__all__ = [
    "block_cyclic_change",
    "bounded_delay_view",
    "random_subset_change",
    "round_robin_change",
    "synchronous_change",
]


def block_cyclic_change(m: int, p: int) -> ChangeFunction:
    """Blocks of a p-way partition update in cyclic turns.

    This is the schedule a synchronous Alg. 1 run with p processes and a
    sequentialised network induces on the formal model.
    """
    blocks = [set(block) for block in block_partition(m, p) if block]
    if not blocks:
        raise ValueError("partition produced no non-empty blocks")

    def change(k: int) -> Set[int]:
        return blocks[(k - 1) % len(blocks)]

    return change


def random_subset_change(
    m: int, rng: np.random.Generator, include_probability: float = 0.5,
    fairness_period: int = None,
) -> ChangeFunction:
    """Each step updates a random subset of components.

    Every ``fairness_period`` steps (default 2m) one deterministic
    round-robin component is forced in, so every component updates
    infinitely often regardless of the random draws — [A2] holds surely.
    Draws are cached per k so the function is deterministic across calls.
    """
    if not 0.0 < include_probability <= 1.0:
        raise ValueError(
            f"include probability must be in (0, 1], got {include_probability}"
        )
    if fairness_period is None:
        fairness_period = 2 * m
    if fairness_period < 1:
        raise ValueError(f"fairness period must be positive, got {fairness_period}")
    cache: List[Set[int]] = []

    def change(k: int) -> Set[int]:
        while len(cache) < k:
            step = len(cache) + 1
            subset = {
                i for i in range(m) if rng.random() < include_probability
            }
            subset.add((step // fairness_period) % m)
            cache.append(subset)
        return cache[k - 1]

    return change


def bounded_delay_view(delays: Sequence[int]) -> ViewFunction:
    """Component i's view always lags exactly ``delays[i]`` updates.

    The classical "bounded asynchrony" model: view_i(k) = max(0, k-1-d_i).
    """
    if any(d < 0 for d in delays):
        raise ValueError(f"delays must be non-negative, got {list(delays)}")

    def view(component: int, k: int) -> int:
        return max(0, k - 1 - delays[component])

    return view


def process_local_view(
    m: int, p: int, lag_between_processes: int = 1
) -> ViewFunction:
    """Views as seen by block-partitioned processes: a component reads its
    *own* block's values fresh and other blocks' values with a lag.

    Models the essential asymmetry of Alg. 1 — your own components are
    always current, everyone else's are a communication delay old.
    """
    if lag_between_processes < 0:
        raise ValueError(
            f"lag must be non-negative, got {lag_between_processes}"
        )
    blocks = block_partition(m, p)
    owner = {}
    for process, block in enumerate(blocks):
        for component in block:
            owner[component] = process

    def view(component: int, k: int) -> int:
        # The updating block at step k under block-cyclic scheduling.
        non_empty = [set(b) for b in blocks if b]
        updating = non_empty[(k - 1) % len(non_empty)]
        if component in updating:
            return k - 1
        return max(0, k - 1 - lag_between_processes)

    return view
