"""Partitioning vector components among processes.

Alg. 1 partitions responsibility for the m components among p processes.
The block partition used throughout matches the paper's APSP setup, where
process i owns row i (p = m); for p < m each process owns a contiguous
block of ⌈m/p⌉ or ⌊m/p⌋ components.
"""

from typing import List


def block_partition(m: int, p: int) -> List[List[int]]:
    """Split components {0..m-1} into p contiguous, balanced blocks.

    Every process receives ⌊m/p⌋ or ⌈m/p⌉ components; when p > m the extra
    processes receive empty blocks (they still participate in rounds).
    """
    if m < 0:
        raise ValueError(f"m must be non-negative, got {m}")
    if p < 1:
        raise ValueError(f"p must be at least 1, got {p}")
    base, extra = divmod(m, p)
    blocks: List[List[int]] = []
    start = 0
    for process in range(p):
        size = base + (1 if process < extra else 0)
        blocks.append(list(range(start, start + size)))
        start += size
    return blocks


def owner_of(component: int, blocks: List[List[int]]) -> int:
    """The process owning ``component`` under a partition."""
    for process, block in enumerate(blocks):
        if component in block:
            return process
    raise ValueError(f"component {component} not covered by the partition")
