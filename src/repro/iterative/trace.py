"""Empirical pseudocycle measurement from Alg. 1 executions.

Theorem 5 bounds the *expected rounds per pseudocycle*; Figure 2 only
measures rounds to convergence.  This module closes the gap: it
reconstructs the Üresin-Dubois update sequence of a finished
:class:`~repro.iterative.runner.Alg1Runner` execution directly from the
recorded register histories, extracts its pseudocycles with
:func:`~repro.iterative.update_sequence.extract_pseudocycles`, and reports
measured rounds per pseudocycle for comparison against Corollary 7.

Reconstruction uses only history facts:

* every loop iteration of process p performs exactly m reads followed by
  writes of p's components, so chunking p's reads per register into
  groups in invocation order recovers the iteration structure;
* each write to register X_j is one *update* of component j in the formal
  model; writes ordered by invocation time give the update sequence
  (a value can only be read after its write was invoked, so views always
  point into the past — condition [A1] holds by construction);
* the timestamp a read returned identifies the write (= update) it viewed.
"""

from typing import Dict, List, Tuple

from repro.iterative.runner import Alg1Runner
from repro.iterative.update_sequence import extract_pseudocycles


class TraceError(RuntimeError):
    """Raised when a history cannot be reconstructed into an update sequence."""


def reconstruct_update_sequence(
    runner: Alg1Runner,
) -> Tuple[List[set], List[List[int]]]:
    """Rebuild (change, views) of the execution's update sequence.

    :returns: ``(changes, views)`` where ``changes[t]`` is the component
        set of update t+1 and ``views[t][j]`` is the index (0 = initial
        values) of the update whose value of component j the updating
        iteration read.
    """
    space = runner.deployment.space
    m = len(runner.register_names)
    # Global update index per write: order all real writes by invocation.
    events = []  # (invoke_time, op_id, component, seq, process)
    for j, name in enumerate(runner.register_names):
        history = space.history(name)
        for write in history.writes:
            if write is history.initial_write:
                continue
            events.append(
                (write.invoke_time, write.op_id, j, write.timestamp.seq,
                 write.process)
            )
    events.sort()
    index_of: Dict[Tuple[int, int], int] = {}  # (component, seq) -> update idx
    for idx, (_, _, j, seq, _) in enumerate(events, start=1):
        index_of[(j, seq)] = idx

    # Per process: chunk reads into iterations and map iteration -> views.
    views_of_iteration: Dict[Tuple[int, int], List[int]] = {}
    processes = {event[4] for event in events}
    for process in processes:
        per_register_reads = []
        for j, name in enumerate(runner.register_names):
            reads = [
                r
                for r in space.history(name).reads_by_process(process)
                if not r.pending and r.timestamp is not None
            ]
            per_register_reads.append(reads)
        iterations = min(len(reads) for reads in per_register_reads)
        for it in range(iterations):
            view = []
            for j in range(m):
                seq = per_register_reads[j][it].timestamp.seq
                view.append(index_of.get((j, seq), 0) if seq > 0 else 0)
            views_of_iteration[(process, it)] = view

    # A process's i-th write to its register belongs to its i-th iteration
    # (one write per owned register per iteration).
    write_counter: Dict[Tuple[int, int], int] = {}
    changes: List[set] = []
    views: List[List[int]] = []
    for _, _, j, seq, process in events:
        iteration = write_counter.get((process, j), 0)
        write_counter[(process, j)] = iteration + 1
        view = views_of_iteration.get((process, iteration))
        if view is None:
            # The final, partially recorded iteration (stopped mid-flight):
            # treat its views as maximally fresh to avoid fabricating lag.
            view = [len(changes)] * m
        changes.append({j})
        views.append(list(view))
    return changes, views


def measure_pseudocycles(runner: Alg1Runner) -> int:
    """The number of [B1]/[B2] pseudocycles the execution completed."""
    changes, views = reconstruct_update_sequence(runner)
    steps = len(changes)
    if steps == 0:
        return 0
    m = len(runner.register_names)

    def change(k: int) -> set:
        return changes[k - 1]

    def view(i: int, k: int) -> int:
        return views[k - 1][i]

    return len(extract_pseudocycles(m, change, view, steps))


def rounds_per_pseudocycle(runner: Alg1Runner, rounds: int) -> float:
    """Measured rounds per pseudocycle for a finished execution."""
    pseudocycles = measure_pseudocycles(runner)
    if pseudocycles == 0:
        raise TraceError("execution completed no pseudocycles")
    return rounds / pseudocycles
