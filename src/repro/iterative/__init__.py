"""The Üresin-Dubois framework for asynchronous iterative algorithms.

Implements Section 5 of the paper:

* :class:`ACO` — asynchronously contracting operators, the class of
  functions whose asynchronous iterations converge (Üresin-Dubois '90).
* :mod:`repro.iterative.update_sequence` — update sequences built from
  *change* and *view* functions, validators for conditions [A1]-[A3], and
  pseudocycle extraction per [B1]-[B2] (used to verify Theorem 2 directly,
  without the simulator).
* :class:`Alg1Runner` — the paper's Alg. 1: p processes over a
  :class:`~repro.registers.deployment.RegisterDeployment`, each repeatedly
  reading every register, applying F, and writing the registers it owns,
  with round accounting and convergence detection exactly as Section 7
  describes.
"""

from repro.iterative.aco import ACO, ACOError, synchronous_fixed_point
from repro.iterative.partition import block_partition, owner_of
from repro.iterative.update_sequence import (
    UpdateSequenceError,
    check_a1_views_from_past,
    check_a2_all_components_update,
    check_a3_views_finitely_used,
    extract_pseudocycles,
    iterate_update_sequence,
    round_robin_change,
    synchronous_change,
)
from repro.iterative.rounds import RoundTracker
from repro.iterative.schedules import (
    block_cyclic_change,
    bounded_delay_view,
    process_local_view,
    random_subset_change,
)
from repro.iterative.convergence import ConvergenceMonitor
from repro.iterative.runner import Alg1Result, Alg1Runner
from repro.iterative.trace import (
    TraceError,
    measure_pseudocycles,
    reconstruct_update_sequence,
    rounds_per_pseudocycle,
)

__all__ = [
    "ACO",
    "ACOError",
    "Alg1Result",
    "Alg1Runner",
    "ConvergenceMonitor",
    "RoundTracker",
    "TraceError",
    "UpdateSequenceError",
    "block_cyclic_change",
    "block_partition",
    "bounded_delay_view",
    "measure_pseudocycles",
    "process_local_view",
    "random_subset_change",
    "reconstruct_update_sequence",
    "rounds_per_pseudocycle",
    "check_a1_views_from_past",
    "check_a2_all_components_update",
    "check_a3_views_finitely_used",
    "extract_pseudocycles",
    "iterate_update_sequence",
    "owner_of",
    "round_robin_change",
    "synchronous_change",
    "synchronous_fixed_point",
]
