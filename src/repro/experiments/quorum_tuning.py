"""E-EXT-TUNE: tuning the constant in k = c·√n.

Malkhi, Reiter and Wright recommend k = c·√n, where the non-intersection
probability is at most e^{-c²}.  This extension experiment sweeps c and
reports, side by side, the analytic intersection probability, the
Theorem 4 success parameter q, the Corollary 7 convergence bound, and
*measured* rounds-to-convergence for the paper's APSP workload — showing
where extra replicas stop buying convergence speed (the knee near c ≈ 1).
"""

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.theory import (
    corollary7_rounds_per_pseudocycle_bound,
    q_exact,
)
from repro.apps.apsp import ApspACO
from repro.apps.graphs import chain_graph
from repro.experiments.results import ResultTable
from repro.iterative.runner import Alg1Runner
from repro.quorum.probabilistic import ProbabilisticQuorumSystem
from repro.sim.delays import ConstantDelay


@dataclass
class TuningConfig:
    """Parameters for the c-sweep."""

    num_vertices: int = 16
    num_servers: int = 36
    c_values: Tuple[float, ...] = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0)
    runs: int = 3
    max_rounds: int = 300
    seed: int = 71

    @classmethod
    def scaled_down(cls) -> "TuningConfig":
        return cls(num_vertices=10, num_servers=16,
                   c_values=(0.25, 0.5, 1.0, 2.0), runs=2)


def tuning_rows(config: TuningConfig) -> List[dict]:
    """One row per c: analytic properties plus measured rounds."""
    aco = ApspACO(chain_graph(config.num_vertices))
    n = config.num_servers
    rows = []
    seen_k = set()
    for c in config.c_values:
        k = min(n, max(1, math.ceil(c * math.sqrt(n))))
        if k in seen_k:
            continue  # distinct c values can collapse to the same k
        seen_k.add(k)
        rounds = []
        for run in range(config.runs):
            result = Alg1Runner(
                aco,
                ProbabilisticQuorumSystem(n, k),
                monotone=True,
                delay_model=ConstantDelay(1.0),
                seed=config.seed + 31 * run + 7 * k,
                max_rounds=config.max_rounds,
            ).run(check_spec=False)
            if result.converged:
                rounds.append(result.rounds)
        rows.append(
            {
                "c": c,
                "k": k,
                "intersection_prob": 1.0
                - ProbabilisticQuorumSystem(n, k).non_intersection_probability(),
                "q": q_exact(n, k),
                "cor7_bound": corollary7_rounds_per_pseudocycle_bound(n, k),
                "mean_rounds": (
                    sum(rounds) / len(rounds) if rounds else float("nan")
                ),
                "load": k / n,
            }
        )
    return rows


def tuning_table(config: TuningConfig) -> ResultTable:
    """The E-EXT-TUNE table."""
    table = ResultTable(
        f"Tuning k = c·sqrt(n): convergence vs load "
        f"(n={config.num_servers}, chain {config.num_vertices}, monotone)",
        ["c", "k", "intersection_prob", "q", "cor7_bound", "mean_rounds",
         "load"],
    )
    table.add_dict_rows(tuning_rows(config))
    return table
