"""E-EXT-TUNE: tuning the constant in k = c·√n.

Malkhi, Reiter and Wright recommend k = c·√n, where the non-intersection
probability is at most e^{-c²}.  This extension experiment sweeps c and
reports, side by side, the analytic intersection probability, the
Theorem 4 success parameter q, the Corollary 7 convergence bound, and
*measured* rounds-to-convergence for the paper's APSP workload — showing
where extra replicas stop buying convergence speed (the knee near c ≈ 1).
"""

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.theory import (
    corollary7_rounds_per_pseudocycle_bound,
    q_exact,
)
from repro.exec.cache import RunCache
from repro.exec.engine import run_many
from repro.exec.task import RunTask
from repro.experiments.results import ResultTable
from repro.quorum.probabilistic import ProbabilisticQuorumSystem
from repro.sim.rng import derive_seed


@dataclass
class TuningConfig:
    """Parameters for the c-sweep."""

    num_vertices: int = 16
    num_servers: int = 36
    c_values: Tuple[float, ...] = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0)
    runs: int = 3
    max_rounds: int = 300
    seed: int = 71

    @classmethod
    def scaled_down(cls) -> "TuningConfig":
        return cls(num_vertices=10, num_servers=16,
                   c_values=(0.25, 0.5, 1.0, 2.0), runs=2)


def _distinct_cells(config: TuningConfig) -> List[Tuple[float, int]]:
    """(c, k) pairs with duplicate k dropped (distinct c can collapse)."""
    n = config.num_servers
    cells = []
    seen_k = set()
    for c in config.c_values:
        k = min(n, max(1, math.ceil(c * math.sqrt(n))))
        if k in seen_k:
            continue
        seen_k.add(k)
        cells.append((c, k))
    return cells


def tuning_tasks(config: TuningConfig) -> List[RunTask]:
    """One task per (distinct k, run)."""
    return [
        RunTask(
            kind="alg1",
            params={
                "graph": {"kind": "chain", "n": config.num_vertices},
                "quorum": {
                    "kind": "probabilistic",
                    "n": config.num_servers,
                    "k": k,
                },
                "delay": {"kind": "constant", "mean": 1.0},
                "monotone": True,
                "max_rounds": config.max_rounds,
            },
            seed=derive_seed(config.seed, "tuning", k, run),
        )
        for _, k in _distinct_cells(config)
        for run in range(config.runs)
    ]


def tuning_rows(
    config: TuningConfig,
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
) -> List[dict]:
    """One row per c: analytic properties plus measured rounds."""
    n = config.num_servers
    cells = _distinct_cells(config)
    results = run_many(tuning_tasks(config), jobs=jobs, cache=cache)
    rows = []
    for index, (c, k) in enumerate(cells):
        group = results[index * config.runs : (index + 1) * config.runs]
        rounds = [r["rounds"] for r in group if r["converged"]]
        rows.append(
            {
                "c": c,
                "k": k,
                "intersection_prob": 1.0
                - ProbabilisticQuorumSystem(n, k).non_intersection_probability(),
                "q": q_exact(n, k),
                "cor7_bound": corollary7_rounds_per_pseudocycle_bound(n, k),
                "mean_rounds": (
                    sum(rounds) / len(rounds) if rounds else float("nan")
                ),
                "load": k / n,
            }
        )
    return rows


def tuning_table(
    config: TuningConfig,
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
) -> ResultTable:
    """The E-EXT-TUNE table."""
    table = ResultTable(
        f"Tuning k = c·sqrt(n): convergence vs load "
        f"(n={config.num_servers}, chain {config.num_vertices}, monotone)",
        ["c", "k", "intersection_prob", "q", "cor7_bound", "mean_rounds",
         "load"],
    )
    table.add_dict_rows(tuning_rows(config, jobs=jobs, cache=cache))
    return table
