"""E-THM1: write-survival probability vs the Theorem 1 bound.

Theorem 1's proof shows the probability that at least one replica in a
write's quorum still holds that write's value after ℓ subsequent writes is
at most k·((n-k)/n)^ℓ.  Two estimators:

* a direct quorum-level Monte Carlo (`quorum_level_survival`): sample a
  write quorum and ℓ later write quorums and check whether any member of
  the first escaped them all — this is exactly the event the proof bounds;
* a register-level measurement (`register_level_survival`): run an actual
  deployment with a writer and readers and derive per-lag survival from
  the recorded history via :func:`repro.core.spec.write_survival_counts`.
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.theory import theorem1_survival_bound
from repro.core.spec import write_survival_counts
from repro.experiments.results import ResultTable
from repro.quorum.probabilistic import ProbabilisticQuorumSystem
from repro.registers.deployment import RegisterDeployment
from repro.sim.coroutines import Sleep, spawn
from repro.sim.delays import ExponentialDelay
from repro.sim.rng import RngRegistry


@dataclass
class SurvivalConfig:
    """Parameters for the survival experiment."""

    num_servers: int = 34
    quorum_size: int = 6
    max_lag: int = 12
    trials: int = 20_000
    seed: int = 7

    @classmethod
    def scaled_down(cls) -> "SurvivalConfig":
        # Smaller n and k so the per-lag decay rate (n-k)/n bites within
        # few lags; keeps the Monte Carlo trials cheap.
        return cls(num_servers=16, quorum_size=4, max_lag=10, trials=2_000)


def quorum_level_survival(config: SurvivalConfig) -> Dict[int, float]:
    """Monte Carlo Pr[some replica of W's quorum survives ℓ later writes]."""
    system = ProbabilisticQuorumSystem(config.num_servers, config.quorum_size)
    rng = RngRegistry(config.seed).stream("survival")
    survivals = {ell: 0 for ell in range(config.max_lag + 1)}
    for _ in range(config.trials):
        write_quorum = system.quorum(rng)
        overwritten: set = set()
        for ell in range(config.max_lag + 1):
            if write_quorum - overwritten:
                survivals[ell] += 1
            overwritten |= system.quorum(rng)
    return {ell: count / config.trials for ell, count in survivals.items()}


def register_level_survival(
    config: SurvivalConfig,
    num_readers: int = 4,
    num_writes: int = 200,
) -> Dict[int, Tuple[int, int]]:
    """Per-lag (survivals, trials) from a real register deployment run."""
    system = ProbabilisticQuorumSystem(config.num_servers, config.quorum_size)
    deployment = RegisterDeployment(
        system,
        num_clients=1 + num_readers,
        delay_model=ExponentialDelay(1.0),
        monotone=False,
        seed=config.seed,
    )
    deployment.declare_register("X", writer=0, initial_value=0)

    def writer():
        for value in range(1, num_writes + 1):
            yield deployment.handle(0, "X").write(value)
            yield Sleep(0.5)

    def reader(client_id: int):
        for _ in range(num_writes):
            yield deployment.handle(client_id, "X").read()
            yield Sleep(0.5)

    spawn(deployment.scheduler, writer(), label="writer")
    for r in range(1, num_readers + 1):
        spawn(deployment.scheduler, reader(r), label=f"reader-{r}")
    deployment.run()
    return write_survival_counts(
        deployment.space.history("X"), max_ell=config.max_lag
    )


def survival_table(config: SurvivalConfig) -> ResultTable:
    """The E-THM1 comparison table: measured vs bound per lag ℓ."""
    monte_carlo = quorum_level_survival(config)
    register = register_level_survival(config)
    table = ResultTable(
        f"Theorem 1 — write survival probability "
        f"(n={config.num_servers}, k={config.quorum_size})",
        ["ell", "bound_k_frac", "quorum_mc", "register_measured"],
    )
    for ell in range(config.max_lag + 1):
        bound = theorem1_survival_bound(
            config.num_servers, config.quorum_size, ell
        )
        reg = register.get(ell)
        reg_value = reg[0] / reg[1] if reg and reg[1] else float("nan")
        table.add_row(ell, bound, monte_carlo[ell], reg_value)
    return table


def check_bound_holds(
    config: SurvivalConfig, slack: float = 0.02
) -> List[int]:
    """Lags at which the Monte Carlo estimate exceeds the bound + slack
    (should be empty — used by tests and the benchmark's assertion)."""
    measured = quorum_level_survival(config)
    violations = []
    for ell, probability in measured.items():
        bound = theorem1_survival_bound(
            config.num_servers, config.quorum_size, ell
        )
        if probability > bound + slack:
            violations.append(ell)
    return violations
