"""E-THM1: write-survival probability vs the Theorem 1 bound.

Theorem 1's proof shows the probability that at least one replica in a
write's quorum still holds that write's value after ℓ subsequent writes is
at most k·((n-k)/n)^ℓ.  Two estimators:

* a direct quorum-level Monte Carlo (`quorum_level_survival`): sample a
  write quorum and ℓ later write quorums and check whether any member of
  the first escaped them all — this is exactly the event the proof bounds;
* a register-level measurement (`register_level_survival`): run an actual
  deployment with a writer and readers and derive per-lag survival from
  the recorded history via :func:`repro.core.spec.write_survival_counts`.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.theory import theorem1_survival_bound
from repro.core.spec import write_survival_counts
from repro.exec.cache import RunCache
from repro.exec.engine import run_many
from repro.exec.task import RunTask
from repro.experiments.results import ResultTable
from repro.quorum.probabilistic import ProbabilisticQuorumSystem
from repro.registers.deployment import RegisterDeployment
from repro.sim.coroutines import Sleep, spawn
from repro.sim.delays import ExponentialDelay
from repro.sim.rng import RngRegistry, derive_seed

#: Monte Carlo trials per engine task.  Fixed (never derived from the job
#: count) so the shard boundaries — and therefore every number — are the
#: same no matter how many workers execute them.
MC_SHARD_TRIALS = 5_000


@dataclass
class SurvivalConfig:
    """Parameters for the survival experiment."""

    num_servers: int = 34
    quorum_size: int = 6
    max_lag: int = 12
    trials: int = 20_000
    seed: int = 7

    @classmethod
    def scaled_down(cls) -> "SurvivalConfig":
        # Smaller n and k so the per-lag decay rate (n-k)/n bites within
        # few lags; keeps the Monte Carlo trials cheap.
        return cls(num_servers=16, quorum_size=4, max_lag=10, trials=2_000)


def _mc_shards(trials: int, shard_trials: int = MC_SHARD_TRIALS) -> List[int]:
    """Split a trial budget into fixed-size shards (last one may be short)."""
    shards = []
    remaining = trials
    while remaining > 0:
        take = min(shard_trials, remaining)
        shards.append(take)
        remaining -= take
    return shards


def survival_mc_tasks(config: SurvivalConfig) -> List[RunTask]:
    """The quorum-level Monte Carlo as independently seeded shards."""
    return [
        RunTask(
            kind="survival_mc",
            params={
                "num_servers": config.num_servers,
                "quorum_size": config.quorum_size,
                "max_lag": config.max_lag,
                "trials": trials,
                "shard": shard,
            },
            seed=derive_seed(config.seed, "survival-mc", shard),
        )
        for shard, trials in enumerate(_mc_shards(config.trials))
    ]


def run_survival_mc_task(task: RunTask) -> List[int]:
    """One Monte Carlo shard; returns survival counts per lag 0..max_lag."""
    params = task.params
    system = ProbabilisticQuorumSystem(
        params["num_servers"], params["quorum_size"]
    )
    rng = RngRegistry(task.seed).stream("survival")
    max_lag = params["max_lag"]
    survivals = [0] * (max_lag + 1)
    for _ in range(params["trials"]):
        write_quorum = system.quorum(rng)
        overwritten: set = set()
        for ell in range(max_lag + 1):
            if write_quorum - overwritten:
                survivals[ell] += 1
            overwritten |= system.quorum(rng)
    return survivals


def quorum_level_survival(
    config: SurvivalConfig,
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
) -> Dict[int, float]:
    """Monte Carlo Pr[some replica of W's quorum survives ℓ later writes]."""
    shard_counts = run_many(survival_mc_tasks(config), jobs=jobs, cache=cache)
    totals = [sum(shard[ell] for shard in shard_counts)
              for ell in range(config.max_lag + 1)]
    return {ell: count / config.trials for ell, count in enumerate(totals)}


def survival_register_task(
    config: SurvivalConfig, num_readers: int = 4, num_writes: int = 200
) -> RunTask:
    """The register-level measurement as a single engine task."""
    return RunTask(
        kind="survival_register",
        params={
            "num_servers": config.num_servers,
            "quorum_size": config.quorum_size,
            "max_lag": config.max_lag,
            "num_readers": num_readers,
            "num_writes": num_writes,
        },
        seed=derive_seed(config.seed, "survival-register"),
    )


def run_survival_register_task(task: RunTask) -> List[List[int]]:
    """Worker: run the deployment; returns [lag, survivals, trials] rows."""
    params = task.params
    num_writes = params["num_writes"]
    num_readers = params["num_readers"]
    system = ProbabilisticQuorumSystem(
        params["num_servers"], params["quorum_size"]
    )
    deployment = RegisterDeployment(
        system,
        num_clients=1 + num_readers,
        delay_model=ExponentialDelay(1.0),
        monotone=False,
        seed=task.seed,
    )
    deployment.declare_register("X", writer=0, initial_value=0)

    def writer():
        for value in range(1, num_writes + 1):
            yield deployment.handle(0, "X").write(value)
            yield Sleep(0.5)

    def reader(client_id: int):
        for _ in range(num_writes):
            yield deployment.handle(client_id, "X").read()
            yield Sleep(0.5)

    spawn(deployment.scheduler, writer(), label="writer")
    for r in range(1, num_readers + 1):
        spawn(deployment.scheduler, reader(r), label=f"reader-{r}")
    deployment.run()
    counts = write_survival_counts(
        deployment.space.history("X"), max_ell=params["max_lag"]
    )
    return [[ell, s, t] for ell, (s, t) in sorted(counts.items())]


def register_level_survival(
    config: SurvivalConfig,
    num_readers: int = 4,
    num_writes: int = 200,
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
) -> Dict[int, Tuple[int, int]]:
    """Per-lag (survivals, trials) from a real register deployment run."""
    task = survival_register_task(config, num_readers, num_writes)
    (rows,) = run_many([task], jobs=jobs, cache=cache)
    return {ell: (s, t) for ell, s, t in rows}


def survival_table(
    config: SurvivalConfig,
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
) -> ResultTable:
    """The E-THM1 comparison table: measured vs bound per lag ℓ."""
    # One engine invocation for everything: the MC shards and the
    # register-level run execute side by side.
    mc_tasks = survival_mc_tasks(config)
    tasks = mc_tasks + [survival_register_task(config)]
    results = run_many(tasks, jobs=jobs, cache=cache)
    shard_counts = results[: len(mc_tasks)]
    monte_carlo = {
        ell: sum(shard[ell] for shard in shard_counts) / config.trials
        for ell in range(config.max_lag + 1)
    }
    register = {ell: (s, t) for ell, s, t in results[-1]}
    table = ResultTable(
        f"Theorem 1 — write survival probability "
        f"(n={config.num_servers}, k={config.quorum_size})",
        ["ell", "bound_k_frac", "quorum_mc", "register_measured"],
    )
    for ell in range(config.max_lag + 1):
        bound = theorem1_survival_bound(
            config.num_servers, config.quorum_size, ell
        )
        reg = register.get(ell)
        reg_value = reg[0] / reg[1] if reg and reg[1] else float("nan")
        table.add_row(ell, bound, monte_carlo[ell], reg_value)
    return table


def check_bound_holds(
    config: SurvivalConfig, slack: float = 0.02
) -> List[int]:
    """Lags at which the Monte Carlo estimate exceeds the bound + slack
    (should be empty — used by tests and the benchmark's assertion)."""
    measured = quorum_level_survival(config)
    violations = []
    for ell, probability in measured.items():
        bound = theorem1_survival_bound(
            config.num_servers, config.quorum_size, ell
        )
        if probability > bound + slack:
            violations.append(ell)
    return violations
