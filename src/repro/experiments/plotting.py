"""ASCII charts for experiment results.

The paper's Figure 2 is a scatter of series over quorum sizes; this
module renders such series directly in the terminal so the reproduction
is inspectable without any plotting dependency (the environment is
offline).  Used by ``examples/figure2_reproduction.py --plot`` and
available for any :class:`~repro.experiments.results.ResultTable`.
"""

import math
from typing import Dict, List, Optional, Sequence, Tuple

Series = Dict[str, List[Tuple[float, float]]]

_MARKERS = "ox+*#@%&"


def _finite(points: Sequence[Tuple[float, float]]) -> List[Tuple[float, float]]:
    return [
        (x, y)
        for x, y in points
        if y == y and y not in (math.inf, -math.inf)
    ]


def ascii_chart(
    series: Series,
    width: int = 64,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
    log_y: bool = False,
    title: Optional[str] = None,
) -> str:
    """Render named point series as a fixed-size ASCII scatter chart.

    Later series overwrite earlier ones on collisions; the legend maps
    markers to series names.  ``log_y`` plots log10(y) (all y must be
    positive then).
    """
    if width < 16 or height < 4:
        raise ValueError(f"chart too small: {width}x{height}")
    cleaned = {name: _finite(points) for name, points in series.items()}
    cleaned = {name: pts for name, pts in cleaned.items() if pts}
    if not cleaned:
        raise ValueError("no finite data points to plot")
    if len(cleaned) > len(_MARKERS):
        raise ValueError(f"at most {len(_MARKERS)} series supported")

    def y_transform(value: float) -> float:
        if log_y:
            if value <= 0:
                raise ValueError("log_y requires positive y values")
            return math.log10(value)
        return value

    all_points = [
        (x, y_transform(y)) for pts in cleaned.values() for x, y in pts
    ]
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = x_high - x_low or 1.0
    y_span = y_high - y_low or 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, (name, points) in zip(_MARKERS, sorted(cleaned.items())):
        for x, y in points:
            col = round((x - x_low) / x_span * (width - 1))
            row = round((y_transform(y) - y_low) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    y_top = f"{10 ** y_high if log_y else y_high:.4g}"
    y_bottom = f"{10 ** y_low if log_y else y_low:.4g}"
    label_width = max(len(y_top), len(y_bottom))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = y_top.rjust(label_width)
        elif i == height - 1:
            prefix = y_bottom.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = (
        f"{x_low:.4g}".ljust(width - 8) + f"{x_high:.4g}".rjust(8)
    )
    lines.append(" " * (label_width + 2) + x_axis)
    lines.append(
        " " * (label_width + 2)
        + f"{x_label}  ({'log ' if log_y else ''}{y_label} vertical)"
    )
    legend = "   ".join(
        f"{marker}={name}"
        for marker, name in zip(_MARKERS, sorted(cleaned))
    )
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)


def figure2_chart(config, points, width: int = 64, height: int = 20) -> str:
    """Render Figure 2 from :func:`repro.experiments.figure2.run_figure2`
    output, bound curve included, with a log-scale y axis like the paper."""
    from repro.apps.apsp import ApspACO
    from repro.apps.graphs import chain_graph
    from repro.experiments.figure2 import corollary7_curve

    pseudocycles = ApspACO(chain_graph(config.num_vertices)).contraction_depth()
    bound = corollary7_curve(config, pseudocycles)
    series: Series = {
        "cor7-bound": sorted(bound.items()),
    }
    for point in points:
        series.setdefault(point.variant, []).append(
            (point.quorum_size, point.mean_rounds)
        )
    for name in series:
        series[name] = sorted(series[name])
    return ascii_chart(
        series,
        width=width,
        height=height,
        x_label="quorum size k",
        y_label="rounds",
        log_y=True,
        title=(
            f"Figure 2 — rounds to convergence "
            f"(n={config.num_servers}, chain {config.num_vertices})"
        ),
    )
