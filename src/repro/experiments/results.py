"""Result tables: uniform formatting for every experiment's output."""

import os
from typing import Any, Dict, List, Optional, Sequence


def full_scale() -> bool:
    """Whether to run experiments at full paper scale (REPRO_FULL=1)."""
    return os.environ.get("REPRO_FULL", "0") == "1"


class ResultTable:
    """A small column-typed table with text and CSV rendering."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[Any]] = []

    def add_row(self, *values: Any, **named: Any) -> None:
        """Append a row, positionally or by column name."""
        if values and named:
            raise ValueError("pass either positional values or named, not both")
        if named:
            missing = set(self.columns) - set(named)
            if missing:
                raise ValueError(f"missing columns: {sorted(missing)}")
            row = [named[c] for c in self.columns]
        else:
            if len(values) != len(self.columns):
                raise ValueError(
                    f"expected {len(self.columns)} values, got {len(values)}"
                )
            row = list(values)
        self.rows.append(row)

    def add_dict_rows(self, rows: List[Dict[str, Any]]) -> None:
        """Append many rows given as dicts keyed by column name."""
        for row in rows:
            self.add_row(**{c: row[c] for c in self.columns})

    def column(self, name: str) -> List[Any]:
        """All values of one column."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    @staticmethod
    def _format_cell(value: Any) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            if value != value:  # NaN
                return "-"
            magnitude = abs(value)
            if magnitude != 0 and (magnitude >= 1e5 or magnitude < 1e-3):
                return f"{value:.3e}"
            return f"{value:.4g}"
        return str(value)

    def to_text(self) -> str:
        """Render as an aligned monospace table."""
        cells = [[self._format_cell(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells)) if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [self.title, ""]
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Render as CSV (no quoting; experiment values are plain)."""
        lines = [",".join(self.columns)]
        for row in self.rows:
            lines.append(",".join(self._format_cell(v) for v in row))
        return "\n".join(lines)

    def save(self, path: str, fmt: Optional[str] = None) -> None:
        """Write the table to ``path`` as text or CSV (by extension)."""
        if fmt is None:
            fmt = "csv" if path.endswith(".csv") else "text"
        content = self.to_csv() if fmt == "csv" else self.to_text()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content + "\n")

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"ResultTable({self.title!r}, {len(self.rows)} rows)"
