"""E-FIG2 / E-COR7: the paper's Figure 2 — quorum size vs rounds.

The paper's setup (Section 7): APSP on a directed 34-vertex unit-weight
chain (d = 33, so M = 6 pseudocycles), 34 replica servers, p = 34
processes (process i owns row i), quorum sizes 1..18 (from 18 up all
quorums of 34 servers intersect), four variants — {monotone, non-monotone}
× {synchronous, asynchronous} — seven runs per point, and the Corollary 7
upper bound M / (1 - ((n-k)/n)^k) for the monotone case.

Non-monotone runs at small quorum sizes may hit the round cap without
converging; like the paper's open squares, those means are *lower bounds*
and are flagged in the output.
"""

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.theory import corollary6_rounds_bound, q_lower_bound
from repro.apps.apsp import ApspACO
from repro.apps.graphs import chain_graph
from repro.exec.cache import RunCache
from repro.exec.engine import run_many
from repro.exec.task import RunTask
from repro.experiments.results import ResultTable
from repro.sim.rng import derive_seed

VARIANTS: Tuple[Tuple[str, bool, bool], ...] = (
    # (label, monotone, synchronous)
    ("monotone/sync", True, True),
    ("monotone/async", True, False),
    ("non-monotone/sync", False, True),
    ("non-monotone/async", False, False),
)


@dataclass
class Figure2Config:
    """Parameters of the Figure 2 sweep; defaults are the paper's."""

    num_vertices: int = 34
    num_servers: int = 34
    quorum_sizes: Tuple[int, ...] = tuple(range(1, 19))
    runs_per_point: int = 7
    max_rounds: int = 250
    base_seed: int = 2001
    mean_delay: float = 1.0
    variants: Tuple[Tuple[str, bool, bool], ...] = VARIANTS

    @classmethod
    def scaled_down(cls) -> "Figure2Config":
        """A minutes-scale version preserving the figure's shape."""
        return cls(
            num_vertices=12,
            num_servers=12,
            quorum_sizes=(1, 2, 3, 4, 6, 7),
            runs_per_point=3,
            max_rounds=120,
        )


@dataclass
class Figure2Point:
    """One (variant, quorum size) cell of the figure."""

    variant: str
    quorum_size: int
    rounds: List[int] = field(default_factory=list)
    converged: List[bool] = field(default_factory=list)

    @property
    def mean_rounds(self) -> float:
        return sum(self.rounds) / len(self.rounds) if self.rounds else math.nan

    @property
    def all_converged(self) -> bool:
        return all(self.converged)

    @property
    def is_lower_bound(self) -> bool:
        """True when some run hit the cap — the mean underestimates, like
        the open squares in the paper's figure."""
        return not self.all_converged


def corollary7_curve(config: Figure2Config, pseudocycles: int) -> Dict[int, float]:
    """The analytic bound M / (1 - ((n-k)/n)^k) per quorum size."""
    return {
        k: corollary6_rounds_bound(
            pseudocycles, q_lower_bound(config.num_servers, k)
        )
        for k in config.quorum_sizes
    }


def figure2_tasks(config: Figure2Config) -> List[RunTask]:
    """The sweep as a flat task list: one task per (variant, k, run).

    Seeds are hash-derived from the base seed and the cell's coordinates
    (:func:`repro.sim.rng.derive_seed`), replacing the old prime-multiple
    arithmetic, so every run's randomness is independent of execution
    order and of the other cells.
    """
    tasks: List[RunTask] = []
    for label, monotone, synchronous in config.variants:
        for k in config.quorum_sizes:
            for run in range(config.runs_per_point):
                tasks.append(
                    RunTask(
                        kind="alg1",
                        params={
                            "graph": {"kind": "chain", "n": config.num_vertices},
                            "quorum": {
                                "kind": "probabilistic",
                                "n": config.num_servers,
                                "k": k,
                            },
                            "delay": {
                                "kind": "constant" if synchronous else "exponential",
                                "mean": config.mean_delay,
                            },
                            "monotone": monotone,
                            "max_rounds": config.max_rounds,
                        },
                        seed=derive_seed(
                            config.base_seed, "figure2", label, k, run
                        ),
                    )
                )
    return tasks


def run_figure2(
    config: Figure2Config,
    progress=None,
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
) -> List[Figure2Point]:
    """Run the full sweep; returns one point per (variant, quorum size).

    ``jobs``/``cache`` are forwarded to :func:`repro.exec.engine.run_many`;
    results are bit-identical for every job count.
    """
    tasks = figure2_tasks(config)
    results = run_many(tasks, jobs=jobs, cache=cache)
    points: List[Figure2Point] = []
    index = 0
    for label, _, _ in config.variants:
        for k in config.quorum_sizes:
            point = Figure2Point(label, k)
            for run in range(config.runs_per_point):
                result = results[index]
                index += 1
                point.rounds.append(result["rounds"])
                point.converged.append(result["converged"])
                if progress is not None:
                    progress(label, k, run, result)
            points.append(point)
    return points


def figure2_table(
    config: Figure2Config, points: List[Figure2Point]
) -> ResultTable:
    """The figure as a table: one row per quorum size, one column per
    variant, plus the Corollary 7 bound — the series of Figure 2."""
    graph = chain_graph(config.num_vertices)
    pseudocycles = ApspACO(graph).contraction_depth()
    bound = corollary7_curve(config, pseudocycles)
    by_cell = {(p.variant, p.quorum_size): p for p in points}
    labels = [label for label, _, _ in config.variants]
    table = ResultTable(
        f"Figure 2 — quorum size vs rounds (n={config.num_servers}, "
        f"chain of {config.num_vertices}, M={pseudocycles}, "
        f"{config.runs_per_point} runs/point; '>=' marks round-cap lower bounds)",
        ["k", "cor7_bound"] + labels,
    )
    for k in config.quorum_sizes:
        row: List[object] = [k, bound[k]]
        for label in labels:
            point = by_cell.get((label, k))
            if point is None or not point.rounds:
                row.append("-")
            else:
                mean = point.mean_rounds
                row.append(f">={mean:.2f}" if point.is_lower_bound else f"{mean:.2f}")
        table.add_row(*row)
    return table
