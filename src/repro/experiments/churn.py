"""E-EXT-CHURN: convergence under continuous replica churn.

Beyond E-FAULT's one-shot crash batch, real replicated systems see
*churn*: servers leave and rejoin continuously.  The probabilistic quorum
register needs no membership protocol to ride this out — fresh random
quorums plus client retry (exponential backoff with jitter) route around
whoever is currently down, and a recovering replica is repaired
implicitly the next time a write quorum includes it (its stale timestamp
loses to newer ones, so it never poisons reads).

The experiment runs the paper's APSP workload while a scripted
:class:`~repro.sim.failures.FailureSchedule` cycles a fraction of the
replicas down and up, sweeping the churn rate, optionally with
probabilistic message loss layered on top; the table surfaces the
degradation counters (retries, timeouts, ops completed under failure)
alongside the convergence cost.
"""

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.exec.cache import RunCache
from repro.exec.engine import run_many
from repro.exec.task import RunTask, execute_task
from repro.experiments.results import ResultTable
from repro.sim.rng import derive_seed


@dataclass
class ChurnConfig:
    """Parameters for the churn experiment."""

    num_vertices: int = 10
    num_servers: int = 16
    quorum_size: int = 4
    down_fraction: float = 0.25
    churn_periods: Tuple[float, ...] = (0.0, 40.0, 20.0, 10.0)
    outage_duration: float = 5.0
    retry_interval: float = 4.0
    # Per-operation deadline; None disables rejection (legacy behaviour).
    operation_deadline: Optional[float] = 200.0
    loss_rate: float = 0.0
    max_rounds: int = 400
    max_sim_time: float = 3000.0
    runs: int = 2
    seed: int = 81

    @classmethod
    def scaled_down(cls) -> "ChurnConfig":
        return cls(num_vertices=8, churn_periods=(0.0, 20.0), runs=1)


def churn_task(config: ChurnConfig, period: float, run: int = 0) -> RunTask:
    """One APSP run with a churn cycle every ``period`` time units.

    ``period`` 0 disables churn.  Each cycle crashes a rotating window of
    ``down_fraction``·n servers for ``outage_duration``, then recovers
    them (the engine worker expands the schedule).
    """
    batch = max(1, int(config.down_fraction * config.num_servers))
    retry: Dict[str, Any] = {"interval": config.retry_interval}
    if config.operation_deadline is not None:
        retry["deadline"] = config.operation_deadline
    params: Dict[str, Any] = {
        "graph": {"kind": "chain", "n": config.num_vertices},
        "quorum": {
            "kind": "probabilistic",
            "n": config.num_servers,
            "k": config.quorum_size,
        },
        "delay": {"kind": "exponential", "mean": 1.0},
        "monotone": True,
        "max_rounds": config.max_rounds,
        "retry": retry,
        "max_sim_time": config.max_sim_time,
        "faults": {
            "kind": "churn",
            "period": period,
            "batch": batch,
            "outage": config.outage_duration,
        },
    }
    if config.loss_rate > 0.0:
        params["loss_rate"] = config.loss_rate
    return RunTask(
        kind="alg1",
        params=params,
        seed=derive_seed(config.seed, "churn", period, run),
    )


def run_under_churn(config: ChurnConfig, period: float, run: int = 0) -> dict:
    """Execute one churn run in-process and return its outcome dict."""
    result = execute_task(churn_task(config, period, run))
    return {
        "churn_period": period,
        "converged": result["converged"],
        "rounds": result["rounds"],
        "sim_time": result["sim_time"],
        "messages": result["messages"],
        "retries": result["retries"],
        "timeouts": result["timeouts"],
        "ops_under_failure": result["ops_under_failure"],
        "hung_ops": result["hung_ops"],
    }


def churn_table(
    config: ChurnConfig,
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
) -> ResultTable:
    """Rounds, wall-clock and degradation counters vs churn rate."""
    loss = f", loss={config.loss_rate:.0%}" if config.loss_rate > 0.0 else ""
    table = ResultTable(
        f"Replica churn — APSP chain {config.num_vertices}, "
        f"n={config.num_servers}, k={config.quorum_size}, "
        f"{int(config.down_fraction * 100)}% down for "
        f"{config.outage_duration} per cycle{loss}",
        [
            "churn_period",
            "all_converged",
            "mean_rounds",
            "mean_sim_time",
            "mean_retries",
            "mean_timeouts",
            "mean_ops_under_failure",
            "hung_ops",
        ],
    )
    tasks = [
        churn_task(config, period, run)
        for period in config.churn_periods
        for run in range(config.runs)
    ]
    results = run_many(tasks, jobs=jobs, cache=cache)
    for index, period in enumerate(config.churn_periods):
        group = results[index * config.runs : (index + 1) * config.runs]
        table.add_row(
            period if period > 0 else float("inf"),
            all(r["converged"] for r in group),
            sum(r["rounds"] for r in group) / len(group),
            sum(r["sim_time"] for r in group) / len(group),
            sum(r["retries"] for r in group) / len(group),
            sum(r["timeouts"] for r in group) / len(group),
            sum(r["ops_under_failure"] for r in group) / len(group),
            sum(r["hung_ops"] for r in group),
        )
    return table
