"""E-EXT-CHURN: convergence under continuous replica churn.

Beyond E-FAULT's one-shot crash batch, real replicated systems see
*churn*: servers leave and rejoin continuously.  The probabilistic quorum
register needs no membership protocol to ride this out — fresh random
quorums plus client retry route around whoever is currently down, and a
recovering replica is repaired implicitly the next time a write quorum
includes it (its stale timestamp loses to newer ones, so it never
poisons reads).

The experiment runs the paper's APSP workload while a churn process
cycles a fraction of the replicas down and up, sweeping the churn rate.
"""

from dataclasses import dataclass
from typing import List, Tuple

from repro.apps.apsp import ApspACO
from repro.apps.graphs import chain_graph
from repro.experiments.results import ResultTable
from repro.iterative.runner import Alg1Runner
from repro.quorum.probabilistic import ProbabilisticQuorumSystem
from repro.sim.delays import ExponentialDelay


@dataclass
class ChurnConfig:
    """Parameters for the churn experiment."""

    num_vertices: int = 10
    num_servers: int = 16
    quorum_size: int = 4
    down_fraction: float = 0.25
    churn_periods: Tuple[float, ...] = (0.0, 40.0, 20.0, 10.0)
    outage_duration: float = 5.0
    retry_interval: float = 4.0
    max_rounds: int = 400
    max_sim_time: float = 3000.0
    runs: int = 2
    seed: int = 81

    @classmethod
    def scaled_down(cls) -> "ChurnConfig":
        return cls(num_vertices=8, churn_periods=(0.0, 20.0), runs=1)


def run_under_churn(
    config: ChurnConfig, period: float, seed_offset: int = 0
) -> dict:
    """One APSP run with a churn cycle every ``period`` time units.

    ``period`` 0 disables churn.  Each cycle crashes a rotating window of
    ``down_fraction``·n servers for ``outage_duration``, then recovers
    them.
    """
    aco = ApspACO(chain_graph(config.num_vertices))
    runner = Alg1Runner(
        aco,
        ProbabilisticQuorumSystem(config.num_servers, config.quorum_size),
        monotone=True,
        delay_model=ExponentialDelay(1.0),
        seed=config.seed + seed_offset,
        max_rounds=config.max_rounds,
        retry_interval=config.retry_interval,
        max_sim_time=config.max_sim_time,
    )
    batch = max(1, int(config.down_fraction * config.num_servers))
    scheduler = runner.deployment.scheduler
    state = {"cycle": 0}

    def crash_cycle() -> None:
        start = (state["cycle"] * batch) % config.num_servers
        window = [
            (start + offset) % config.num_servers for offset in range(batch)
        ]
        for index in window:
            runner.deployment.crash_server(index)
        scheduler.schedule(config.outage_duration, recover_cycle, window)
        state["cycle"] += 1
        scheduler.schedule(period, crash_cycle)

    def recover_cycle(window: List[int]) -> None:
        for index in window:
            runner.deployment.recover_server(index)

    if period > 0:
        scheduler.schedule(period, crash_cycle)
    result = runner.run(check_spec=False)
    return {
        "churn_period": period,
        "converged": result.converged,
        "rounds": result.rounds,
        "sim_time": result.sim_time,
        "messages": result.messages,
    }


def churn_table(config: ChurnConfig) -> ResultTable:
    """Rounds and wall-clock (simulated) vs churn rate."""
    table = ResultTable(
        f"Replica churn — APSP chain {config.num_vertices}, "
        f"n={config.num_servers}, k={config.quorum_size}, "
        f"{int(config.down_fraction * 100)}% down for "
        f"{config.outage_duration} per cycle",
        ["churn_period", "all_converged", "mean_rounds", "mean_sim_time"],
    )
    for period in config.churn_periods:
        rounds, times, converged = [], [], True
        for run in range(config.runs):
            outcome = run_under_churn(config, period, seed_offset=131 * run)
            converged = converged and outcome["converged"]
            rounds.append(outcome["rounds"])
            times.append(outcome["sim_time"])
        table.add_row(
            period if period > 0 else float("inf"),
            converged,
            sum(rounds) / len(rounds),
            sum(times) / len(times),
        )
    return table
