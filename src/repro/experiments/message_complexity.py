"""E-MSG: the message-complexity comparison of Section 6.4.

Two regimes, each compared analytically (Eqns 1-3) *and* by measurement
(running Alg. 1 and counting actual messages):

* **high availability** — probabilistic quorums at k = ⌈√n⌉ vs the
  majority system at k = ⌊n/2⌋+1.  The paper: Θ(mp√n) vs Θ(mpn), so the
  ratio grows as Θ(√n) in the probabilistic system's favour.
* **optimal load** — probabilistic at k = ⌈√n⌉ vs a strict grid system of
  the same quorum size.  The paper: same asymptotic message complexity
  (within the constant c_n ∈ (1,2)), but availability Θ(n) vs O(√n).
"""

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.analysis.messages import (
    high_availability_comparison,
    optimal_load_comparison,
)
from repro.apps.apsp import ApspACO
from repro.apps.graphs import chain_graph
from repro.exec.cache import RunCache
from repro.exec.engine import run_many
from repro.exec.task import RunTask
from repro.experiments.results import ResultTable
from repro.quorum.grid import GridQuorumSystem
from repro.quorum.majority import MajorityQuorumSystem
from repro.quorum.probabilistic import ProbabilisticQuorumSystem
from repro.sim.rng import derive_seed


@dataclass
class MessageComplexityConfig:
    """Parameters for the message-complexity measurement."""

    num_vertices: int = 16       # m = p = number of vertices
    num_servers: int = 16        # n replicas (grid-friendly square)
    max_rounds: int = 250
    seed: int = 5

    @classmethod
    def scaled_down(cls) -> "MessageComplexityConfig":
        return cls(num_vertices=9, num_servers=9, max_rounds=150)


def _measure_task(
    config: MessageComplexityConfig,
    label: str,
    quorum_spec: Dict[str, Any],
    monotone: bool,
) -> RunTask:
    return RunTask(
        kind="alg1",
        params={
            "graph": {"kind": "chain", "n": config.num_vertices},
            "quorum": quorum_spec,
            "delay": {"kind": "constant", "mean": 1.0},
            "monotone": monotone,
            "max_rounds": config.max_rounds,
        },
        seed=derive_seed(config.seed, "messages", label),
    )


def analytic_tables(n_values: List[int], m: int, p: int) -> List[ResultTable]:
    """The two Section 6.4 regime tables from Eqns 1-3, over an n sweep."""
    availability = ResultTable(
        f"Section 6.4 (analytic) — high-availability regime (m={m}, p={p}): "
        "probabilistic k=⌈√n⌉ vs strict majority",
        [
            "n",
            "k_probabilistic",
            "k_majority",
            "M_prob",
            "M_str_majority",
            "strict_over_prob",
        ],
    )
    for n in n_values:
        row = high_availability_comparison(n, m, p)
        availability.add_row(
            row["n"],
            row["k_probabilistic"],
            row["k_majority"],
            row["M_prob"],
            row["M_str_majority"],
            row["strict_over_prob"],
        )
    load = ResultTable(
        f"Section 6.4 (analytic) — optimal-load regime (m={m}, p={p}): "
        "probabilistic vs strict grid at k=⌈√n⌉",
        [
            "n",
            "k",
            "M_prob",
            "M_str_optimal_load",
            "prob_over_strict",
            "availability_probabilistic",
            "availability_strict_grid",
        ],
    )
    for n in n_values:
        row = optimal_load_comparison(n, m, p)
        load.add_row(
            row["n"],
            row["k"],
            row["M_prob"],
            row["M_str_optimal_load"],
            row["prob_over_strict"],
            row["availability_probabilistic"],
            row["availability_strict_grid"],
        )
    return [availability, load]


def measured_table(
    config: MessageComplexityConfig,
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
) -> ResultTable:
    """Measured Alg. 1 message counts for the three implementations.

    Uses the monotone client for the probabilistic system (the paper's
    recommended configuration) and the plain client for strict systems
    (monotonicity is automatic when all quorums intersect).
    """
    n = config.num_servers
    k_prob = max(1, math.ceil(math.sqrt(n)))
    systems = [
        (
            "probabilistic k=sqrt(n)",
            ProbabilisticQuorumSystem(n, k_prob),
            {"kind": "probabilistic", "n": n, "k": k_prob},
            True,
        ),
        (
            "strict majority",
            MajorityQuorumSystem(n),
            {"kind": "majority", "n": n},
            False,
        ),
        (
            "strict grid",
            GridQuorumSystem.square(n),
            {"kind": "grid_square", "n": n},
            False,
        ),
    ]
    table = ResultTable(
        f"Section 6.4 (measured) — APSP chain m=p={config.num_vertices}, "
        f"n={n} servers",
        [
            "system",
            "quorum_size",
            "availability",
            "converged",
            "rounds",
            "messages",
            "messages_per_round",
            "messages_per_pseudocycle",
        ],
    )
    tasks = [
        _measure_task(config, label, spec, monotone)
        for label, _, spec, monotone in systems
    ]
    results = run_many(tasks, jobs=jobs, cache=cache)
    pseudocycles = ApspACO(chain_graph(config.num_vertices)).contraction_depth() or 1
    for (label, system, _, _), result in zip(systems, results):
        rounds = result["rounds"]
        table.add_row(
            label,
            system.quorum_size,
            system.availability(),
            result["converged"],
            rounds,
            result["messages"],
            result["messages"] / rounds if rounds else 0.0,
            result["messages"] / pseudocycles,
        )
    return table
