"""Reusable register workloads for experiments.

The statistical experiments (survival, freshness, latency, spec audits)
all drive a deployment with "a writer and some readers" shaped loops.
This module centralises those shapes and adds two more realistic arrival
processes:

* periodic — fixed inter-operation gaps (the shape used by the paper's
  synchronous analysis);
* poisson — exponential inter-operation gaps (memoryless clients);
* bursty — alternating hot bursts and idle gaps, the stress shape for
  staleness (many writes land between a reader's visits).

Each generator function returns a simulation coroutine ready for
:func:`repro.sim.coroutines.spawn`.
"""

from typing import Any, Callable, Iterator, Optional

import numpy as np

from repro.registers.deployment import RegisterDeployment
from repro.sim.coroutines import Sleep


GapSampler = Callable[[], float]


def periodic_gaps(gap: float) -> GapSampler:
    """Constant inter-operation gap."""
    if gap < 0:
        raise ValueError(f"gap must be non-negative, got {gap}")
    return lambda: gap


def poisson_gaps(mean_gap: float, rng: np.random.Generator) -> GapSampler:
    """Exponential inter-operation gaps with the given mean."""
    if mean_gap <= 0:
        raise ValueError(f"mean gap must be positive, got {mean_gap}")
    return lambda: float(rng.exponential(mean_gap))


def bursty_gaps(
    burst_length: int,
    burst_gap: float,
    idle_gap: float,
) -> GapSampler:
    """``burst_length`` ops spaced ``burst_gap`` apart, then one
    ``idle_gap`` pause, repeating."""
    if burst_length < 1:
        raise ValueError(f"burst length must be >= 1, got {burst_length}")
    if burst_gap < 0 or idle_gap < 0:
        raise ValueError("gaps must be non-negative")
    state = {"position": 0}

    def sample() -> float:
        state["position"] += 1
        if state["position"] % burst_length == 0:
            return idle_gap
        return burst_gap

    return sample


def writer_loop(
    deployment: RegisterDeployment,
    client_id: int,
    register: str,
    num_writes: int,
    gaps: GapSampler,
    values: Optional[Iterator[Any]] = None,
):
    """A coroutine writing ``num_writes`` values with sampled gaps."""
    if values is None:
        values = iter(range(1, num_writes + 1))

    def run():
        for _ in range(num_writes):
            yield deployment.handle(client_id, register).write(next(values))
            yield Sleep(gaps())

    return run()


def reader_loop(
    deployment: RegisterDeployment,
    client_id: int,
    register: str,
    num_reads: int,
    gaps: GapSampler,
):
    """A coroutine performing ``num_reads`` reads with sampled gaps;
    resolves with the list of values read."""

    def run():
        seen = []
        for _ in range(num_reads):
            seen.append((yield deployment.handle(client_id, register).read()))
            yield Sleep(gaps())
        return seen

    return run()


def single_register_workload(
    deployment: RegisterDeployment,
    register: str = "X",
    num_writes: int = 50,
    reads_per_reader: int = 100,
    writer_gaps: Optional[GapSampler] = None,
    reader_gaps: Optional[GapSampler] = None,
):
    """Spawn the standard one-writer many-readers workload.

    Client 0 writes; every other client reads.  Returns the futures of
    the reader coroutines (each resolving with the values it saw).
    """
    from repro.sim.coroutines import spawn

    if register not in deployment.space:
        raise KeyError(f"register {register!r} not declared")
    writer_gaps = writer_gaps or periodic_gaps(1.0)
    reader_gaps = reader_gaps or periodic_gaps(0.8)
    spawn(
        deployment.scheduler,
        writer_loop(deployment, 0, register, num_writes, writer_gaps),
        label="workload-writer",
    )
    futures = []
    for client_id in range(1, deployment.num_clients):
        futures.append(
            spawn(
                deployment.scheduler,
                reader_loop(
                    deployment, client_id, register, reads_per_reader,
                    reader_gaps,
                ),
                label=f"workload-reader-{client_id}",
            )
        )
    return futures
