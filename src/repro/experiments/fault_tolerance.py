"""E-FAULT: iterative convergence under replica-server crashes.

Section 4's availability analysis is static; this experiment exercises it
dynamically: an APSP computation is running when a batch of replica
servers crashes.  Clients retry stalled operations with fresh random
quorums, so the probabilistic system keeps converging as long as at
least k replicas survive — whereas a strict grid system stalls forever
once every row is hit (its quorums are fixed).
"""

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.exec.cache import RunCache
from repro.exec.engine import run_many
from repro.exec.task import RunTask, execute_task
from repro.experiments.results import ResultTable
from repro.quorum.base import QuorumSystem
from repro.quorum.grid import GridQuorumSystem
from repro.quorum.probabilistic import ProbabilisticQuorumSystem
from repro.sim.rng import derive_seed


@dataclass
class FaultToleranceConfig:
    """Parameters for the crash experiment."""

    num_vertices: int = 12
    num_servers: int = 16
    quorum_size: int = 4
    crash_counts: tuple = (0, 2, 4, 8)
    crash_time: float = 30.0
    retry_interval: float = 6.0
    max_rounds: int = 400
    # Hard stop: a stalled grid run never closes rounds, so the cap must
    # be on simulated time.  Healthy runs finish well under t = 300.
    max_sim_time: float = 1200.0
    seed: int = 51

    @classmethod
    def scaled_down(cls) -> "FaultToleranceConfig":
        return cls(num_vertices=8, crash_counts=(0, 2, 6), max_rounds=250)


def _quorum_spec(system: QuorumSystem) -> Dict[str, Any]:
    """A data spec for the quorum systems this experiment compares."""
    if isinstance(system, ProbabilisticQuorumSystem):
        return {"kind": "probabilistic", "n": system.n, "k": system.quorum_size}
    if isinstance(system, GridQuorumSystem):
        return {"kind": "grid", "rows": system.rows, "cols": system.cols}
    raise TypeError(f"no spec mapping for {type(system).__name__}")


def crash_task(
    config: FaultToleranceConfig,
    system: QuorumSystem,
    crashes: int,
    label: str = "prob",
) -> RunTask:
    """One run: crash ``crashes`` servers at ``crash_time``.

    Servers are crashed one-per-grid-row first (the strict grid's worst
    case) so the comparison is fair against its availability bound.
    """
    side = max(1, int(config.num_servers ** 0.5))
    return RunTask(
        kind="alg1",
        params={
            "graph": {"kind": "chain", "n": config.num_vertices},
            "quorum": _quorum_spec(system),
            "delay": {"kind": "exponential", "mean": 1.0},
            "monotone": True,
            "max_rounds": config.max_rounds,
            "retry_interval": config.retry_interval,
            "max_sim_time": config.max_sim_time,
            "faults": {
                "kind": "crash_batch",
                "time": config.crash_time,
                "count": crashes,
                "side": side,
            },
        },
        seed=derive_seed(config.seed, "fault", label, crashes),
    )


def run_with_crashes(
    config: FaultToleranceConfig,
    system: QuorumSystem,
    crashes: int,
    label: str = "prob",
) -> dict:
    """Execute one crash run in-process and return its outcome dict."""
    result = execute_task(crash_task(config, system, crashes, label))
    return {
        "crashes": crashes,
        "converged": result["converged"],
        "rounds": result["rounds"],
        "messages": result["messages"],
    }


def fault_tolerance_table(
    config: FaultToleranceConfig,
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
) -> ResultTable:
    """Probabilistic (with retry) vs strict grid under growing crash sets."""
    side = max(1, int(config.num_servers ** 0.5))
    table = ResultTable(
        f"Crashes mid-run — APSP chain {config.num_vertices}, "
        f"n={config.num_servers}, crash at t={config.crash_time} "
        f"(probabilistic k={config.quorum_size} with retry vs grid "
        f"{side}x{side})",
        [
            "crashes",
            "prob_converged",
            "prob_rounds",
            "grid_converged",
            "grid_rounds",
        ],
    )
    tasks = []
    for crashes in config.crash_counts:
        tasks.append(
            crash_task(
                config,
                ProbabilisticQuorumSystem(
                    config.num_servers, config.quorum_size
                ),
                crashes,
                label="prob",
            )
        )
        tasks.append(
            crash_task(
                config, GridQuorumSystem(side, side), crashes, label="grid"
            )
        )
    results = run_many(tasks, jobs=jobs, cache=cache)
    for index, crashes in enumerate(config.crash_counts):
        prob, grid = results[2 * index], results[2 * index + 1]
        table.add_row(
            crashes,
            prob["converged"],
            prob["rounds"],
            grid["converged"],
            grid["rounds"],
        )
    return table
