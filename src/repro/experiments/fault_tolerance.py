"""E-FAULT: iterative convergence under replica-server crashes.

Section 4's availability analysis is static; this experiment exercises it
dynamically: an APSP computation is running when a batch of replica
servers crashes.  Clients retry stalled operations with fresh random
quorums, so the probabilistic system keeps converging as long as at
least k replicas survive — whereas a strict grid system stalls forever
once every row is hit (its quorums are fixed).
"""

from dataclasses import dataclass
from typing import List, Optional

from repro.apps.apsp import ApspACO
from repro.apps.graphs import chain_graph
from repro.experiments.results import ResultTable
from repro.iterative.runner import Alg1Runner
from repro.quorum.base import QuorumSystem
from repro.quorum.grid import GridQuorumSystem
from repro.quorum.probabilistic import ProbabilisticQuorumSystem
from repro.sim.delays import ExponentialDelay


@dataclass
class FaultToleranceConfig:
    """Parameters for the crash experiment."""

    num_vertices: int = 12
    num_servers: int = 16
    quorum_size: int = 4
    crash_counts: tuple = (0, 2, 4, 8)
    crash_time: float = 30.0
    retry_interval: float = 6.0
    max_rounds: int = 400
    # Hard stop: a stalled grid run never closes rounds, so the cap must
    # be on simulated time.  Healthy runs finish well under t = 300.
    max_sim_time: float = 1200.0
    seed: int = 51

    @classmethod
    def scaled_down(cls) -> "FaultToleranceConfig":
        return cls(num_vertices=8, crash_counts=(0, 2, 6), max_rounds=250)


def run_with_crashes(
    config: FaultToleranceConfig,
    system: QuorumSystem,
    crashes: int,
    seed_offset: int = 0,
) -> dict:
    """One run: crash ``crashes`` servers at ``crash_time``; report outcome.

    Servers are crashed one-per-grid-row first (the strict grid's worst
    case) so the comparison is fair against its availability bound.
    """
    aco = ApspACO(chain_graph(config.num_vertices))
    runner = Alg1Runner(
        aco,
        system,
        monotone=True,
        delay_model=ExponentialDelay(1.0),
        seed=config.seed + seed_offset,
        max_rounds=config.max_rounds,
        retry_interval=config.retry_interval,
        max_sim_time=config.max_sim_time,
    )
    side = max(1, int(config.num_servers ** 0.5))

    def crash_batch() -> None:
        for index in range(crashes):
            server = (index % side) * side + index // side
            runner.deployment.crash_server(server % config.num_servers)

    runner.deployment.scheduler.schedule(config.crash_time, crash_batch)
    result = runner.run(check_spec=False)
    return {
        "crashes": crashes,
        "converged": result.converged,
        "rounds": result.rounds,
        "messages": result.messages,
    }


def fault_tolerance_table(config: FaultToleranceConfig) -> ResultTable:
    """Probabilistic (with retry) vs strict grid under growing crash sets."""
    side = max(1, int(config.num_servers ** 0.5))
    table = ResultTable(
        f"Crashes mid-run — APSP chain {config.num_vertices}, "
        f"n={config.num_servers}, crash at t={config.crash_time} "
        f"(probabilistic k={config.quorum_size} with retry vs grid "
        f"{side}x{side})",
        [
            "crashes",
            "prob_converged",
            "prob_rounds",
            "grid_converged",
            "grid_rounds",
        ],
    )
    for crashes in config.crash_counts:
        prob = run_with_crashes(
            config,
            ProbabilisticQuorumSystem(config.num_servers, config.quorum_size),
            crashes,
        )
        grid = run_with_crashes(
            config, GridQuorumSystem(side, side), crashes, seed_offset=1
        )
        table.add_row(
            crashes,
            prob["converged"],
            prob["rounds"],
            grid["converged"],
            grid["rounds"],
        )
    return table
