"""E-FAULT: iterative convergence under replica-server crashes.

Section 4's availability analysis is static; this experiment exercises it
dynamically: an APSP computation is running when a batch of replica
servers crashes.  Clients retry stalled operations with fresh random
quorums (exponential backoff + jitter), so the probabilistic system keeps
converging as long as at least k replicas survive — whereas a strict grid
system stalls forever once every row is hit (its quorums are fixed).

Beyond the convergence comparison, :func:`degradation_table` drives a
*scripted* crash/recover timeline (crash at ``crash_time``, recover at
``recover_time``) with per-operation deadlines and optional message loss,
and reports the degradation counters — retries, timeouts, drops,
operations completed under failure — that the fault-tolerance layer
surfaces through :class:`~repro.iterative.runner.Alg1Result`.  With
deadlines armed, every invoked operation either resolves or rejects with
``OperationTimeout``: the ``hung_ops`` column asserts zero hung futures
at the end of each run.
"""

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.exec.cache import RunCache
from repro.exec.engine import run_many
from repro.exec.task import RunTask, execute_task
from repro.experiments.results import ResultTable
from repro.quorum.base import QuorumSystem
from repro.quorum.grid import GridQuorumSystem
from repro.quorum.probabilistic import ProbabilisticQuorumSystem
from repro.sim.rng import derive_seed


@dataclass
class FaultToleranceConfig:
    """Parameters for the crash experiment."""

    num_vertices: int = 12
    num_servers: int = 16
    quorum_size: int = 4
    crash_counts: tuple = (0, 2, 4, 8)
    crash_time: float = 30.0
    # Crashed servers come back at this time in the scripted
    # degradation runs (None = they stay down).
    recover_time: Optional[float] = 250.0
    # Retry policy: start fast, back off, but cap the interval — with a
    # heavy crash set a client may need ~C(n,k)/C(alive,k) resamples to
    # hit an all-alive quorum, and uncapped doubling would push the
    # tail of that geometric past the sim-time budget.
    retry_interval: float = 2.0
    retry_backoff: float = 1.5
    retry_max_interval: float = 12.0
    # Per-operation deadline for the degradation runs: long enough to
    # ride out several backed-off retries, short enough that a dead
    # system rejects operations instead of hanging them.
    operation_deadline: float = 120.0
    loss_rate: float = 0.0
    max_rounds: int = 400
    # Hard stop: a stalled grid run never closes rounds, so the cap must
    # be on simulated time.  Healthy runs finish well under t = 300.
    max_sim_time: float = 1200.0
    seed: int = 51

    @classmethod
    def scaled_down(cls) -> "FaultToleranceConfig":
        return cls(num_vertices=8, crash_counts=(0, 2, 6), max_rounds=250)


def _quorum_spec(system: QuorumSystem) -> Dict[str, Any]:
    """A data spec for the quorum systems this experiment compares."""
    if isinstance(system, ProbabilisticQuorumSystem):
        return {"kind": "probabilistic", "n": system.n, "k": system.quorum_size}
    if isinstance(system, GridQuorumSystem):
        return {"kind": "grid", "rows": system.rows, "cols": system.cols}
    raise TypeError(f"no spec mapping for {type(system).__name__}")


def _retry_spec(
    config: FaultToleranceConfig, deadline: Optional[float] = None
) -> Dict[str, Any]:
    spec: Dict[str, Any] = {
        "interval": config.retry_interval,
        "backoff": config.retry_backoff,
        "max_interval": config.retry_max_interval,
    }
    if deadline is not None:
        spec["deadline"] = deadline
    return spec


def crash_task(
    config: FaultToleranceConfig,
    system: QuorumSystem,
    crashes: int,
    label: str = "prob",
) -> RunTask:
    """One run: crash ``crashes`` servers at ``crash_time``.

    Servers are crashed one-per-grid-row first (the strict grid's worst
    case) so the comparison is fair against its availability bound.
    """
    side = max(1, int(config.num_servers ** 0.5))
    return RunTask(
        kind="alg1",
        params={
            "graph": {"kind": "chain", "n": config.num_vertices},
            "quorum": _quorum_spec(system),
            "delay": {"kind": "exponential", "mean": 1.0},
            "monotone": True,
            "max_rounds": config.max_rounds,
            "retry": _retry_spec(config),
            "max_sim_time": config.max_sim_time,
            "faults": {
                "kind": "crash_batch",
                "time": config.crash_time,
                "count": crashes,
                "side": side,
            },
        },
        seed=derive_seed(config.seed, "fault", label, crashes),
    )


def degradation_task(
    config: FaultToleranceConfig, crashes: int, label: str = "degrade"
) -> RunTask:
    """One scripted crash→recover run with deadlines (and optional loss).

    The timeline crashes ``crashes`` servers at ``crash_time`` and — when
    ``recover_time`` is set — recovers the same batch later, exercising
    the full fault-tolerance layer: backoff retries while degraded,
    deadline rejections when every quorum choice is dead, implicit repair
    after recovery.
    """
    side = max(1, int(config.num_servers ** 0.5))
    servers = [
        ((index % side) * side + index // side) % config.num_servers
        for index in range(crashes)
    ]
    events = [{"time": config.crash_time, "action": "crash", "nodes": servers}]
    if config.recover_time is not None:
        events.append(
            {"time": config.recover_time, "action": "recover",
             "nodes": servers}
        )
    params: Dict[str, Any] = {
        "graph": {"kind": "chain", "n": config.num_vertices},
        "quorum": {
            "kind": "probabilistic",
            "n": config.num_servers,
            "k": config.quorum_size,
        },
        "delay": {"kind": "exponential", "mean": 1.0},
        "monotone": True,
        "max_rounds": config.max_rounds,
        "retry": _retry_spec(config, deadline=config.operation_deadline),
        "max_sim_time": config.max_sim_time,
        "faults": {"kind": "schedule", "events": events},
    }
    if config.loss_rate > 0.0:
        params["loss_rate"] = config.loss_rate
    return RunTask(
        kind="alg1",
        params=params,
        seed=derive_seed(config.seed, "degradation", label, crashes),
    )


def run_with_crashes(
    config: FaultToleranceConfig,
    system: QuorumSystem,
    crashes: int,
    label: str = "prob",
) -> dict:
    """Execute one crash run in-process and return its outcome dict."""
    result = execute_task(crash_task(config, system, crashes, label))
    return {
        "crashes": crashes,
        "converged": result["converged"],
        "rounds": result["rounds"],
        "messages": result["messages"],
        "retries": result["retries"],
        "timeouts": result["timeouts"],
    }


def fault_tolerance_table(
    config: FaultToleranceConfig,
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
) -> ResultTable:
    """Probabilistic (with retry) vs strict grid under growing crash sets."""
    side = max(1, int(config.num_servers ** 0.5))
    table = ResultTable(
        f"Crashes mid-run — APSP chain {config.num_vertices}, "
        f"n={config.num_servers}, crash at t={config.crash_time} "
        f"(probabilistic k={config.quorum_size} with retry vs grid "
        f"{side}x{side})",
        [
            "crashes",
            "prob_converged",
            "prob_rounds",
            "prob_retries",
            "grid_converged",
            "grid_rounds",
        ],
    )
    tasks = []
    for crashes in config.crash_counts:
        tasks.append(
            crash_task(
                config,
                ProbabilisticQuorumSystem(
                    config.num_servers, config.quorum_size
                ),
                crashes,
                label="prob",
            )
        )
        tasks.append(
            crash_task(
                config, GridQuorumSystem(side, side), crashes, label="grid"
            )
        )
    results = run_many(tasks, jobs=jobs, cache=cache)
    for index, crashes in enumerate(config.crash_counts):
        prob, grid = results[2 * index], results[2 * index + 1]
        table.add_row(
            crashes,
            prob["converged"],
            prob["rounds"],
            prob["retries"],
            grid["converged"],
            grid["rounds"],
        )
    return table


def degradation_table(
    config: FaultToleranceConfig,
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
) -> ResultTable:
    """Degradation metrics under a scripted crash→recover timeline."""
    recover = (
        f"recover at t={config.recover_time}"
        if config.recover_time is not None
        else "no recovery"
    )
    loss = (
        f", loss={config.loss_rate:.0%}" if config.loss_rate > 0.0 else ""
    )
    table = ResultTable(
        f"Graceful degradation — probabilistic k={config.quorum_size}, "
        f"n={config.num_servers}, crash at t={config.crash_time}, "
        f"{recover}, op deadline {config.operation_deadline}{loss}",
        [
            "crashes",
            "converged",
            "rounds",
            "retries",
            "timeouts",
            "messages_dropped",
            "ops_under_failure",
            "hung_ops",
        ],
    )
    tasks = [
        degradation_task(config, crashes) for crashes in config.crash_counts
    ]
    results = run_many(tasks, jobs=jobs, cache=cache)
    for crashes, result in zip(config.crash_counts, results):
        table.add_row(
            crashes,
            result["converged"],
            result["rounds"],
            result["retries"],
            result["timeouts"],
            result["messages_dropped"],
            result["ops_under_failure"],
            result["hung_ops"],
        )
    return table
