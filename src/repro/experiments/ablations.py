"""E-ABL-*: ablations of the design choices DESIGN.md calls out.

1. **Monotone cache** (E-ABL-MONO): the Section 6.2 modification toggled
   on/off on the same workload — isolates how much of the convergence
   speedup comes from the per-client timestamp cache.
2. **Delay distribution** (E-ABL-DELAY): the paper claims sync ≈ async
   because the round structure averages delays out; we stress this with
   uniform and heavy-tailed lognormal delays.
3. **Topology** (E-ABL-TOPO): APSP convergence is M = ⌈log₂ d⌉
   pseudocycles; varying the input graph's diameter d should shift rounds
   proportionally to M.
"""

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.apps.apsp import ApspACO
from repro.exec.cache import RunCache
from repro.exec.engine import run_many
from repro.exec.task import RunTask
from repro.exec.workers import build_graph
from repro.experiments.results import ResultTable
from repro.sim.rng import derive_seed


@dataclass
class AblationConfig:
    """Shared parameters for the ablation experiments."""

    num_vertices: int = 16
    num_servers: int = 16
    quorum_size: int = 3
    runs: int = 3
    max_rounds: int = 250
    seed: int = 31

    @classmethod
    def scaled_down(cls) -> "AblationConfig":
        return cls(num_vertices=10, num_servers=10, runs=2, max_rounds=150)


def _ablation_tasks(
    config: AblationConfig,
    stream: str,
    cells: List[Tuple[Any, Dict[str, Any], bool, int]],
) -> List[RunTask]:
    """Expand (cell_id, graph_spec, monotone, k) cells × delay × runs into
    tasks for one ablation table.  ``cells`` entries may override the
    delay spec via a 5th element."""
    tasks: List[RunTask] = []
    for cell in cells:
        cell_id, graph_spec, monotone, k = cell[:4]
        delay_spec = cell[4] if len(cell) > 4 else {"kind": "constant", "mean": 1.0}
        for run in range(config.runs):
            tasks.append(
                RunTask(
                    kind="alg1",
                    params={
                        "graph": graph_spec,
                        "quorum": {
                            "kind": "probabilistic",
                            "n": config.num_servers,
                            "k": k,
                        },
                        "delay": delay_spec,
                        "monotone": monotone,
                        "max_rounds": config.max_rounds,
                    },
                    seed=derive_seed(config.seed, stream, str(cell_id), run),
                )
            )
    return tasks


def _collect_means(
    results: List[dict], runs: int
) -> List[Tuple[float, bool]]:
    """Fold a flat result list (runs-per-cell contiguous) into per-cell
    (mean rounds, all converged) pairs."""
    cells = []
    for start in range(0, len(results), runs):
        group = results[start : start + runs]
        mean = sum(r["rounds"] for r in group) / len(group)
        cells.append((mean, all(r["converged"] for r in group)))
    return cells


def monotone_ablation(
    config: AblationConfig,
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
) -> ResultTable:
    """E-ABL-MONO: cache on vs off across quorum sizes."""
    chain_spec = {"kind": "chain", "n": config.num_vertices}
    sizes = [
        k
        for k in sorted({1, 2, config.quorum_size, config.num_servers // 2})
        if k >= 1
    ]
    cells = []
    for k in sizes:
        cells.append((f"mono-k{k}", chain_spec, True, k))
        cells.append((f"plain-k{k}", chain_spec, False, k))
    results = run_many(
        _ablation_tasks(config, "ablation-mono", cells), jobs=jobs, cache=cache
    )
    means = _collect_means(results, config.runs)
    table = ResultTable(
        f"Ablation — monotone cache (chain {config.num_vertices}, "
        f"n={config.num_servers})",
        ["k", "monotone_rounds", "plain_rounds", "plain_over_monotone"],
    )
    for index, k in enumerate(sizes):
        mono, _ = means[2 * index]
        plain, converged = means[2 * index + 1]
        ratio = plain / mono if mono else float("nan")
        table.add_row(k, mono, f"{plain}" if converged else f">={plain}", ratio)
    return table


def delay_ablation(
    config: AblationConfig,
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
) -> ResultTable:
    """E-ABL-DELAY: delay distribution sweep (monotone registers)."""
    chain_spec = {"kind": "chain", "n": config.num_vertices}
    models: List[Tuple[str, Dict[str, Any]]] = [
        ("constant (sync)", {"kind": "constant", "mean": 1.0}),
        ("exponential", {"kind": "exponential", "mean": 1.0}),
        ("uniform [0.5, 1.5]", {"kind": "uniform", "low": 0.5, "high": 1.5}),
        ("lognormal (heavy tail)", {"kind": "lognormal", "mean": 1.0, "sigma": 1.2}),
    ]
    cells = [
        (label, chain_spec, True, config.quorum_size, spec)
        for label, spec in models
    ]
    results = run_many(
        _ablation_tasks(config, "ablation-delay", cells), jobs=jobs, cache=cache
    )
    means = _collect_means(results, config.runs)
    table = ResultTable(
        f"Ablation — delay distribution (chain {config.num_vertices}, "
        f"n={config.num_servers}, k={config.quorum_size}, monotone)",
        ["delay_model", "mean_rounds", "all_converged"],
    )
    for (label, _), (mean, converged) in zip(models, means):
        table.add_row(label, mean, converged)
    return table


def topology_ablation(
    config: AblationConfig,
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
) -> ResultTable:
    """E-ABL-TOPO: rounds vs the pseudocycle bound M = ⌈log₂ d⌉."""
    n = config.num_vertices
    topologies: List[Tuple[str, Dict[str, Any]]] = [
        ("chain", {"kind": "chain", "n": n}),
        ("ring", {"kind": "ring", "n": n}),
        ("grid", {"kind": "grid", "rows": max(2, n // 4), "cols": 4}),
        (
            "random p=0.2",
            {
                "kind": "random",
                "n": n,
                "p": 0.2,
                "seed": derive_seed(config.seed, "ablation-topology-graph"),
            },
        ),
        ("complete", {"kind": "complete", "n": n}),
    ]
    cells = [
        (label, spec, True, config.quorum_size) for label, spec in topologies
    ]
    results = run_many(
        _ablation_tasks(config, "ablation-topo", cells), jobs=jobs, cache=cache
    )
    means = _collect_means(results, config.runs)
    table = ResultTable(
        f"Ablation — input topology (~{n} vertices, n={config.num_servers} "
        f"servers, k={config.quorum_size}, monotone)",
        ["topology", "vertices", "diameter_d", "M_bound", "mean_rounds"],
    )
    for (label, spec), (mean, converged) in zip(topologies, means):
        graph = build_graph(spec)
        table.add_row(
            label,
            graph.n,
            graph.hop_diameter(),
            ApspACO(graph).contraction_depth(),
            mean if converged else float("nan"),
        )
    return table
