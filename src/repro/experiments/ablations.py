"""E-ABL-*: ablations of the design choices DESIGN.md calls out.

1. **Monotone cache** (E-ABL-MONO): the Section 6.2 modification toggled
   on/off on the same workload — isolates how much of the convergence
   speedup comes from the per-client timestamp cache.
2. **Delay distribution** (E-ABL-DELAY): the paper claims sync ≈ async
   because the round structure averages delays out; we stress this with
   uniform and heavy-tailed lognormal delays.
3. **Topology** (E-ABL-TOPO): APSP convergence is M = ⌈log₂ d⌉
   pseudocycles; varying the input graph's diameter d should shift rounds
   proportionally to M.
"""

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.apps.apsp import ApspACO
from repro.apps.graphs import (
    Graph,
    chain_graph,
    complete_graph,
    grid_graph,
    random_graph,
    ring_graph,
)
from repro.experiments.results import ResultTable
from repro.iterative.runner import Alg1Runner
from repro.quorum.probabilistic import ProbabilisticQuorumSystem
from repro.sim.delays import (
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    LogNormalDelay,
    UniformDelay,
)
from repro.sim.rng import RngRegistry


@dataclass
class AblationConfig:
    """Shared parameters for the ablation experiments."""

    num_vertices: int = 16
    num_servers: int = 16
    quorum_size: int = 3
    runs: int = 3
    max_rounds: int = 250
    seed: int = 31

    @classmethod
    def scaled_down(cls) -> "AblationConfig":
        return cls(num_vertices=10, num_servers=10, runs=2, max_rounds=150)


def _mean_rounds(
    aco: ApspACO,
    config: AblationConfig,
    monotone: bool,
    delay_model: DelayModel,
    quorum_size: int,
) -> Tuple[float, bool]:
    """Mean rounds over config.runs; second value flags any non-convergence."""
    rounds: List[int] = []
    all_converged = True
    for run in range(config.runs):
        runner = Alg1Runner(
            aco,
            ProbabilisticQuorumSystem(config.num_servers, quorum_size),
            monotone=monotone,
            delay_model=delay_model,
            seed=config.seed + 6151 * run,
            max_rounds=config.max_rounds,
        )
        result = runner.run(check_spec=False)
        rounds.append(result.rounds)
        all_converged = all_converged and result.converged
    return sum(rounds) / len(rounds), all_converged


def monotone_ablation(config: AblationConfig) -> ResultTable:
    """E-ABL-MONO: cache on vs off across quorum sizes."""
    aco = ApspACO(chain_graph(config.num_vertices))
    table = ResultTable(
        f"Ablation — monotone cache (chain {config.num_vertices}, "
        f"n={config.num_servers})",
        ["k", "monotone_rounds", "plain_rounds", "plain_over_monotone"],
    )
    for k in sorted({1, 2, config.quorum_size, config.num_servers // 2}):
        if k < 1:
            continue
        mono, _ = _mean_rounds(aco, config, True, ConstantDelay(1.0), k)
        plain, converged = _mean_rounds(aco, config, False, ConstantDelay(1.0), k)
        ratio = plain / mono if mono else float("nan")
        table.add_row(k, mono, f"{plain}" if converged else f">={plain}", ratio)
    return table


def delay_ablation(config: AblationConfig) -> ResultTable:
    """E-ABL-DELAY: delay distribution sweep (monotone registers)."""
    aco = ApspACO(chain_graph(config.num_vertices))
    models: List[Tuple[str, DelayModel]] = [
        ("constant (sync)", ConstantDelay(1.0)),
        ("exponential", ExponentialDelay(1.0)),
        ("uniform [0.5, 1.5]", UniformDelay(0.5, 1.5)),
        ("lognormal (heavy tail)", LogNormalDelay(1.0, sigma=1.2)),
    ]
    table = ResultTable(
        f"Ablation — delay distribution (chain {config.num_vertices}, "
        f"n={config.num_servers}, k={config.quorum_size}, monotone)",
        ["delay_model", "mean_rounds", "all_converged"],
    )
    for label, model in models:
        mean, converged = _mean_rounds(
            aco, config, True, model, config.quorum_size
        )
        table.add_row(label, mean, converged)
    return table


def topology_ablation(config: AblationConfig) -> ResultTable:
    """E-ABL-TOPO: rounds vs the pseudocycle bound M = ⌈log₂ d⌉."""
    rng = RngRegistry(config.seed).stream("topology")
    n = config.num_vertices
    topologies: Dict[str, Callable[[], Graph]] = {
        "chain": lambda: chain_graph(n),
        "ring": lambda: ring_graph(n),
        "grid": lambda: grid_graph(max(2, n // 4), 4),
        "random p=0.2": lambda: random_graph(n, 0.2, rng),
        "complete": lambda: complete_graph(n),
    }
    table = ResultTable(
        f"Ablation — input topology (~{n} vertices, n={config.num_servers} "
        f"servers, k={config.quorum_size}, monotone)",
        ["topology", "vertices", "diameter_d", "M_bound", "mean_rounds"],
    )
    for label, builder in topologies.items():
        graph = builder()
        aco = ApspACO(graph)
        mean, converged = _mean_rounds(
            aco, config, True, ConstantDelay(1.0), config.quorum_size
        )
        table.add_row(
            label,
            graph.n,
            graph.hop_diameter(),
            aco.contraction_depth(),
            mean if converged else float("nan"),
        )
    return table
