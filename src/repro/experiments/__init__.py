"""Experiment harnesses: one module per paper artifact (see DESIGN.md §4).

* :mod:`repro.experiments.figure2` — E-FIG2/E-COR7: quorum size vs rounds
  to convergence, four variants plus the Corollary 7 bound.
* :mod:`repro.experiments.survival` — E-THM1: write-survival probability
  vs the Theorem 1 bound.
* :mod:`repro.experiments.freshness` — E-THM4: the distribution of Y vs
  the Geometric(q) bound of [R5].
* :mod:`repro.experiments.message_complexity` — E-MSG: Eqns 1-3 regimes,
  analytic and measured.
* :mod:`repro.experiments.load_availability` — E-LOADAVAIL: Section 4's
  load/availability trade-off table.
* :mod:`repro.experiments.ablations` — E-ABL-*: monotone cache, delay
  distribution and topology ablations.

Each module exposes a config dataclass with paper-scale defaults, a
``run_*`` function returning structured rows, and a formatter producing
the table/series the paper reports.  ``REPRO_FULL=1`` in the environment
switches benchmark invocations to full paper scale.
"""

from repro.experiments.results import ResultTable, full_scale

__all__ = ["ResultTable", "full_scale"]
