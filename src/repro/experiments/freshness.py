"""E-THM4: the distribution of Y vs the Geometric(q) bound of [R5].

Theorem 4 says the monotone probabilistic quorum algorithm satisfies [R5]
with q = 1 - C(n-k,k)/C(n,k): the number of reads Y a process needs after
a write until it sees that write (or a later one) is dominated by a
geometric with success probability q.  Two estimators again:

* quorum-level Monte Carlo: count fresh quorum draws until one intersects
  the write's quorum — the exact event analysed in the proof;
* register-level: run a monotone deployment and extract Y samples from
  the recorded history via :func:`repro.core.spec.freshness_wait_samples`.

The empirical mean of Y should be *below* 1/q (the proof ignores ways a
reader can catch up without quorum overlap — the very slack the paper
blames for the gap between the Figure 2 bound and measurements).
"""

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.analysis.theory import q_exact
from repro.core.spec import estimate_r5_geometric_parameter, freshness_wait_samples
from repro.experiments.results import ResultTable
from repro.quorum.probabilistic import ProbabilisticQuorumSystem
from repro.registers.deployment import RegisterDeployment
from repro.sim.coroutines import Sleep, spawn
from repro.sim.delays import ExponentialDelay
from repro.sim.rng import RngRegistry


@dataclass
class FreshnessConfig:
    """Parameters for the freshness-wait experiment."""

    num_servers: int = 34
    quorum_size: int = 4
    trials: int = 20_000
    seed: int = 13

    @classmethod
    def scaled_down(cls) -> "FreshnessConfig":
        return cls(trials=2_000)


def quorum_level_wait_samples(config: FreshnessConfig) -> List[int]:
    """Monte Carlo samples of Y: draws until a quorum overlaps the write's."""
    system = ProbabilisticQuorumSystem(config.num_servers, config.quorum_size)
    rng = RngRegistry(config.seed).stream("freshness")
    samples = []
    cap = 100 * config.num_servers  # safety net; never hit in practice
    for _ in range(config.trials):
        write_quorum = system.quorum(rng)
        count = 1
        while not (system.quorum(rng) & write_quorum) and count < cap:
            count += 1
        samples.append(count)
    return samples


def register_level_wait_samples(
    config: FreshnessConfig, num_writes: int = 120
) -> List[int]:
    """Y samples from a real monotone register deployment."""
    system = ProbabilisticQuorumSystem(config.num_servers, config.quorum_size)
    deployment = RegisterDeployment(
        system,
        num_clients=2,
        delay_model=ExponentialDelay(1.0),
        monotone=True,
        seed=config.seed,
    )
    deployment.declare_register("X", writer=0, initial_value=0)

    def writer():
        for value in range(1, num_writes + 1):
            yield deployment.handle(0, "X").write(value)
            yield Sleep(3.0)  # several reads happen per write interval

    def reader():
        for _ in range(num_writes * 4):
            yield deployment.handle(1, "X").read()
            yield Sleep(0.7)

    spawn(deployment.scheduler, writer(), label="writer")
    spawn(deployment.scheduler, reader(), label="reader")
    deployment.run()
    return freshness_wait_samples(deployment.space.history("X"))


def freshness_table(config: FreshnessConfig) -> ResultTable:
    """E-THM4 summary: analytic q vs the two empirical estimates."""
    q = q_exact(config.num_servers, config.quorum_size)
    mc_samples = quorum_level_wait_samples(config)
    reg_samples = register_level_wait_samples(config)
    table = ResultTable(
        f"Theorem 4 — freshness waits "
        f"(n={config.num_servers}, k={config.quorum_size})",
        ["quantity", "analytic", "quorum_mc", "register_measured"],
    )
    table.add_row(
        "q (success prob.)",
        q,
        estimate_r5_geometric_parameter(mc_samples),
        estimate_r5_geometric_parameter(reg_samples) if reg_samples else float("nan"),
    )
    table.add_row(
        "E[Y] (expected reads)",
        1.0 / q,
        float(np.mean(mc_samples)),
        float(np.mean(reg_samples)) if reg_samples else float("nan"),
    )
    table.add_row(
        "max Y observed",
        float("nan"),
        max(mc_samples),
        max(reg_samples) if reg_samples else float("nan"),
    )
    return table


def empirical_tail(samples: List[int], r: int) -> float:
    """Pr[Y >= r] from samples."""
    if not samples:
        raise ValueError("no samples")
    return sum(1 for y in samples if y >= r) / len(samples)
