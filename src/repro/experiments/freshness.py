"""E-THM4: the distribution of Y vs the Geometric(q) bound of [R5].

Theorem 4 says the monotone probabilistic quorum algorithm satisfies [R5]
with q = 1 - C(n-k,k)/C(n,k): the number of reads Y a process needs after
a write until it sees that write (or a later one) is dominated by a
geometric with success probability q.  Two estimators again:

* quorum-level Monte Carlo: count fresh quorum draws until one intersects
  the write's quorum — the exact event analysed in the proof;
* register-level: run a monotone deployment and extract Y samples from
  the recorded history via :func:`repro.core.spec.freshness_wait_samples`.

The empirical mean of Y should be *below* 1/q (the proof ignores ways a
reader can catch up without quorum overlap — the very slack the paper
blames for the gap between the Figure 2 bound and measurements).
"""

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.analysis.theory import q_exact
from repro.core.spec import estimate_r5_geometric_parameter, freshness_wait_samples
from repro.exec.cache import RunCache
from repro.exec.engine import run_many
from repro.exec.task import RunTask
from repro.experiments.results import ResultTable
from repro.experiments.survival import _mc_shards
from repro.quorum.probabilistic import ProbabilisticQuorumSystem
from repro.registers.deployment import RegisterDeployment
from repro.sim.coroutines import Sleep, spawn
from repro.sim.delays import ExponentialDelay
from repro.sim.rng import RngRegistry, derive_seed


@dataclass
class FreshnessConfig:
    """Parameters for the freshness-wait experiment."""

    num_servers: int = 34
    quorum_size: int = 4
    trials: int = 20_000
    seed: int = 13

    @classmethod
    def scaled_down(cls) -> "FreshnessConfig":
        return cls(trials=2_000)


def freshness_mc_tasks(config: FreshnessConfig) -> List[RunTask]:
    """The Monte Carlo as independently seeded fixed-size shards."""
    return [
        RunTask(
            kind="freshness_mc",
            params={
                "num_servers": config.num_servers,
                "quorum_size": config.quorum_size,
                "trials": trials,
                "shard": shard,
            },
            seed=derive_seed(config.seed, "freshness-mc", shard),
        )
        for shard, trials in enumerate(_mc_shards(config.trials))
    ]


def run_freshness_mc_task(task: RunTask) -> List[int]:
    """One Monte Carlo shard; returns its Y samples in draw order."""
    params = task.params
    system = ProbabilisticQuorumSystem(
        params["num_servers"], params["quorum_size"]
    )
    rng = RngRegistry(task.seed).stream("freshness")
    samples = []
    cap = 100 * params["num_servers"]  # safety net; never hit in practice
    for _ in range(params["trials"]):
        write_quorum = system.quorum(rng)
        count = 1
        while not (system.quorum(rng) & write_quorum) and count < cap:
            count += 1
        samples.append(count)
    return samples


def quorum_level_wait_samples(
    config: FreshnessConfig,
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
) -> List[int]:
    """Monte Carlo samples of Y: draws until a quorum overlaps the write's."""
    shards = run_many(freshness_mc_tasks(config), jobs=jobs, cache=cache)
    return [y for shard in shards for y in shard]


def freshness_register_task(
    config: FreshnessConfig, num_writes: int = 120
) -> RunTask:
    """The register-level measurement as a single engine task."""
    return RunTask(
        kind="freshness_register",
        params={
            "num_servers": config.num_servers,
            "quorum_size": config.quorum_size,
            "num_writes": num_writes,
        },
        seed=derive_seed(config.seed, "freshness-register"),
    )


def run_freshness_register_task(task: RunTask) -> List[int]:
    """Worker: Y samples from a real monotone register deployment."""
    params = task.params
    num_writes = params["num_writes"]
    system = ProbabilisticQuorumSystem(
        params["num_servers"], params["quorum_size"]
    )
    deployment = RegisterDeployment(
        system,
        num_clients=2,
        delay_model=ExponentialDelay(1.0),
        monotone=True,
        seed=task.seed,
    )
    deployment.declare_register("X", writer=0, initial_value=0)

    def writer():
        for value in range(1, num_writes + 1):
            yield deployment.handle(0, "X").write(value)
            yield Sleep(3.0)  # several reads happen per write interval

    def reader():
        for _ in range(num_writes * 4):
            yield deployment.handle(1, "X").read()
            yield Sleep(0.7)

    spawn(deployment.scheduler, writer(), label="writer")
    spawn(deployment.scheduler, reader(), label="reader")
    deployment.run()
    return freshness_wait_samples(deployment.space.history("X"))


def register_level_wait_samples(
    config: FreshnessConfig,
    num_writes: int = 120,
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
) -> List[int]:
    """Y samples from a real monotone register deployment."""
    task = freshness_register_task(config, num_writes)
    (samples,) = run_many([task], jobs=jobs, cache=cache)
    return samples


def freshness_table(
    config: FreshnessConfig,
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
) -> ResultTable:
    """E-THM4 summary: analytic q vs the two empirical estimates."""
    q = q_exact(config.num_servers, config.quorum_size)
    mc_tasks = freshness_mc_tasks(config)
    results = run_many(
        mc_tasks + [freshness_register_task(config)], jobs=jobs, cache=cache
    )
    mc_samples = [y for shard in results[: len(mc_tasks)] for y in shard]
    reg_samples = results[-1]
    table = ResultTable(
        f"Theorem 4 — freshness waits "
        f"(n={config.num_servers}, k={config.quorum_size})",
        ["quantity", "analytic", "quorum_mc", "register_measured"],
    )
    table.add_row(
        "q (success prob.)",
        q,
        estimate_r5_geometric_parameter(mc_samples),
        estimate_r5_geometric_parameter(reg_samples) if reg_samples else float("nan"),
    )
    table.add_row(
        "E[Y] (expected reads)",
        1.0 / q,
        float(np.mean(mc_samples)),
        float(np.mean(reg_samples)) if reg_samples else float("nan"),
    )
    table.add_row(
        "max Y observed",
        float("nan"),
        max(mc_samples),
        max(reg_samples) if reg_samples else float("nan"),
    )
    return table


def empirical_tail(samples: List[int], r: int) -> float:
    """Pr[Y >= r] from samples."""
    if not samples:
        raise ValueError("no samples")
    return sum(1 for y in samples if y >= r) / len(samples)
