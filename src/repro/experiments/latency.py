"""E-EXT-LAT: operation latency vs quorum size.

The flip side of the paper's load story: a quorum operation waits for its
slowest member, so read/write latency grows with k (like mean·H_k under
exponential delays) while per-server load shrinks (k/n).  This extension
experiment measures both from one workload and tabulates the trade-off —
the practical reason to prefer k = Θ(√n) over larger "safer" quorums
even before the message-count argument of Section 6.4.
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.latency import (
    expected_max_of_exponentials,
    latency_summary,
    merged_latencies,
)
from repro.exec.cache import RunCache
from repro.exec.engine import run_many
from repro.exec.task import RunTask, execute_task
from repro.experiments.results import ResultTable
from repro.quorum.probabilistic import ProbabilisticQuorumSystem
from repro.registers.deployment import RegisterDeployment
from repro.sim.coroutines import Sleep, spawn
from repro.sim.delays import ExponentialDelay
from repro.sim.rng import derive_seed


@dataclass
class LatencyConfig:
    """Parameters for the latency/load trade-off measurement."""

    num_servers: int = 25
    quorum_sizes: Tuple[int, ...] = (1, 2, 5, 10, 15, 25)
    num_clients: int = 4
    ops_per_client: int = 150
    mean_delay: float = 1.0
    seed: int = 61

    @classmethod
    def scaled_down(cls) -> "LatencyConfig":
        return cls(num_servers=16, quorum_sizes=(1, 4, 8, 16),
                   ops_per_client=60)


def latency_task(config: LatencyConfig, k: int) -> RunTask:
    """The k-sized-quorum workload as an engine task."""
    return RunTask(
        kind="latency",
        params={
            "num_servers": config.num_servers,
            "k": k,
            "num_clients": config.num_clients,
            "ops_per_client": config.ops_per_client,
            "mean_delay": config.mean_delay,
        },
        seed=derive_seed(config.seed, "latency", k),
    )


def run_latency_task(task: RunTask) -> dict:
    """Worker: run a read/write workload at quorum size k; summarise
    latencies (needs the recorded history, so it runs where the
    deployment lives)."""
    params = task.params
    k = params["k"]
    mean_delay = params["mean_delay"]
    deployment = RegisterDeployment(
        ProbabilisticQuorumSystem(params["num_servers"], k),
        num_clients=params["num_clients"],
        delay_model=ExponentialDelay(mean_delay),
        monotone=True,
        seed=task.seed,
    )
    deployment.declare_register("X", writer=0, initial_value=0)

    def writer():
        for value in range(params["ops_per_client"]):
            yield deployment.handle(0, "X").write(value)
            yield Sleep(1.0)

    def reader(cid):
        for _ in range(params["ops_per_client"]):
            yield deployment.handle(cid, "X").read()
            yield Sleep(1.0)

    spawn(deployment.scheduler, writer())
    for cid in range(1, params["num_clients"]):
        spawn(deployment.scheduler, reader(cid))
    deployment.run()

    reads, writes = merged_latencies([deployment.space.history("X")])
    read_stats = latency_summary(reads)
    write_stats = latency_summary(writes)
    stats = deployment.network.stats
    server_ids = set(deployment.server_ids)
    busiest = max(
        (count for node, count in stats.by_receiver.items()
         if node in server_ids),
        default=0,
    )
    server_deliveries = sum(
        count for node, count in stats.by_receiver.items()
        if node in server_ids
    )
    return {
        "k": k,
        "read_mean": read_stats["mean"],
        "read_p95": read_stats["p95"],
        "write_mean": write_stats["mean"],
        "analytic_floor": 2.0 * mean_delay if k == 1
        else expected_max_of_exponentials(mean_delay, k),
        "busiest_server_share": (
            busiest / server_deliveries if server_deliveries else 0.0
        ),
    }


def measure_latency(config: LatencyConfig, k: int) -> dict:
    """Run the quorum-size-k workload in-process; returns its table row."""
    return execute_task(latency_task(config, k))


def latency_table(
    config: LatencyConfig,
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
) -> ResultTable:
    """The latency/load trade-off table across quorum sizes."""
    table = ResultTable(
        f"Latency vs load across quorum sizes "
        f"(n={config.num_servers}, exponential delays, mean "
        f"{config.mean_delay})",
        [
            "k",
            "read_mean",
            "read_p95",
            "write_mean",
            "analytic_floor",
            "busiest_server_share",
        ],
    )
    tasks = [latency_task(config, k) for k in config.quorum_sizes]
    rows: List[dict] = run_many(tasks, jobs=jobs, cache=cache)
    table.add_dict_rows(rows)
    return table
