"""E-COR7: measured rounds per pseudocycle vs the Theorem 5 bound.

Figure 2 only reports rounds to convergence; the quantity Theorem 5 and
Corollary 7 actually bound is *rounds per pseudocycle*.  This experiment
reconstructs each execution's update sequence from its register
histories (:mod:`repro.iterative.trace`), extracts the [B1]/[B2]
pseudocycles, and compares the measured ratio against both the exact
1/q (Theorem 5 with Theorem 4's q) and Corollary 7's looser
1/(1-((n-k)/n)^k).

The paper's Section 7 notes the bound is loose because "a read could
obtain a value more recent than a given write without having to overlap
any of that write's replicas" — the measured column quantifies exactly
how loose.
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.theory import (
    corollary7_rounds_per_pseudocycle_bound,
    expected_rounds_upper_bound,
    q_exact,
)
from repro.exec.cache import RunCache
from repro.exec.engine import run_many
from repro.exec.task import RunTask
from repro.experiments.results import ResultTable
from repro.sim.rng import derive_seed


@dataclass
class PseudocycleConfig:
    """Parameters for the rounds-per-pseudocycle measurement."""

    num_vertices: int = 16
    num_servers: int = 16
    quorum_sizes: Tuple[int, ...] = (1, 2, 3, 4, 6, 8)
    runs: int = 3
    max_rounds: int = 300
    seed: int = 41

    @classmethod
    def scaled_down(cls) -> "PseudocycleConfig":
        return cls(num_vertices=10, num_servers=10,
                   quorum_sizes=(1, 2, 4), runs=2)


def pseudocycle_tasks(config: PseudocycleConfig) -> List[RunTask]:
    """One task per (quorum size, run), with in-worker pseudocycle
    measurement (the trace reconstruction needs the register histories,
    so it must happen where the run executed)."""
    return [
        RunTask(
            kind="alg1",
            params={
                "graph": {"kind": "chain", "n": config.num_vertices},
                "quorum": {
                    "kind": "probabilistic",
                    "n": config.num_servers,
                    "k": k,
                },
                "delay": {"kind": "constant", "mean": 1.0},
                "monotone": True,
                "max_rounds": config.max_rounds,
                "measure_pseudocycles": True,
            },
            seed=derive_seed(config.seed, "pseudocycles", k, run),
        )
        for k in config.quorum_sizes
        for run in range(config.runs)
    ]


def measure(
    config: PseudocycleConfig,
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
) -> List[dict]:
    """One row per quorum size: measured ratio and the two bounds."""
    results = run_many(pseudocycle_tasks(config), jobs=jobs, cache=cache)
    rows = []
    for index, k in enumerate(config.quorum_sizes):
        ratios = []
        for result in results[index * config.runs : (index + 1) * config.runs]:
            if not result["converged"]:
                continue
            if result["pseudocycles"] > 0:
                ratios.append(result["rounds"] / result["pseudocycles"])
        q = q_exact(config.num_servers, k)
        rows.append(
            {
                "k": k,
                "measured_rounds_per_pc": (
                    sum(ratios) / len(ratios) if ratios else float("nan")
                ),
                "theorem5_bound": expected_rounds_upper_bound(q),
                "corollary7_bound": corollary7_rounds_per_pseudocycle_bound(
                    config.num_servers, k
                ),
            }
        )
    return rows


def pseudocycle_table(
    config: PseudocycleConfig,
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
) -> ResultTable:
    """The E-COR7 table."""
    table = ResultTable(
        f"Corollary 7 — measured rounds per pseudocycle vs bounds "
        f"(chain {config.num_vertices}, n={config.num_servers}, monotone)",
        ["k", "measured_rounds_per_pc", "theorem5_bound", "corollary7_bound"],
    )
    table.add_dict_rows(measure(config, jobs=jobs, cache=cache))
    return table
