"""E-COR7: measured rounds per pseudocycle vs the Theorem 5 bound.

Figure 2 only reports rounds to convergence; the quantity Theorem 5 and
Corollary 7 actually bound is *rounds per pseudocycle*.  This experiment
reconstructs each execution's update sequence from its register
histories (:mod:`repro.iterative.trace`), extracts the [B1]/[B2]
pseudocycles, and compares the measured ratio against both the exact
1/q (Theorem 5 with Theorem 4's q) and Corollary 7's looser
1/(1-((n-k)/n)^k).

The paper's Section 7 notes the bound is loose because "a read could
obtain a value more recent than a given write without having to overlap
any of that write's replicas" — the measured column quantifies exactly
how loose.
"""

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.theory import (
    corollary7_rounds_per_pseudocycle_bound,
    expected_rounds_upper_bound,
    q_exact,
)
from repro.apps.apsp import ApspACO
from repro.apps.graphs import chain_graph
from repro.experiments.results import ResultTable
from repro.iterative.runner import Alg1Runner
from repro.iterative.trace import measure_pseudocycles
from repro.quorum.probabilistic import ProbabilisticQuorumSystem
from repro.sim.delays import ConstantDelay


@dataclass
class PseudocycleConfig:
    """Parameters for the rounds-per-pseudocycle measurement."""

    num_vertices: int = 16
    num_servers: int = 16
    quorum_sizes: Tuple[int, ...] = (1, 2, 3, 4, 6, 8)
    runs: int = 3
    max_rounds: int = 300
    seed: int = 41

    @classmethod
    def scaled_down(cls) -> "PseudocycleConfig":
        return cls(num_vertices=10, num_servers=10,
                   quorum_sizes=(1, 2, 4), runs=2)


def measure(config: PseudocycleConfig) -> List[dict]:
    """One row per quorum size: measured ratio and the two bounds."""
    aco = ApspACO(chain_graph(config.num_vertices))
    rows = []
    for k in config.quorum_sizes:
        ratios = []
        for run in range(config.runs):
            runner = Alg1Runner(
                aco,
                ProbabilisticQuorumSystem(config.num_servers, k),
                monotone=True,
                delay_model=ConstantDelay(1.0),
                seed=config.seed + 9973 * run + 127 * k,
                max_rounds=config.max_rounds,
            )
            result = runner.run(check_spec=False)
            if not result.converged:
                continue
            pseudocycles = measure_pseudocycles(runner)
            if pseudocycles > 0:
                ratios.append(result.rounds / pseudocycles)
        q = q_exact(config.num_servers, k)
        rows.append(
            {
                "k": k,
                "measured_rounds_per_pc": (
                    sum(ratios) / len(ratios) if ratios else float("nan")
                ),
                "theorem5_bound": expected_rounds_upper_bound(q),
                "corollary7_bound": corollary7_rounds_per_pseudocycle_bound(
                    config.num_servers, k
                ),
            }
        )
    return rows


def pseudocycle_table(config: PseudocycleConfig) -> ResultTable:
    """The E-COR7 table."""
    table = ResultTable(
        f"Corollary 7 — measured rounds per pseudocycle vs bounds "
        f"(chain {config.num_vertices}, n={config.num_servers}, monotone)",
        ["k", "measured_rounds_per_pc", "theorem5_bound", "corollary7_bound"],
    )
    table.add_dict_rows(measure(config))
    return table
