"""E-LOADAVAIL: Section 4's load/availability comparison.

The paper reviews Naor-Wool: a strict quorum system can have optimal load
Θ(1/√n) *or* availability Ω(n), never both; Malkhi et al. break the
trade-off with probabilistic quorums.  The table here puts every
implemented system side by side — analytic load, Monte Carlo load,
availability, and the Naor-Wool lower bound — so the trade-off (and its
probabilistic escape) is visible in one screen.
"""

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.theory import naor_wool_load_lower_bound
from repro.experiments.results import ResultTable
from repro.quorum.analysis import empirical_load, failure_probability
from repro.quorum.base import QuorumSystem
from repro.quorum.fpp import FppQuorumSystem
from repro.quorum.grid import GridQuorumSystem
from repro.quorum.majority import MajorityQuorumSystem
from repro.quorum.probabilistic import ProbabilisticQuorumSystem
from repro.quorum.singleton import SingletonQuorumSystem
from repro.quorum.tree import TreeQuorumSystem
from repro.sim.rng import RngRegistry


@dataclass
class LoadAvailabilityConfig:
    """Parameters for the load/availability table."""

    num_servers: int = 31        # 31 = 2^5-1 (tree) and close to 5^2+5+1=31 (FPP order 5)
    trials: int = 4000
    seed: int = 23
    crash_probability: float = 0.25

    @classmethod
    def scaled_down(cls) -> "LoadAvailabilityConfig":
        return cls(num_servers=15, trials=800)


def build_systems(n: int) -> Dict[str, QuorumSystem]:
    """Every implemented quorum system instantiated near size n.

    Structured systems constrain n (grids need composites, FPPs need
    q²+q+1, trees need 2^d−1), so each is built at the largest feasible
    size <= n and the table reports its actual n.
    """
    systems: Dict[str, QuorumSystem] = {}
    k_opt = max(1, math.ceil(math.sqrt(n)))
    systems["probabilistic (k=sqrt n)"] = ProbabilisticQuorumSystem(n, k_opt)
    systems["majority"] = MajorityQuorumSystem(n)
    systems["singleton"] = SingletonQuorumSystem(n)
    side = max(1, math.isqrt(n))
    systems["grid"] = GridQuorumSystem(side, side)
    order = FppQuorumSystem.largest_order_for(n)
    if order is not None:
        systems["projective plane"] = FppQuorumSystem(order)
    tree_n = 1
    while 2 * tree_n + 1 <= n:
        tree_n = 2 * tree_n + 1
    if tree_n >= 3:
        systems["tree"] = TreeQuorumSystem(tree_n)
    return systems


def load_availability_experiment(
    config: LoadAvailabilityConfig,
) -> ResultTable:
    """The E-LOADAVAIL table."""
    rng = RngRegistry(config.seed).stream("load-availability")
    systems = build_systems(config.num_servers)
    table = ResultTable(
        f"Section 4 — load and availability (target n={config.num_servers}, "
        f"{config.trials} Monte Carlo accesses, crash prob. "
        f"{config.crash_probability})",
        [
            "system",
            "n",
            "quorum_size",
            "strict",
            "naor_wool_bound",
            "analytic_load",
            "empirical_load",
            "availability",
            "failure_prob",
        ],
    )
    for name in sorted(systems):
        system = systems[name]
        table.add_row(
            name,
            system.n,
            system.quorum_size,
            system.is_strict,
            naor_wool_load_lower_bound(system.n, system.quorum_size),
            system.analytic_load(),
            empirical_load(system, rng, config.trials),
            system.availability(),
            failure_probability(
                system, config.crash_probability, rng, config.trials
            ),
        )
    return table


def tradeoff_sweep(
    n_values: List[int], seed: int = 29, trials: int = 2000
) -> ResultTable:
    """Load × availability across n: the trade-off curve the paper cites.

    For each n: the probabilistic system at k=⌈√n⌉ (optimal load AND Θ(n)
    availability) vs majority (Θ(n) availability, load ≈ 1/2) vs grid
    (optimal load, O(√n) availability).
    """
    rng = RngRegistry(seed).stream("tradeoff")
    table = ResultTable(
        "Naor-Wool trade-off sweep: load and availability vs n",
        [
            "n",
            "prob_load",
            "prob_avail",
            "majority_load",
            "majority_avail",
            "grid_load",
            "grid_avail",
        ],
    )
    for n in n_values:
        prob = ProbabilisticQuorumSystem(n, max(1, math.ceil(math.sqrt(n))))
        majority = MajorityQuorumSystem(n)
        side = max(1, math.isqrt(n))
        grid = GridQuorumSystem(side, side)
        table.add_row(
            n,
            empirical_load(prob, rng, trials),
            prob.availability(),
            empirical_load(majority, rng, trials),
            majority.availability(),
            empirical_load(grid, rng, trials),
            grid.availability(),
        )
    return table
