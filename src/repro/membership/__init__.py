"""Dynamic membership: epoch/view-based reconfiguration.

The paper's model fixes the universe of ``n`` replica servers before the
run.  This package removes that assumption: a
:class:`~repro.membership.schedule.MembershipSchedule` scripts timed
``join``/``leave`` events (plain data, same idiom as
:class:`~repro.sim.failures.FailureSchedule`), and a
:class:`~repro.membership.manager.ViewManager` turns them into numbered
*views* — per-view member sets with their own probabilistic quorum
system — installed on the deployment while client operations are in
flight.  Joining replicas catch up by state transfer from a read quorum
of the previous view; leaving replicas drain and then stop answering.
Clients discover new views lazily through ``StaleViewNack`` replies and
re-dispatch under the existing retry/deadline machinery.
"""

from repro.membership.manager import View, ViewManager
from repro.membership.schedule import (
    MembershipError,
    MembershipEvent,
    MembershipSchedule,
)

__all__ = [
    "MembershipError",
    "MembershipEvent",
    "MembershipSchedule",
    "View",
    "ViewManager",
]
