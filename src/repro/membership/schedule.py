"""Scripted membership timelines (replica joins and retirements).

A :class:`MembershipSchedule` is a time-sorted list of
:class:`MembershipEvent` entries, each naming replica *roster indices*
that join or leave at a simulated time.  Like
:class:`~repro.sim.failures.FailureSchedule` it is plain data end to
end: events round-trip through JSON-able spec dicts
(:meth:`from_specs`/:meth:`to_specs`), so a timeline travels unchanged
through task params, the run cache's canonical-JSON keys, chaos
campaign generation, and ddmin shrinking.

Roster indices are stable for the life of a deployment: the initial
servers occupy indices ``0..n-1`` and every joiner gets a fresh index
(the deployment grows its roster on demand).  A ``join`` naming an index
already in the current view, or a ``leave`` naming one outside it, is a
no-op — this makes *every* event sublist a valid timeline, which is what
lets ddmin shrink membership histories without re-validating them.
"""

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple


class MembershipError(ValueError):
    """Raised on a malformed membership event or schedule."""


#: Actions a MembershipEvent may perform.
_ACTIONS = ("join", "leave")


@dataclass(frozen=True)
class MembershipEvent:
    """One scripted membership change.

    ``action`` is ``join`` or ``leave``; ``nodes`` names the affected
    replica roster indices.
    """

    time: float
    action: str
    nodes: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.time < 0:
            raise MembershipError(f"event time must be non-negative: {self}")
        if self.action not in _ACTIONS:
            raise MembershipError(
                f"unknown action {self.action!r}; known: {_ACTIONS}"
            )
        if not self.nodes:
            raise MembershipError(f"membership event names no nodes: {self}")
        if any(node < 0 for node in self.nodes):
            raise MembershipError(f"negative roster index: {self}")

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "MembershipEvent":
        """Build an event from its plain-data (JSON-able) spec dict."""
        try:
            time = spec["time"]
            action = spec["action"]
        except (TypeError, KeyError):
            raise MembershipError(
                f"event spec needs 'time' and 'action': {spec!r}"
            ) from None
        return cls(
            time=float(time),
            action=action,
            nodes=tuple(int(node) for node in spec.get("nodes", ())),
        )

    def to_spec(self) -> Dict[str, Any]:
        """The JSON-able form of this event (inverse of from_spec)."""
        return {
            "time": self.time,
            "action": self.action,
            "nodes": list(self.nodes),
        }


class MembershipSchedule:
    """A scripted timeline of replica joins and retirements.

    Build one with the fluent helpers (:meth:`join`, :meth:`leave`,
    :meth:`replace`, :meth:`churn`) or from plain-data specs
    (:meth:`from_specs`), then hand it to
    :meth:`repro.registers.deployment.RegisterDeployment.install_membership`.
    Events sharing a timestamp apply in insertion order (the sort is
    stable), so a same-time join+leave pair installs two views with the
    join first.
    """

    def __init__(self, events: Iterable[MembershipEvent] = ()) -> None:
        self.events: List[MembershipEvent] = sorted(
            events, key=lambda event: event.time
        )

    # -- builders ------------------------------------------------------ #

    def add(self, event: MembershipEvent) -> "MembershipSchedule":
        """Insert one event, keeping the timeline time-sorted."""
        self.events.append(event)
        self.events.sort(key=lambda entry: entry.time)
        return self

    def join(self, time: float, nodes: Iterable[int]) -> "MembershipSchedule":
        """Roster indices ``nodes`` join the view at ``time``."""
        return self.add(MembershipEvent(time, "join", nodes=tuple(nodes)))

    def leave(self, time: float, nodes: Iterable[int]) -> "MembershipSchedule":
        """Members ``nodes`` retire (drain, then stop answering) at ``time``."""
        return self.add(MembershipEvent(time, "leave", nodes=tuple(nodes)))

    def replace(
        self,
        time: float,
        joining: Iterable[int],
        leaving: Iterable[int],
    ) -> "MembershipSchedule":
        """At ``time``: ``joining`` enter, then ``leaving`` retire."""
        self.join(time, joining)
        return self.leave(time, leaving)

    @classmethod
    def churn(
        cls,
        num_initial: int,
        period: float,
        batch: int,
        horizon: float,
        start: Optional[float] = None,
    ) -> "MembershipSchedule":
        """A rotating-membership timeline up to ``horizon``.

        Every ``period``, ``batch`` fresh replicas join and the ``batch``
        oldest current members retire, keeping the view size constant at
        ``num_initial`` while the membership itself rotates — the
        membership analogue of :meth:`FailureSchedule.churn`.  Joiners
        take consecutive fresh roster indices starting at
        ``num_initial``; leavers go in FIFO (join-order) sequence.
        """
        if period <= 0:
            return cls()
        if not 1 <= batch <= num_initial:
            raise MembershipError(
                f"churn batch {batch} must be in [1, {num_initial}]"
            )
        schedule = cls()
        cycle = 0
        time = period if start is None else start
        while time <= horizon:
            joining = tuple(
                num_initial + cycle * batch + offset for offset in range(batch)
            )
            leaving = tuple(
                cycle * batch + offset for offset in range(batch)
            )
            schedule.replace(time, joining, leaving)
            cycle += 1
            time += period
        return schedule

    @classmethod
    def from_specs(
        cls, specs: Sequence[Dict[str, Any]]
    ) -> "MembershipSchedule":
        """Build a schedule from a list of plain-data event dicts."""
        return cls(MembershipEvent.from_spec(spec) for spec in specs)

    @classmethod
    def build(
        cls, spec: Dict[str, Any], num_initial: int, horizon: float
    ) -> "MembershipSchedule":
        """Build a schedule from a top-level membership spec dict.

        The shared entry point for every spec-driven caller (the worker
        vocabulary, service mode, benchmarks): ``{"kind": "churn",
        "period": p, "batch": b, "start": s}`` expands a rotating
        timeline up to ``horizon``; ``{"kind": "schedule", "events":
        [...]}`` passes an explicit event list through.
        """
        try:
            kind = spec["kind"]
        except (TypeError, KeyError):
            raise MembershipError(
                f"membership spec must be a dict with a 'kind': {spec!r}"
            ) from None
        if kind == "churn":
            return cls.churn(
                num_initial=num_initial,
                period=spec["period"],
                batch=spec.get("batch", 1),
                horizon=horizon,
                start=spec.get("start"),
            )
        if kind == "schedule":
            return cls.from_specs(spec["events"])
        raise MembershipError(f"unknown membership kind {kind!r}")

    def to_specs(self) -> List[Dict[str, Any]]:
        """The JSON-able form of this timeline (inverse of from_specs)."""
        return [event.to_spec() for event in self.events]

    def max_roster_index(self, num_initial: int) -> int:
        """The largest roster index this timeline can touch."""
        indices = [node for event in self.events for node in event.nodes]
        return max(indices + [num_initial - 1])

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        if not self.events:
            return "MembershipSchedule(empty)"
        return (
            f"MembershipSchedule({len(self.events)} events, "
            f"t={self.events[0].time:g}..{self.events[-1].time:g})"
        )
