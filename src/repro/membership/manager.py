"""View manager: numbered membership epochs over a register deployment.

A :class:`View` is an immutable membership epoch — a sorted tuple of
replica roster indices plus its own
:class:`~repro.quorum.probabilistic.ProbabilisticQuorumSystem` sized to
the epoch (``k`` clamped to the member count).  The
:class:`ViewManager` turns a scripted
:class:`~repro.membership.schedule.MembershipSchedule` into a sequence
of views installed on the deployment's scheduler while client
operations are in flight:

* **join** — the deployment grows its roster on demand; before the new
  view activates, every joiner catches up by *state transfer*: it sends
  ``StateRequest`` to a read quorum sampled from the **old** view and
  merges the highest-timestamped replica entries from the replies.
  Transfers retry on a timer with resampled targets; after
  ``transfer_max_attempts`` the view activates anyway and the shortfall
  is counted (``state_transfers_incomplete``), never hidden.
* **leave** — when the new view activates, leavers learn it and start
  *draining*: for ``drain`` time units they keep answering operations
  stamped with older views (their replies carry the new view id, so
  clients refresh), then they retire and ignore all traffic (counted).

Activation is atomic across servers — every server learns the new view
id in the same scheduler event — while clients discover views lazily:
a ``StaleViewNack`` (or a reply stamped with a newer view) triggers a
refresh from the manager and a re-dispatch under the new view's quorum.

Determinism: every random choice comes from ``derive_seed`` streams
keyed by view id (transfer target sampling, per-view per-client quorum
streams), so membership runs are bit-reproducible from the root seed
and byte-identical across kernel backends; runs without membership
events never construct any of this and stay byte-identical to the
membership-free code.
"""

from collections import deque
from typing import Any, Deque, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.membership.schedule import MembershipEvent, MembershipSchedule
from repro.quorum.probabilistic import ProbabilisticQuorumSystem
from repro.registers.messages import StateRequest
from repro.sim.rng import derive_seed


class View:
    """One membership epoch: a numbered, immutable member set."""

    __slots__ = ("view_id", "members", "quorum_system")

    def __init__(
        self, view_id: int, members: Iterable[int], quorum_size: int
    ) -> None:
        self.view_id = view_id
        self.members: Tuple[int, ...] = tuple(sorted(members))
        if not self.members:
            raise ValueError(f"view {view_id} has no members")
        # Per-view access set: a fresh probabilistic quorum system over
        # *this* epoch's member count, with k clamped so a shrunken view
        # keeps sampling valid quorums.
        k = min(quorum_size, len(self.members))
        self.quorum_system = ProbabilisticQuorumSystem(len(self.members), k)

    def sample(self, rng: np.random.Generator) -> FrozenSet[int]:
        """Draw a quorum of *roster indices* from this view's members."""
        positions = self.quorum_system.quorum(rng)
        members = self.members
        return frozenset(members[p] for p in positions)

    def __contains__(self, index: int) -> bool:
        return index in self.members

    def __repr__(self) -> str:
        return (
            f"View(id={self.view_id}, n={len(self.members)}, "
            f"k={self.quorum_system.k})"
        )


class ServerViewState:
    """Per-server membership state, attached as ``server.view_state``."""

    __slots__ = (
        "manager", "index", "view_id", "retiring", "retired", "retire_view",
        "transfer",
    )

    def __init__(self, manager: "ViewManager", index: int, view_id: int) -> None:
        self.manager = manager
        self.index = index  # this server's roster index
        self.view_id = view_id
        self.retiring = False
        self.retired = False
        self.retire_view: Optional[int] = None
        self.transfer: Optional["_Transfer"] = None

    def __repr__(self) -> str:
        phase = (
            "retired" if self.retired
            else "draining" if self.retiring
            else "member"
        )
        return f"ServerViewState(view={self.view_id}, {phase})"


class _Transfer:
    """Book-keeping for one joiner's state transfer."""

    __slots__ = (
        "transfer_id", "view_id", "joiner", "targets", "replies",
        "attempts", "retry_handle", "rng",
    )

    def __init__(
        self,
        transfer_id: int,
        view_id: int,
        joiner: int,
        targets: FrozenSet[int],
        rng: np.random.Generator,
    ) -> None:
        self.transfer_id = transfer_id
        self.view_id = view_id
        self.joiner = joiner  # roster index
        self.targets = targets  # roster indices of old-view members
        self.replies: Set[int] = set()  # roster indices that replied
        self.attempts = 0
        self.retry_handle = None
        self.rng = rng

    @property
    def complete(self) -> bool:
        return self.targets.issubset(self.replies)


class ViewManager:
    """Installs numbered views from a membership schedule.

    Constructed by
    :meth:`~repro.registers.deployment.RegisterDeployment.install_membership`;
    not meant to be built directly.
    """

    def __init__(
        self,
        deployment: Any,
        schedule: MembershipSchedule,
        drain: float = 8.0,
        transfer_retry: float = 4.0,
        transfer_max_attempts: int = 8,
    ) -> None:
        if drain < 0:
            raise ValueError(f"drain must be non-negative: {drain}")
        if transfer_retry <= 0:
            raise ValueError(
                f"transfer_retry must be positive: {transfer_retry}"
            )
        if transfer_max_attempts < 1:
            raise ValueError(
                f"transfer_max_attempts must be >= 1: {transfer_max_attempts}"
            )
        self.deployment = deployment
        self.schedule = schedule
        self.drain = drain
        self.transfer_retry = transfer_retry
        self.transfer_max_attempts = transfer_max_attempts
        self.seed = deployment.rng.seed
        self._quorum_size = deployment.quorum_system.quorum_size
        initial = View(
            0, range(len(deployment.servers)), self._quorum_size
        )
        self.views: List[View] = [initial]
        self.pending_view: Optional[View] = None
        self._event_queue: Deque[MembershipEvent] = deque()
        self._pending_transfers: Dict[int, _Transfer] = {}  # joiner -> xfer
        self._transfer_ids = 0
        # Degradation / accounting counters (collected post-run).
        self.views_installed = 0
        self.joins = 0
        self.leaves = 0
        self.state_transfers_completed = 0
        self.state_transfers_incomplete = 0
        self.state_transfer_retries = 0
        self.events_skipped = 0

    # -- wiring -------------------------------------------------------- #

    @property
    def current_view(self) -> View:
        """The newest *activated* view (pending ones are not visible)."""
        return self.views[-1]

    def client_view_rng(
        self, view_id: int, client_id: int, default: np.random.Generator
    ) -> np.random.Generator:
        """The quorum-choice stream a client uses under ``view_id``.

        View 0 keeps the client's original per-client stream — byte
        identity with membership-free sampling until the first change —
        and every later view gets an independent ``derive_seed`` stream,
        so quorum draws never depend on how many draws earlier views
        consumed.
        """
        if view_id == 0:
            return default
        return np.random.default_rng(
            derive_seed(self.seed, "view-quorum", view_id, client_id)
        )

    def install(self) -> None:
        """Schedule every membership event on the deployment's scheduler."""
        scheduler = self.deployment.scheduler
        for event in self.schedule.events:
            scheduler.schedule_at(event.time, self._on_event, event)

    # -- event application --------------------------------------------- #

    def _on_event(self, event: MembershipEvent) -> None:
        self._event_queue.append(event)
        if self.pending_view is None:
            self._advance()

    def _advance(self) -> None:
        """Apply queued events until one leaves a view pending transfer."""
        while self._event_queue and self.pending_view is None:
            event = self._event_queue.popleft()
            current = self.current_view
            members = set(current.members)
            joiners: List[int] = []
            if event.action == "join":
                joiners = [n for n in event.nodes if n not in members]
                if not joiners:
                    self.events_skipped += 1
                    continue
                members.update(joiners)
            else:  # leave
                leavers = [n for n in event.nodes if n in members]
                if not leavers or len(leavers) >= len(members):
                    # Never retire the last member: an empty view has no
                    # quorums at all.  Skipped, and counted.
                    self.events_skipped += 1
                    continue
                members.difference_update(leavers)
            view = View(current.view_id + 1, members, self._quorum_size)
            if joiners:
                self.pending_view = view
                for index in joiners:
                    self._begin_transfer(view, current, index)
            else:
                self._activate(view)

    def _begin_transfer(
        self, view: View, old_view: View, joiner: int
    ) -> None:
        """Start a joiner's catch-up from a read quorum of the old view."""
        server = self.deployment.ensure_server(joiner)
        state = server.view_state
        # A re-joining, previously-retired roster slot comes back to
        # life here so it can receive state replies.
        state.retiring = False
        state.retired = False
        state.retire_view = None
        self._transfer_ids += 1
        rng = np.random.default_rng(
            derive_seed(self.seed, "membership-transfer", view.view_id, joiner)
        )
        transfer = _Transfer(
            self._transfer_ids, view.view_id, joiner, old_view.sample(rng), rng
        )
        state.transfer = transfer
        self._pending_transfers[joiner] = transfer
        self._send_transfer_round(transfer)
        transfer.retry_handle = self.deployment.scheduler.schedule(
            self.transfer_retry, self._transfer_tick, joiner,
            transfer.transfer_id,
        )

    def _send_transfer_round(self, transfer: _Transfer) -> None:
        deployment = self.deployment
        joiner_node = deployment.server_ids[transfer.joiner]
        targets = [
            deployment.server_ids[index]
            for index in sorted(transfer.targets - transfer.replies)
        ]
        if targets:
            deployment.network.broadcast(
                joiner_node,
                targets,
                StateRequest(transfer.transfer_id, transfer.view_id),
            )

    def _transfer_tick(self, joiner: int, transfer_id: int) -> None:
        transfer = self._pending_transfers.get(joiner)
        if transfer is None or transfer.transfer_id != transfer_id:
            return
        transfer.attempts += 1
        if transfer.attempts >= self.transfer_max_attempts:
            # Give up waiting: activate with whatever arrived.  The gap
            # is counted, never silently absorbed.
            self.state_transfers_incomplete += 1
            self._finish_transfer(transfer)
            return
        self.state_transfer_retries += 1
        # Resample the target quorum from the old view: the original
        # draw may name crashed or unreachable members.
        old_view = self.current_view
        transfer.targets = transfer.replies | old_view.sample(transfer.rng)
        self._send_transfer_round(transfer)
        transfer.retry_handle = self.deployment.scheduler.schedule(
            self.transfer_retry, self._transfer_tick, joiner, transfer_id
        )

    def on_transfer_reply(
        self, joiner: int, src_index: int, transfer_id: int
    ) -> None:
        """Called by the joiner server when a StateReply lands."""
        transfer = self._pending_transfers.get(joiner)
        if transfer is None or transfer.transfer_id != transfer_id:
            return
        transfer.replies.add(src_index)
        if transfer.complete:
            self.state_transfers_completed += 1
            self._finish_transfer(transfer)

    def _finish_transfer(self, transfer: _Transfer) -> None:
        if transfer.retry_handle is not None:
            transfer.retry_handle.cancel()
        server = self.deployment.servers[transfer.joiner]
        server.view_state.transfer = None
        del self._pending_transfers[transfer.joiner]
        if not self._pending_transfers and self.pending_view is not None:
            view = self.pending_view
            self.pending_view = None
            self._activate(view)
            self._advance()

    def _activate(self, view: View) -> None:
        """Make ``view`` current: atomic across servers, lazy for clients."""
        deployment = self.deployment
        old = self.current_view
        self.views.append(view)
        self.views_installed += 1
        joined = set(view.members) - set(old.members)
        left = set(old.members) - set(view.members)
        self.joins += len(joined)
        self.leaves += len(left)
        now = deployment.scheduler.now
        for index in view.members:
            deployment.servers[index].view_state.view_id = view.view_id
        for index in left:
            state = deployment.servers[index].view_state
            state.view_id = view.view_id
            state.retiring = True
            state.retire_view = view.view_id
            if self.drain > 0:
                deployment.scheduler.schedule(
                    self.drain, self._retire, index, view.view_id
                )
            else:
                self._retire(index, view.view_id)
        monitor = deployment.spec_monitor
        if monitor is not None and hasattr(monitor, "on_view_change"):
            monitor.on_view_change(view.view_id, view.members, now)
        adversary = deployment.adversary
        if adversary is not None and hasattr(adversary, "on_view_installed"):
            adversary.on_view_installed(view.view_id, now)

    def _retire(self, index: int, view_id: int) -> None:
        state = self.deployment.servers[index].view_state
        if state.retiring and state.retire_view == view_id:
            state.retiring = False
            state.retired = True

    # -- accounting ---------------------------------------------------- #

    def metric_counters(self) -> Dict[str, int]:
        """Manager counters, keyed for the metrics collectors."""
        return {
            "views_installed": self.views_installed,
            "joins": self.joins,
            "leaves": self.leaves,
            "state_transfers_completed": self.state_transfers_completed,
            "state_transfers_incomplete": self.state_transfers_incomplete,
            "state_transfer_retries": self.state_transfer_retries,
            "membership_events_skipped": self.events_skipped,
        }

    def view_sizes(self) -> List[Tuple[int, int, int]]:
        """(view_id, n, k) per installed view — the per-view [R3] sweep."""
        return [
            (v.view_id, len(v.members), v.quorum_system.k) for v in self.views
        ]

    def __repr__(self) -> str:
        return (
            f"ViewManager(view={self.current_view.view_id}, "
            f"n={len(self.current_view.members)}, "
            f"installed={self.views_installed})"
        )
