"""Tests for MessageStats and FailureInjector."""

import pytest

from repro.sim.failures import FailureInjector
from repro.sim.metrics import DetailNotCollected, MessageStats


class TestMessageStats:
    def test_record_send_updates_counters(self):
        stats = MessageStats()
        stats.record_send(1, 2, "read_query")
        stats.record_send(1, 3, "read_query")
        stats.record_send(2, 3, "write_update")
        assert stats.sent == 3
        assert stats.by_sender[1] == 2
        assert stats.by_kind["read_query"] == 2
        assert stats.by_kind["write_update"] == 1

    def test_record_delivery_and_receiver_load(self):
        stats = MessageStats()
        for _ in range(3):
            stats.record_send(0, 1, None)
            stats.record_delivery(0, 1)
        stats.record_send(0, 2, None)
        stats.record_delivery(0, 2)
        assert stats.delivered == 4
        assert stats.receiver_load(1) == 0.75
        assert stats.busiest_receiver() == (1, 3)

    def test_receiver_load_zero_when_no_deliveries(self):
        stats = MessageStats()
        assert stats.receiver_load(0) == 0.0
        assert stats.busiest_receiver() == (None, 0)

    def test_marks_measure_deltas(self):
        stats = MessageStats()
        stats.record_send(0, 1, None)
        stats.mark("phase")
        stats.record_send(0, 1, None)
        stats.record_send(0, 1, None)
        assert stats.since_mark("phase") == 2
        assert stats.since_mark("unknown") == 3

    def test_drops_attributed_to_kind_receiver_and_reason(self):
        stats = MessageStats()
        stats.record_send(0, 1, "read_query")
        stats.record_drop(0, 1, kind="read_query", reason="fault")
        stats.record_send(0, 2, "write_update")
        stats.record_drop(0, 2, kind="write_update", reason="loss")
        stats.record_send(0, 2, "write_update")
        stats.record_drop(0, 2, kind="write_update", reason="loss")
        assert stats.dropped == 3
        assert stats.dropped_by_kind["read_query"] == 1
        assert stats.dropped_by_kind["write_update"] == 2
        assert stats.dropped_by_receiver[1] == 1
        assert stats.dropped_by_receiver[2] == 2
        assert stats.dropped_by_reason == {"fault": 1, "loss": 2}
        assert stats.drop_rate() == 1.0

    def test_deliveries_attributed_to_kind(self):
        stats = MessageStats()
        stats.record_send(0, 1, "read_reply")
        stats.record_delivery(0, 1, kind="read_reply")
        assert stats.delivered_by_kind["read_reply"] == 1

    def test_drop_rate_zero_when_nothing_sent(self):
        assert MessageStats().drop_rate() == 0.0

    def test_reset_clears_everything(self):
        stats = MessageStats()
        stats.record_send(0, 1, "x")
        stats.record_delivery(0, 1, kind="x")
        stats.record_drop(0, 1, kind="x", reason="loss")
        stats.mark("phase")
        stats.reset()
        assert stats.sent == 0
        assert stats.delivered == 0
        assert stats.dropped == 0
        assert not stats.by_sender
        assert not stats.by_receiver
        assert not stats.by_kind
        assert not stats.delivered_by_kind
        assert not stats.dropped_by_kind
        assert not stats.dropped_by_receiver
        assert not stats.dropped_by_reason
        assert stats.since_mark("phase") == 0
        # A reset instance behaves exactly like a fresh one.
        assert stats.busiest_receiver() == (None, 0)
        assert stats.drop_rate() == 0.0

    def test_reset_clears_marks(self):
        # Regression: a stale mark surviving reset() would make the delta
        # against the zeroed sent-count go negative.
        stats = MessageStats()
        for _ in range(5):
            stats.record_send(0, 1, None)
        stats.mark("phase")
        stats.reset()
        stats.record_send(0, 1, None)
        assert stats.since_mark("phase") == 1

    def test_scalar_mode_counts_totals_only(self):
        stats = MessageStats(detailed=False)
        stats.record_send(0, 1, "read_query")
        stats.record_sends(0, 3, "read_query")
        stats.record_delivery(0, 1, kind="read_query")
        stats.record_drop(0, 2, kind="read_query", reason="loss")
        assert stats.sent == 4
        assert stats.delivered == 1
        assert stats.dropped == 1
        assert stats.drop_rate() == 0.25
        stats.mark("phase")
        assert stats.since_mark("phase") == 0

    def test_scalar_mode_breakdowns_raise_not_lie(self):
        # detailed=False never collected the breakdowns; reading one must
        # raise, not silently answer (None, 0) / 0.0 / empty.
        stats = MessageStats(detailed=False)
        stats.record_send(0, 1, "read_query")
        stats.record_delivery(0, 1, kind="read_query")
        for accessor in (
            lambda: stats.by_sender,
            lambda: stats.by_receiver,
            lambda: stats.by_kind,
            lambda: stats.delivered_by_kind,
            lambda: stats.dropped_by_kind,
            lambda: stats.dropped_by_receiver,
            lambda: stats.dropped_by_reason,
            stats.busiest_receiver,
            lambda: stats.receiver_load(1),
        ):
            with pytest.raises(DetailNotCollected, match="detailed=False"):
                accessor()
        # DetailNotCollected is a RuntimeError, so legacy broad handlers
        # still catch it.
        assert issubclass(DetailNotCollected, RuntimeError)


class TestFailureInjector:
    def test_crash_blocks_delivery_both_directions(self):
        inj = FailureInjector()
        inj.crash(1)
        assert not inj.can_deliver(0, 1)
        assert not inj.can_deliver(1, 0)
        assert inj.can_deliver(0, 2)

    def test_crash_is_idempotent_and_recoverable(self):
        inj = FailureInjector()
        inj.crash(1)
        inj.crash(1)
        assert inj.is_crashed(1)
        inj.recover(1)
        assert not inj.is_crashed(1)
        inj.recover(1)  # no-op

    def test_crash_many_and_recover_all(self):
        inj = FailureInjector()
        inj.crash_many([1, 2, 3])
        assert inj.crashed == {1, 2, 3}
        inj.recover_all()
        assert inj.crashed == set()

    def test_partition_blocks_cross_group_traffic(self):
        inj = FailureInjector()
        inj.partition([{0, 1}, {2, 3}])
        assert inj.can_deliver(0, 1)
        assert inj.can_deliver(2, 3)
        assert not inj.can_deliver(0, 2)
        assert not inj.can_deliver(3, 1)

    def test_node_outside_partition_reaches_everyone(self):
        inj = FailureInjector()
        inj.partition([{0, 1}, {2, 3}])
        assert inj.can_deliver(9, 0)
        assert inj.can_deliver(2, 9)

    def test_heal_partition_restores_traffic(self):
        inj = FailureInjector()
        inj.partition([{0}, {1}])
        assert not inj.can_deliver(0, 1)
        inj.heal_partition()
        assert inj.can_deliver(0, 1)

    def test_crash_overrides_partition_membership(self):
        inj = FailureInjector()
        inj.partition([{0, 1}])
        inj.crash(0)
        assert not inj.can_deliver(0, 1)
