"""Tests for generator-coroutine processes."""

import pytest

from repro.sim.coroutines import CoroutineError, Sleep, spawn
from repro.sim.futures import Future


def test_sleep_advances_time(scheduler):
    times = []

    def proc():
        times.append(scheduler.now)
        yield Sleep(3.0)
        times.append(scheduler.now)

    spawn(scheduler, proc())
    scheduler.run()
    assert times == [0.0, 3.0]


def test_return_value_resolves_future(scheduler):
    def proc():
        yield Sleep(1.0)
        return "result"

    done = spawn(scheduler, proc())
    scheduler.run()
    assert done.result() == "result"


def test_yielded_future_suspends_until_resolved(scheduler):
    gate = Future("gate")
    seen = []

    def waiter():
        value = yield gate
        seen.append((scheduler.now, value))

    spawn(scheduler, waiter())
    scheduler.schedule(5.0, gate.resolve, "opened")
    scheduler.run()
    assert seen == [(5.0, "opened")]


def test_exception_in_coroutine_fails_future(scheduler):
    def boomer():
        yield Sleep(1.0)
        raise ValueError("kaput")

    done = spawn(scheduler, boomer())
    scheduler.run()
    assert done.failed
    with pytest.raises(ValueError, match="kaput"):
        done.result()


def test_failed_future_raises_inside_coroutine(scheduler):
    gate = Future()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    spawn(scheduler, waiter())
    scheduler.schedule(1.0, gate.fail, RuntimeError("upstream"))
    scheduler.run()
    assert caught == ["upstream"]


def test_invalid_yield_fails_with_coroutine_error(scheduler):
    def bad():
        yield "not a future"

    done = spawn(scheduler, bad())
    scheduler.run()
    assert done.failed
    with pytest.raises(CoroutineError):
        done.result()


def test_invalid_yield_can_be_caught_by_coroutine(scheduler):
    outcome = []

    def resilient():
        try:
            yield 42
        except CoroutineError:
            outcome.append("caught")
        yield Sleep(1.0)
        outcome.append("continued")

    spawn(scheduler, resilient())
    scheduler.run()
    assert outcome == ["caught", "continued"]


def test_two_coroutines_interleave(scheduler):
    trace = []

    def proc(name, period):
        for _ in range(3):
            yield Sleep(period)
            trace.append((name, scheduler.now))

    spawn(scheduler, proc("fast", 1.0))
    spawn(scheduler, proc("slow", 2.5))
    scheduler.run()
    assert trace == [
        ("fast", 1.0), ("fast", 2.0), ("slow", 2.5),
        ("fast", 3.0), ("slow", 5.0), ("slow", 7.5),
    ]


def test_negative_sleep_rejected():
    with pytest.raises(ValueError):
        Sleep(-1.0)


def test_coroutine_chaining_with_yield_from(scheduler):
    def inner():
        yield Sleep(1.0)
        return 10

    def outer():
        value = yield from inner()
        return value + 5

    done = spawn(scheduler, outer())
    scheduler.run()
    assert done.result() == 15


def test_immediate_return_coroutine(scheduler):
    def instant():
        return "now"
        yield  # pragma: no cover - makes this a generator

    done = spawn(scheduler, instant())
    scheduler.run()
    assert done.result() == "now"
