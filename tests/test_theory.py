"""Tests for the paper's closed-form results (analysis.theory/messages)."""

import math

import pytest

from repro.analysis.messages import (
    high_availability_comparison,
    messages_per_pseudocycle_probabilistic,
    messages_per_pseudocycle_strict,
    messages_per_round,
    optimal_load_comparison,
)
from repro.analysis.theory import (
    corollary6_rounds_bound,
    corollary7_rounds_per_pseudocycle_bound,
    expected_rounds_upper_bound,
    geometric_pmf_bound,
    naor_wool_load_lower_bound,
    non_intersection_probability,
    non_intersection_upper_bound,
    q_exact,
    q_lower_bound,
    theorem1_survival_bound,
)


class TestIntersectionFormulas:
    def test_known_values(self):
        assert non_intersection_probability(4, 2) == pytest.approx(1 / 6)
        assert non_intersection_probability(34, 1) == pytest.approx(33 / 34)

    def test_zero_when_quorums_overlap_by_pigeonhole(self):
        assert non_intersection_probability(10, 6) == 0.0

    def test_proposition_32_bound_dominates(self):
        for n in (8, 34, 101):
            for k in range(1, n + 1):
                assert (
                    non_intersection_probability(n, k)
                    <= non_intersection_upper_bound(n, k) + 1e-12
                )

    def test_equality_at_k_one(self):
        assert non_intersection_probability(34, 1) == pytest.approx(
            non_intersection_upper_bound(34, 1)
        )

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            non_intersection_probability(0, 1)
        with pytest.raises(ValueError):
            non_intersection_probability(5, 6)
        with pytest.raises(ValueError):
            non_intersection_probability(5, 0)


class TestQ:
    def test_q_exact_complement(self):
        assert q_exact(4, 2) == pytest.approx(5 / 6)
        assert q_exact(34, 1) == pytest.approx(1 / 34)

    def test_q_lower_bound_below_exact(self):
        for n in (12, 34):
            for k in range(1, n // 2 + 1):
                assert q_lower_bound(n, k) <= q_exact(n, k) + 1e-12

    def test_q_grows_with_k(self):
        values = [q_exact(34, k) for k in range(1, 18)]
        assert values == sorted(values)

    def test_q_one_when_strict(self):
        assert q_exact(10, 6) == 1.0


class TestTheorem1:
    def test_decays_geometrically(self):
        values = [theorem1_survival_bound(34, 6, ell) for ell in range(10)]
        for previous, current in zip(values, values[1:]):
            assert current <= previous
        # Eventually tiny.
        assert theorem1_survival_bound(34, 6, 50) < 1e-3

    def test_clamped_at_one(self):
        assert theorem1_survival_bound(34, 6, 0) == 1.0

    def test_ell_validation(self):
        with pytest.raises(ValueError):
            theorem1_survival_bound(34, 6, -1)


class TestConvergenceBounds:
    def test_paper_figure2_anchor_value(self):
        # Section 7: at k=1, the bound is 6 * 34 = 204 rounds.
        assert corollary6_rounds_bound(6, q_lower_bound(34, 1)) == pytest.approx(204.0)

    def test_corollary7_bound_between_one_and_two_at_sqrt_n(self):
        # The paper uses 1 < c_n < 2 when k = sqrt(n) (Eqn 3).
        for n in (16, 25, 36, 100, 400):
            k = int(math.sqrt(n))
            c_n = corollary7_rounds_per_pseudocycle_bound(n, k)
            assert 1.0 < c_n < 2.0

    def test_corollary7_decreasing_in_k(self):
        values = [
            corollary7_rounds_per_pseudocycle_bound(34, k) for k in range(1, 18)
        ]
        assert values == sorted(values, reverse=True)

    def test_expected_rounds_bound(self):
        assert expected_rounds_upper_bound(0.5) == 2.0
        with pytest.raises(ValueError):
            expected_rounds_upper_bound(1.0001)

    def test_geometric_pmf_bound(self):
        assert geometric_pmf_bound(0.5, 1) == 0.5
        assert geometric_pmf_bound(0.5, 3) == 0.125
        with pytest.raises(ValueError):
            geometric_pmf_bound(0.5, 0)

    def test_corollary6_validation(self):
        with pytest.raises(ValueError):
            corollary6_rounds_bound(-1, 0.5)


class TestNaorWool:
    def test_minimised_at_sqrt_n(self):
        n = 100
        loads = {k: naor_wool_load_lower_bound(n, k) for k in range(1, n + 1)}
        best_k = min(loads, key=loads.get)
        assert best_k == 10
        assert loads[best_k] == pytest.approx(0.1)

    def test_extremes(self):
        assert naor_wool_load_lower_bound(10, 1) == 1.0
        assert naor_wool_load_lower_bound(10, 10) == 1.0


class TestMessageFormulas:
    def test_messages_per_round_formula(self):
        # 2pmk + 2mk with p=34, m=34, k=6.
        assert messages_per_round(34, 34, 6) == 2 * 34 * 34 * 6 + 2 * 34 * 6

    def test_strict_equals_one_round(self):
        assert messages_per_pseudocycle_strict(6, 34, 34) == messages_per_round(
            34, 34, 6
        )

    def test_probabilistic_pays_c_n_factor(self):
        m_str = messages_per_pseudocycle_strict(6, 34, 34)
        m_prob = messages_per_pseudocycle_probabilistic(6, 34, 34, n=34)
        assert m_prob > m_str
        assert m_prob / m_str == pytest.approx(
            corollary7_rounds_per_pseudocycle_bound(34, 6)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            messages_per_round(0, 1, 1)


class TestRegimeComparisons:
    def test_high_availability_prob_wins_and_gap_grows(self):
        small = high_availability_comparison(64, m=10, p=10)
        large = high_availability_comparison(1024, m=10, p=10)
        assert small["strict_over_prob"] > 1.0
        assert large["strict_over_prob"] > small["strict_over_prob"]

    def test_high_availability_ratio_theta_sqrt_n(self):
        # ratio ~ (n/2) / (c_n sqrt(n)) ~ sqrt(n)/(2 c_n).
        row = high_availability_comparison(400, m=5, p=5)
        expected = (400 // 2 + 1) / (row["c_n"] * 20)
        assert row["strict_over_prob"] == pytest.approx(expected, rel=0.01)

    def test_optimal_load_near_tie_with_availability_gap(self):
        row = optimal_load_comparison(144, m=10, p=10)
        assert 1.0 < row["prob_over_strict"] < 2.0  # only the c_n factor
        assert row["availability_probabilistic"] > row["availability_strict_grid"]

    def test_validation(self):
        with pytest.raises(ValueError):
            high_availability_comparison(1, 2, 2)
        with pytest.raises(ValueError):
            optimal_load_comparison(1, 2, 2)
