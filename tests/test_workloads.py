"""Tests for the reusable experiment workloads."""

import numpy as np
import pytest

from repro.core.spec import (
    check_r1_every_invocation_responded,
    check_r2_reads_from_some_write,
    staleness_distribution,
)
from repro.experiments.workloads import (
    bursty_gaps,
    periodic_gaps,
    poisson_gaps,
    reader_loop,
    single_register_workload,
    writer_loop,
)
from repro.quorum.probabilistic import ProbabilisticQuorumSystem
from repro.registers.deployment import RegisterDeployment
from repro.sim.coroutines import spawn
from repro.sim.delays import ConstantDelay


def make_deployment(num_clients=3, seed=0):
    deployment = RegisterDeployment(
        ProbabilisticQuorumSystem(8, 3), num_clients=num_clients,
        delay_model=ConstantDelay(1.0), seed=seed, monotone=True,
    )
    deployment.declare_register("X", writer=0, initial_value=0)
    return deployment


class TestGapSamplers:
    def test_periodic_constant(self):
        gaps = periodic_gaps(2.5)
        assert [gaps() for _ in range(3)] == [2.5, 2.5, 2.5]
        with pytest.raises(ValueError):
            periodic_gaps(-1.0)

    def test_poisson_mean(self):
        rng = np.random.default_rng(0)
        gaps = poisson_gaps(2.0, rng)
        samples = [gaps() for _ in range(20_000)]
        assert abs(np.mean(samples) - 2.0) < 0.1
        with pytest.raises(ValueError):
            poisson_gaps(0.0, rng)

    def test_bursty_pattern(self):
        gaps = bursty_gaps(burst_length=3, burst_gap=0.1, idle_gap=5.0)
        produced = [gaps() for _ in range(6)]
        assert produced == [0.1, 0.1, 5.0, 0.1, 0.1, 5.0]
        with pytest.raises(ValueError):
            bursty_gaps(0, 0.1, 1.0)
        with pytest.raises(ValueError):
            bursty_gaps(2, -0.1, 1.0)


class TestLoops:
    def test_writer_loop_writes_sequence(self):
        deployment = make_deployment()
        done = spawn(
            deployment.scheduler,
            writer_loop(deployment, 0, "X", 5, periodic_gaps(1.0)),
        )
        deployment.run()
        assert done.done
        history = deployment.space.history("X")
        assert [w.value for w in history.writes[1:]] == [1, 2, 3, 4, 5]

    def test_writer_loop_custom_values(self):
        deployment = make_deployment()
        spawn(
            deployment.scheduler,
            writer_loop(deployment, 0, "X", 3, periodic_gaps(0.5),
                        values=iter("abc")),
        )
        deployment.run()
        history = deployment.space.history("X")
        assert [w.value for w in history.writes[1:]] == ["a", "b", "c"]

    def test_reader_loop_returns_values(self):
        deployment = make_deployment()
        done = spawn(
            deployment.scheduler,
            reader_loop(deployment, 1, "X", 4, periodic_gaps(1.0)),
        )
        deployment.run()
        assert done.result() == [0, 0, 0, 0]


class TestStandardWorkload:
    def test_all_operations_complete_and_audit_clean(self):
        deployment = make_deployment(num_clients=4, seed=3)
        futures = single_register_workload(
            deployment, num_writes=20, reads_per_reader=30,
        )
        deployment.run()
        assert len(futures) == 3
        assert all(f.done for f in futures)
        history = deployment.space.history("X")
        check_r1_every_invocation_responded(history)
        check_r2_reads_from_some_write(history)
        assert len(history.reads) == 90

    def test_bursty_writers_increase_staleness(self):
        # Single-replica quorums (k=1) amplify staleness so the burst
        # shape shows: a burst deposits many writes between reader visits.
        def max_staleness(writer_gaps):
            deployment = RegisterDeployment(
                ProbabilisticQuorumSystem(8, 1), num_clients=2,
                delay_model=ConstantDelay(1.0), seed=7, monotone=True,
            )
            deployment.declare_register("X", writer=0, initial_value=0)
            single_register_workload(
                deployment, num_writes=40, reads_per_reader=40,
                writer_gaps=writer_gaps, reader_gaps=periodic_gaps(3.0),
            )
            deployment.run()
            dist = staleness_distribution(deployment.space.history("X"))
            return max(dist) if dist else 0

        steady = max_staleness(periodic_gaps(3.0))
        bursty = max_staleness(bursty_gaps(10, 0.2, 30.0))
        assert bursty > steady

    def test_unknown_register_rejected(self):
        deployment = make_deployment()
        with pytest.raises(KeyError):
            single_register_workload(deployment, register="missing")
